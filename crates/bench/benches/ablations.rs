//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - DGI pretraining on vs off;
//! - graph Transformer vs plain mean-aggregation GCN encoder;
//! - sinusoidal positional encodings on vs off;
//! - oracle gain threshold;
//! - A* maze routing vs a pattern-route-sized expansion budget.
//!
//! Each configuration is benchmarked for wall time, and its quality
//! metric (held-out decision accuracy / router overflow) is printed once
//! so `cargo bench` doubles as the ablation study.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gnn_mls::flow::prepare;
use gnn_mls::model::{EncoderKind, GnnMls, ModelConfig};
use gnn_mls::oracle::{label_paths, OracleConfig};
use gnn_mls::paths::{extract_path_samples, PathSample};
use gnnmls_bench::designs::bench_scale;
use gnnmls_route::{route_design, MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

/// Builds one real labeled dataset (train, eval) at bench scale.
fn dataset() -> (Vec<PathSample>, Vec<PathSample>) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    let mut router = Router::new(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::Disabled,
        exp.cfg.route.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    let mut samples = extract_path_samples(&netlist, &placement, &exp.design.tech, &rep, 120);
    label_paths(
        &mut samples,
        &netlist,
        &router,
        &routes,
        &OracleConfig::default(),
    )
    .unwrap();
    let eval = samples.split_off(90);
    (samples, eval)
}

fn model_variants() -> Vec<(&'static str, ModelConfig)> {
    let base = ModelConfig {
        pretrain_epochs: 4,
        finetune_epochs: 15,
        ..ModelConfig::default()
    };
    vec![
        ("full", base.clone()),
        (
            "no_dgi",
            ModelConfig {
                use_dgi: false,
                ..base.clone()
            },
        ),
        (
            "no_positional",
            ModelConfig {
                use_positional: false,
                ..base.clone()
            },
        ),
        (
            "gcn_encoder",
            ModelConfig {
                encoder: EncoderKind::Gcn,
                ..base.clone()
            },
        ),
        (
            "finetune_encoder_too",
            ModelConfig {
                finetune_encoder: true,
                ..base
            },
        ),
    ]
}

fn bench_model_ablations(c: &mut Criterion) {
    let (train, eval) = dataset();
    let mut g = c.benchmark_group("ablation_model");
    for (name, cfg) in model_variants() {
        // Print the quality metric once per variant.
        let mut model = GnnMls::new(cfg.clone());
        model.pretrain(&train).unwrap();
        let tm = model.finetune(&train).unwrap();
        let em = model.evaluate(&eval).unwrap();
        eprintln!(
            "[ablation {name}] train acc {:.3} f1 {:.3} | eval acc {:.3} f1 {:.3}",
            tm.accuracy(),
            tm.f1(),
            em.accuracy(),
            em.f1()
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = GnnMls::new(cfg.clone());
                m.pretrain(&train).unwrap();
                m.finetune(&train).unwrap().accuracy()
            })
        });
    }
    g.finish();
}

fn bench_oracle_threshold(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    let mut g = c.benchmark_group("ablation_oracle_threshold");
    for thr in [0.1_f64, 0.5, 2.0] {
        g.bench_function(format!("gain_{thr}"), |b| {
            b.iter(|| {
                let mut router = Router::new(
                    &netlist,
                    &placement,
                    &exp.design.tech,
                    MlsPolicy::Disabled,
                    exp.cfg.route.clone(),
                )
                .unwrap();
                router.route_all().unwrap();
                let routes = router.db().unwrap();
                let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
                let mut samples =
                    extract_path_samples(&netlist, &placement, &exp.design.tech, &rep, 20);
                label_paths(
                    &mut samples,
                    &netlist,
                    &router,
                    &routes,
                    &OracleConfig {
                        gain_threshold_ps: thr,
                    },
                )
                .unwrap()
                .positive
            })
        });
    }
    g.finish();
}

fn bench_maze_budget(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    let mut g = c.benchmark_group("ablation_maze_budget");
    for (name, budget) in [("full_maze", 400_000usize), ("pattern_fallback", 50)] {
        let cfg = exp
            .cfg
            .route
            .to_builder()
            .max_expansions(budget)
            .build()
            .unwrap();
        // Quality metric: overflow with and without real maze search.
        let (db, _) = route_design(
            &netlist,
            &placement,
            &exp.design.tech,
            MlsPolicy::Disabled,
            cfg.clone(),
        )
        .unwrap();
        eprintln!(
            "[ablation {name}] overflowed nets {} / wirelength {:.3} m",
            db.summary.overflowed_nets, db.summary.total_wirelength_m
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                route_design(
                    &netlist,
                    &placement,
                    &exp.design.tech,
                    MlsPolicy::Disabled,
                    cfg.clone(),
                )
                .unwrap()
                .0
                .summary
                .overflowed_nets
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = ablations;
    config = config();
    targets = bench_model_ablations, bench_oracle_threshold, bench_maze_budget
}
criterion_main!(ablations);

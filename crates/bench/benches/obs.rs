//! Observability overhead on the what-if oracle hot path.
//!
//! The obs contract is "near-zero cost when no sink is installed":
//! spans gate on one relaxed atomic load and metrics are relaxed RMWs.
//! This bench keeps that honest on the same workload as the oracle
//! bench — route + label the worst paths — measured two ways:
//!
//! 1. `disabled`: no sink installed (the default production state);
//! 2. `enabled`: a `MemorySink` capturing every span/event record;
//!
//! and asserts the labels are bit-identical either way (tracing is a
//! pure observer). Wall times and the enabled-over-disabled delta land
//! in `target/bench/BENCH_obs.json` (the committed root-level ledger
//! only behind `--commit-baseline`). With `--test` (the CI
//! smoke mode) everything runs with fewer iterations, so the identity
//! checks and the JSON schema still get exercised; the <5 % budget is
//! asserted only in full runs where the timing is trustworthy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;

use gnn_mls::oracle::{label_paths, OracleConfig};
use gnn_mls::paths::{extract_path_samples_par, PathSample};
use gnnmls_bench::designs::bench_scale;
use gnnmls_obs::{install_guarded, MemorySink};
use gnnmls_route::{MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

const PATHS: usize = 40;
const BUDGET_PCT: f64 = 5.0;

/// What lands in `BENCH_obs.json`.
#[derive(Serialize)]
struct ObsBenchReport {
    design: String,
    paths: usize,
    /// Logical cores on the machine that produced this file.
    cores: usize,
    /// Wall time with no sink installed (production default).
    disabled_ms: f64,
    /// Wall time with a `MemorySink` capturing every record.
    enabled_ms: f64,
    /// (enabled - disabled) / disabled, percent. Negative means noise.
    delta_pct: f64,
    /// `delta_pct < 5.0` — the acceptance budget.
    within_budget: bool,
    /// JSONL records captured during the enabled measurement.
    records_captured: usize,
    /// Labels bit-identical with tracing on vs. off (asserted).
    bit_identical: bool,
    /// True when produced by the `--test` smoke run (timings are then
    /// indicative only and the budget is not asserted).
    smoke_mode: bool,
}

/// One timed sample of `f`.
fn wall<F: FnMut()>(mut f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

fn bench_obs(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = gnn_mls::flow::prepare(&exp.design, &exp.cfg).unwrap();
    let mut router = Router::new(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::Disabled,
        exp.cfg.route.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let report = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    let samples =
        extract_path_samples_par(&netlist, &placement, &exp.design.tech, &report, PATHS, 0);

    let label = |sm: &mut [PathSample]| {
        label_paths(sm, &netlist, &router, &routes, &OracleConfig::default()).unwrap()
    };

    // Identity: tracing must be a pure observer of the labeling.
    let mut plain = samples.clone();
    label(&mut plain);
    let mut traced = samples.clone();
    {
        let _guard = install_guarded(Arc::new(MemorySink::new()));
        label(&mut traced);
    }
    for (a, b) in plain.iter().zip(traced.iter()) {
        assert_eq!(a.labels, b.labels, "tracing must not perturb labels");
    }

    // The labeling pass is a few milliseconds, so a single sample is at
    // the mercy of scheduler noise. Batch `reps` passes per sample and
    // interleave disabled/enabled samples so machine drift (thermal,
    // co-tenants) hits both sides equally; min-of-N then compares the
    // best case of each, which is what the budget is about.
    let smoke = c.is_test_mode();
    let iters = if smoke { 2 } else { 9 };
    let reps = if smoke { 1 } else { 6 };
    let sink = Arc::new(MemorySink::new());
    let mut disabled = Duration::MAX;
    let mut enabled = Duration::MAX;
    for _ in 0..iters {
        disabled = disabled.min(wall(|| {
            for _ in 0..reps {
                let mut sm = samples.clone();
                label(&mut sm);
            }
        }));
        let _guard = install_guarded(sink.clone());
        enabled = enabled.min(wall(|| {
            for _ in 0..reps {
                let mut sm = samples.clone();
                label(&mut sm);
            }
        }));
    }
    let records_captured = sink.lines().len();

    let delta_pct = (enabled.as_secs_f64() - disabled.as_secs_f64())
        / disabled.as_secs_f64().max(1e-12)
        * 100.0;
    let report = ObsBenchReport {
        design: "MAERI 16PE (bench scale)".into(),
        paths: PATHS,
        cores: gnnmls_par::available_parallelism(),
        disabled_ms: disabled.as_secs_f64() * 1e3,
        enabled_ms: enabled.as_secs_f64() * 1e3,
        delta_pct,
        within_budget: delta_pct < BUDGET_PCT,
        records_captured,
        bit_identical: true,
        smoke_mode: smoke,
    };
    if !smoke {
        assert!(
            delta_pct < BUDGET_PCT,
            "observability overhead {delta_pct:.2}% blew the {BUDGET_PCT}% budget \
             (disabled {:.1} ms, enabled {:.1} ms)",
            report.disabled_ms,
            report.enabled_ms
        );
    }

    // Bench binaries run with the package dir as cwd; anchor at the
    // workspace root. Output lands under target/bench/ unless
    // --commit-baseline asks for the committed root-level ledger.
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    if let Some(out) = gnnmls_bench::render::write_bench_json(root, "BENCH_obs.json", &report) {
        println!(
            "disabled {:.1} ms, enabled {:.1} ms ({:+.2}%) -> {}",
            report.disabled_ms,
            report.enabled_ms,
            report.delta_pct,
            out.display(),
        );
    }

    // Standard criterion entries for trend tracking.
    let mut g = c.benchmark_group("obs_overhead");
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut sm = samples.clone();
            label(&mut sm).what_ifs
        })
    });
    g.bench_function("enabled", |b| {
        let _guard = install_guarded(Arc::new(MemorySink::new()));
        b.iter(|| {
            let mut sm = samples.clone();
            label(&mut sm).what_ifs
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = obs;
    config = config();
    targets = bench_obs
}
criterion_main!(obs);

//! Serial-vs-parallel oracle labeling on the MAERI pe16 design.
//!
//! The what-if fan-out is the flow's hot loop (the paper calls full
//! iterative STA computationally prohibitive), so this bench keeps the
//! parallel refactor honest twice over: it asserts the parallel run is
//! bit-identical to serial (same labels, same `OracleStats`, same
//! `RouteDb` summary) and records both wall times plus the measured
//! speedup into `target/bench/BENCH_oracle.json` (the committed
//! root-level ledger only behind `--commit-baseline`). With
//! `--test` (the CI smoke mode) everything runs once, untimed-ish, so
//! the identity checks and the JSON schema still get exercised.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;

use gnn_mls::oracle::{label_paths, OracleConfig};
use gnn_mls::paths::{extract_path_samples_par, PathSample};
use gnnmls_bench::designs::bench_scale;
use gnnmls_netlist::Netlist;
use gnnmls_phys::Placement;
use gnnmls_route::{MlsPolicy, RouteConfig, RouteDb, Router};
use gnnmls_sta::{analyze, StaConfig, TimingReport};

const PATHS: usize = 40;

/// What lands in `BENCH_oracle.json`.
#[derive(Serialize)]
struct OracleBenchReport {
    design: String,
    paths: usize,
    what_ifs: usize,
    /// Logical cores on the machine that produced this file.
    cores: usize,
    serial_ms: f64,
    parallel_ms: f64,
    /// serial / parallel wall time; ~1.0 is expected on a single core.
    speedup: f64,
    /// Labels, `OracleStats`, and `RouteDb` summary identical across
    /// thread counts (asserted, so always true in a committed file).
    bit_identical: bool,
    /// True when produced by the `--test` smoke run (single untimed
    /// iteration; timings are then indicative only).
    smoke_mode: bool,
}

struct Scenario {
    netlist: Netlist,
    placement: Placement,
    tech: gnnmls_netlist::TechConfig,
    routes: RouteDb,
    report: TimingReport,
    route_cfg: RouteConfig,
}

fn scenario() -> Scenario {
    let exp = bench_scale();
    let (netlist, placement) = gnn_mls::flow::prepare(&exp.design, &exp.cfg).unwrap();
    let route_cfg = exp.cfg.route.clone();
    let mut router = Router::new(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::Disabled,
        route_cfg.clone(),
    )
    .unwrap();
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let report = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
    Scenario {
        netlist,
        placement,
        tech: exp.design.tech.clone(),
        routes,
        report,
        route_cfg,
    }
}

/// Builds a routed router with the given thread knob (identical routes
/// for every value — asserted below).
fn router_with_threads<'a>(s: &'a Scenario, threads: usize) -> Router<'a> {
    let mut router = Router::new(
        &s.netlist,
        &s.placement,
        &s.tech,
        MlsPolicy::Disabled,
        s.route_cfg.clone().with_threads(threads),
    )
    .unwrap();
    router.route_all().unwrap();
    router
}

fn label(
    s: &Scenario,
    router: &Router<'_>,
    samples: &mut [PathSample],
) -> gnn_mls::oracle::OracleStats {
    label_paths(
        samples,
        &s.netlist,
        router,
        &s.routes,
        &OracleConfig::default(),
    )
    .unwrap()
}

/// Minimum wall time of `iters` runs of `f`.
fn min_wall<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn bench_oracle(c: &mut Criterion) {
    let s = scenario();
    let samples = extract_path_samples_par(&s.netlist, &s.placement, &s.tech, &s.report, PATHS, 0);

    let serial_router = router_with_threads(&s, 1);
    let parallel_router = router_with_threads(&s, 0);

    // Identity: routing, labels, and stats must match bit-for-bit.
    assert_eq!(
        serial_router.db().unwrap().summary,
        parallel_router.db().unwrap().summary,
        "route_all must be thread-count invariant"
    );
    let mut serial_samples = samples.clone();
    let mut parallel_samples = samples.clone();
    let serial_stats = label(&s, &serial_router, &mut serial_samples);
    let parallel_stats = label(&s, &parallel_router, &mut parallel_samples);
    assert_eq!(serial_stats, parallel_stats, "OracleStats must match");
    for (a, b) in serial_samples.iter().zip(parallel_samples.iter()) {
        assert_eq!(a.labels, b.labels, "labels must match");
    }

    // Wall-time comparison, written to BENCH_oracle.json.
    let smoke = c.is_test_mode();
    let iters = if smoke { 1 } else { 5 };
    let serial = min_wall(iters, || {
        let mut sm = samples.clone();
        label(&s, &serial_router, &mut sm);
    });
    let parallel = min_wall(iters, || {
        let mut sm = samples.clone();
        label(&s, &parallel_router, &mut sm);
    });
    let report = OracleBenchReport {
        design: "MAERI 16PE (bench scale)".into(),
        paths: PATHS,
        what_ifs: serial_stats.what_ifs,
        cores: gnnmls_par::available_parallelism(),
        serial_ms: serial.as_secs_f64() * 1e3,
        parallel_ms: parallel.as_secs_f64() * 1e3,
        speedup: serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12),
        bit_identical: true,
        smoke_mode: smoke,
    };
    // Bench binaries run with the package dir as cwd; anchor at the
    // workspace root. Output lands under target/bench/ unless
    // --commit-baseline asks for the committed root-level ledger.
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    if let Some(out) = gnnmls_bench::render::write_bench_json(root, "BENCH_oracle.json", &report) {
        println!(
            "serial {:.1} ms, parallel {:.1} ms on {} core(s) -> {}",
            report.serial_ms,
            report.parallel_ms,
            report.cores,
            out.display(),
        );
    }

    // Standard criterion entries for trend tracking.
    let mut g = c.benchmark_group("oracle_label_paths");
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut sm = samples.clone();
            label(&s, &serial_router, &mut sm).what_ifs
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            let mut sm = samples.clone();
            label(&s, &parallel_router, &mut sm).what_ifs
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = oracle;
    config = config();
    targets = bench_oracle
}
criterion_main!(oracle);

//! Cold-start vs warm-daemon what-if latency, and batched vs unbatched
//! inference throughput, for `gnnmls-serve`.
//!
//! The daemon exists because the cold start (generate, place, train,
//! route, analyze) dwarfs the marginal cost of a what-if query. This
//! bench keeps that claim honest: it measures the cold path (fresh
//! [`DesignSession::build`] plus the first query) against the warm path
//! (a TCP round-trip to an already-loaded daemon), asserts the warm
//! answer is bit-identical to the cold one and **at least 10× faster**,
//! and measures the micro-batching win (one batched forward pass
//! serving B requests vs B solo forward passes — also bit-identical).
//! Results land in `target/bench/BENCH_serve.json` (the committed
//! root-level ledger only behind `--commit-baseline`).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;

use gnn_mls::flow::FlowPolicy;
use gnn_mls::session::{DesignSession, SessionSpec};
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ServeConfig, Server};

const NET: u32 = 0;
/// Requests coalesced into one forward pass by the batching benchmark.
const BATCH: usize = 8;
/// Paths per inference request.
const PATHS: usize = 16;

/// What lands in `BENCH_serve.json`.
#[derive(Serialize)]
struct ServeBenchReport {
    design: String,
    /// Fresh session build + first what-if, in milliseconds.
    cold_ms: f64,
    /// One TCP round-trip what-if against the warm daemon, in ms.
    warm_ms: f64,
    /// cold / warm; the acceptance bar is >= 10.
    cold_over_warm: f64,
    /// Warm answers match the cold session bit-for-bit (asserted).
    warm_bit_identical: bool,
    batch: usize,
    paths: usize,
    /// B solo forward passes, in milliseconds.
    unbatched_ms: f64,
    /// One batched forward pass serving all B requests, in ms.
    batched_ms: f64,
    /// unbatched / batched throughput gain for the same answers.
    batch_speedup: f64,
    /// Batched answers match unbatched bit-for-bit (asserted).
    batch_bit_identical: bool,
    smoke_mode: bool,
}

/// Minimum wall time of `iters` runs of `f`.
fn min_wall<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn bench_serve(c: &mut Criterion) {
    let smoke = c.is_test_mode();
    let iters = if smoke { 3 } else { 20 };
    let spec = SessionSpec::fast("maeri16");

    // --- Cold path: what a one-shot CLI invocation pays. -------------
    let t0 = Instant::now();
    let cold_session = DesignSession::build(&spec).unwrap();
    let cold_answer = cold_session.what_if(NET, true, None).unwrap();
    let cold = t0.elapsed();

    // --- Warm path: the same query as a daemon round-trip. -----------
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Prime the daemon's cache so every timed round-trip is warm.
    let primed = client.what_if(&spec, NET, true, None).unwrap();
    assert_eq!(primed.kind, ResponseKind::Ok);
    assert_eq!(
        primed.what_if.as_ref(),
        Some(&cold_answer),
        "warm daemon answer must be bit-identical to the cold session"
    );
    let warm = min_wall(iters, || {
        let resp = client.what_if(&spec, NET, true, None).unwrap();
        assert_eq!(resp.kind, ResponseKind::Ok);
    });
    let cold_over_warm = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    assert!(
        cold_over_warm >= 10.0,
        "warm what-if must be >= 10x faster than cold start \
         (cold {:.1} ms, warm {:.3} ms)",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
    );
    server.shutdown();

    // --- Batched vs unbatched inference (session level, no socket, so
    // the comparison isolates the forward-pass coalescing itself). ----
    let gnn_spec = spec.clone().with_policy(FlowPolicy::GnnMls);
    let session = DesignSession::build(&gnn_spec).unwrap();
    let model = session.model().expect("GnnMls session carries a model");
    let k = PATHS.min(session.samples().len());

    let solo = session.infer(k).unwrap();
    let probs = model.predict_paths(&session.samples()[..k]).unwrap();
    for _ in 0..BATCH {
        assert_eq!(
            session.infer_from_probs(k, &probs),
            solo,
            "a batched inference answer must match the unbatched one"
        );
    }
    let unbatched = min_wall(iters, || {
        for _ in 0..BATCH {
            session.infer(k).unwrap();
        }
    });
    let batched = min_wall(iters, || {
        let probs = model.predict_paths(&session.samples()[..k]).unwrap();
        for _ in 0..BATCH {
            session.infer_from_probs(k, &probs);
        }
    });

    let report = ServeBenchReport {
        design: "MAERI 16PE (fast)".into(),
        cold_ms: cold.as_secs_f64() * 1e3,
        warm_ms: warm.as_secs_f64() * 1e3,
        cold_over_warm,
        warm_bit_identical: true,
        batch: BATCH,
        paths: k,
        unbatched_ms: unbatched.as_secs_f64() * 1e3,
        batched_ms: batched.as_secs_f64() * 1e3,
        batch_speedup: unbatched.as_secs_f64() / batched.as_secs_f64().max(1e-12),
        batch_bit_identical: true,
        smoke_mode: smoke,
    };
    // Bench binaries run with the package dir as cwd; anchor at the
    // workspace root. Output lands under target/bench/ unless
    // --commit-baseline asks for the committed root-level ledger.
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    if let Some(out) = gnnmls_bench::render::write_bench_json(root, "BENCH_serve.json", &report) {
        println!(
            "cold {:.1} ms, warm {:.3} ms ({:.0}x); batch x{} {:.2} -> {:.2} ms -> {}",
            report.cold_ms,
            report.warm_ms,
            report.cold_over_warm,
            BATCH,
            report.unbatched_ms,
            report.batched_ms,
            out.display(),
        );
    }

    // Standard criterion entries for trend tracking.
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut g = c.benchmark_group("serve");
    g.bench_function("warm_what_if_roundtrip", |b| {
        b.iter(|| client.what_if(&spec, NET, true, None).unwrap().kind)
    });
    g.bench_function("infer_unbatched_x8", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                session.infer(k).unwrap();
            }
        })
    });
    g.bench_function("infer_batched_x8", |b| {
        b.iter(|| {
            let probs = model.predict_paths(&session.samples()[..k]).unwrap();
            for _ in 0..BATCH {
                session.infer_from_probs(k, &probs);
            }
        })
    });
    g.finish();
    server.shutdown();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = serve;
    config = config();
    targets = bench_serve
}
criterion_main!(serve);

//! Cold-start vs warm-daemon what-if latency, and batched vs unbatched
//! inference throughput, for `gnnmls-serve`.
//!
//! The daemon exists because the cold start (generate, place, train,
//! route, analyze) dwarfs the marginal cost of a what-if query. This
//! bench keeps that claim honest: it measures the cold path (fresh
//! [`DesignSession::build`] plus the first query) against the warm path
//! (a TCP round-trip to an already-loaded daemon), asserts the warm
//! answer is bit-identical to the cold one and **at least 10× faster**,
//! and measures the micro-batching win (one batched forward pass
//! serving B requests vs B solo forward passes — also bit-identical).
//! Results land in `target/bench/BENCH_serve.json` (the committed
//! root-level ledger only behind `--commit-baseline`).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;

use gnn_mls::flow::FlowPolicy;
use gnn_mls::session::{DesignSession, SessionSpec};
use gnnmls_reactor::net::raise_nofile_limit;
use gnnmls_serve::protocol::ResponseKind;
use gnnmls_serve::{Client, ServeConfig, Server};

const NET: u32 = 0;
/// Requests coalesced into one forward pass by the batching benchmark.
const BATCH: usize = 8;
/// Paths per inference request.
const PATHS: usize = 16;
/// Idle connections held open during the reactor soak (full mode).
const SOAK_CONNECTIONS: usize = 10_000;
/// Soak size in smoke mode (CI test runs).
const SOAK_CONNECTIONS_SMOKE: usize = 512;
/// Round-trips per p99 measurement.
const P99_SAMPLES: usize = 200;

/// What lands in `BENCH_serve.json`.
#[derive(Serialize)]
struct ServeBenchReport {
    design: String,
    /// Fresh session build + first what-if, in milliseconds.
    cold_ms: f64,
    /// One TCP round-trip what-if against the warm daemon, in ms.
    warm_ms: f64,
    /// cold / warm; the acceptance bar is >= 10.
    cold_over_warm: f64,
    /// Warm answers match the cold session bit-for-bit (asserted).
    warm_bit_identical: bool,
    batch: usize,
    paths: usize,
    /// B solo forward passes, in milliseconds.
    unbatched_ms: f64,
    /// One batched forward pass serving all B requests, in ms.
    batched_ms: f64,
    /// unbatched / batched throughput gain for the same answers.
    batch_speedup: f64,
    /// Batched answers match unbatched bit-for-bit (asserted).
    batch_bit_identical: bool,
    /// Idle connections held open during the reactor soak (0 when the
    /// fd limit could not be raised).
    soak_connections: usize,
    /// p99 warm what-if with no idle storm, ms.
    soak_baseline_p99_ms: f64,
    /// p99 warm what-if with the full idle storm connected, ms.
    soak_p99_ms: f64,
    /// soak / baseline; the acceptance bar is <= 1.10.
    soak_p99_ratio: f64,
    /// Process RSS with the storm connected, MiB (Linux; 0 elsewhere) —
    /// the bounded-memory evidence for the connection state machines.
    soak_rss_mb: f64,
    smoke_mode: bool,
}

/// Minimum wall time of `iters` runs of `f`.
fn min_wall<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// p99 wall time of `iters` runs of `f`, in milliseconds.
fn p99_wall_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() * 99 / 100]
}

/// Resident set size of `pid` (or this process) in MiB (Linux `/proc`;
/// 0 elsewhere).
fn rss_mb(pid: Option<u32>) -> f64 {
    let path = match pid {
        Some(p) => format!("/proc/{p}/status"),
        None => "/proc/self/status".to_string(),
    };
    if let Ok(status) = std::fs::read_to_string(path) {
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                if let Some(kb) = rest.trim().strip_suffix("kB") {
                    if let Ok(kb) = kb.trim().parse::<f64>() {
                        return kb / 1024.0;
                    }
                }
            }
        }
    }
    0.0
}

/// Spawns `gnnmls serve` on a free port when the CLI binary sits in
/// this bench's target profile directory, and waits for readiness.
/// `None` when the binary is not built or never comes up.
fn spawn_soak_daemon() -> Option<(std::process::Child, std::net::SocketAddr)> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.parent()?.join("gnnmls");
    if !bin.exists() {
        return None;
    }
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .ok()?
        .local_addr()
        .ok()?;
    let mut child = std::process::Command::new(bin)
        .args(["serve", "--addr", &addr.to_string()])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Ok(mut c) = Client::connect(addr) {
            if matches!(c.health(), Ok(r) if r.kind == ResponseKind::Ok) {
                return Some((child, addr));
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    let _ = child.wait();
    None
}

fn bench_serve(c: &mut Criterion) {
    let smoke = c.is_test_mode();
    let iters = if smoke { 3 } else { 20 };
    let spec = SessionSpec::fast("maeri16");

    // --- Cold path: what a one-shot CLI invocation pays. -------------
    let t0 = Instant::now();
    let cold_session = DesignSession::build(&spec).unwrap();
    let cold_answer = cold_session.what_if(NET, true, None).unwrap();
    let cold = t0.elapsed();

    // --- Warm path: the same query as a daemon round-trip. -----------
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Prime the daemon's cache so every timed round-trip is warm.
    let primed = client.what_if(&spec, NET, true, None).unwrap();
    assert_eq!(primed.kind, ResponseKind::Ok);
    assert_eq!(
        primed.what_if.as_ref(),
        Some(&cold_answer),
        "warm daemon answer must be bit-identical to the cold session"
    );
    let warm = min_wall(iters, || {
        let resp = client.what_if(&spec, NET, true, None).unwrap();
        assert_eq!(resp.kind, ResponseKind::Ok);
    });
    let cold_over_warm = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    assert!(
        cold_over_warm >= 10.0,
        "warm what-if must be >= 10x faster than cold start \
         (cold {:.1} ms, warm {:.3} ms)",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
    );

    // --- Reactor soak: idle-plus-trickle concurrency. ----------------
    // The readiness-driven I/O plane claims thousands of idle
    // connections cost epoll registrations, not threads. Hold the storm
    // open and measure what it does to the warm p99 and the RSS. The
    // full-size storm runs the daemon out of process (one process
    // cannot hold both ends of 10k sockets under a 20k fd hard limit)
    // when the CLI binary is built; otherwise it degrades to what the
    // in-process fd budget allows — `soak_connections` records reality.
    let want = if smoke {
        SOAK_CONNECTIONS_SMOKE
    } else {
        SOAK_CONNECTIONS
    };
    let mut soak_child: Option<std::process::Child> = None;
    let (soak_addr, conns) = match (smoke, spawn_soak_daemon()) {
        (false, Some((child, addr))) => {
            let achieved = raise_nofile_limit(want as u64 + 2_048).unwrap_or(0);
            soak_child = Some(child);
            (addr, want.min((achieved as usize).saturating_sub(2_048)))
        }
        (_, other) => {
            if let Some((mut child, _)) = other {
                let _ = child.kill();
                let _ = child.wait();
            }
            let achieved = raise_nofile_limit(want as u64 * 2 + 1_024).unwrap_or(0);
            let cap = want.min(((achieved / 2) as usize).saturating_sub(512));
            (server.local_addr(), cap)
        }
    };
    let mut soak_client = Client::connect(soak_addr).unwrap();
    let primed = soak_client.what_if(&spec, NET, true, None).unwrap();
    assert_eq!(primed.kind, ResponseKind::Ok);
    let baseline_p99 = p99_wall_ms(P99_SAMPLES, || {
        let resp = soak_client.what_if(&spec, NET, true, None).unwrap();
        assert_eq!(resp.kind, ResponseKind::Ok);
    });
    let idle: Vec<std::net::TcpStream> = (0..conns)
        .map(|i| {
            std::net::TcpStream::connect(soak_addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}"))
        })
        .collect();
    let soak_p99 = p99_wall_ms(P99_SAMPLES, || {
        let resp = soak_client.what_if(&spec, NET, true, None).unwrap();
        assert_eq!(resp.kind, ResponseKind::Ok);
    });
    let soak_rss = rss_mb(soak_child.as_ref().map(std::process::Child::id));
    let soak_ratio = soak_p99 / baseline_p99.max(1e-9);
    if !idle.is_empty() {
        // Sanity backstop, deliberately loose against scheduler noise;
        // the committed ledger carries the precise numbers.
        assert!(
            soak_ratio <= 3.0,
            "warm p99 collapsed under {} idle connections: \
             {baseline_p99:.3} ms -> {soak_p99:.3} ms",
            idle.len(),
        );
    }
    drop(idle);
    if let Some(mut child) = soak_child {
        let r = soak_client.shutdown().unwrap();
        assert_eq!(r.kind, ResponseKind::Ok);
        let status = child.wait().unwrap();
        assert!(status.success(), "soak daemon drain failed: {status:?}");
    }
    drop(soak_client);
    server.shutdown();

    // --- Batched vs unbatched inference (session level, no socket, so
    // the comparison isolates the forward-pass coalescing itself). ----
    let gnn_spec = spec.clone().with_policy(FlowPolicy::GnnMls);
    let session = DesignSession::build(&gnn_spec).unwrap();
    let model = session.model().expect("GnnMls session carries a model");
    let k = PATHS.min(session.samples().len());

    let solo = session.infer(k).unwrap();
    let probs = model.predict_paths(&session.samples()[..k]).unwrap();
    for _ in 0..BATCH {
        assert_eq!(
            session.infer_from_probs(k, &probs),
            solo,
            "a batched inference answer must match the unbatched one"
        );
    }
    let unbatched = min_wall(iters, || {
        for _ in 0..BATCH {
            session.infer(k).unwrap();
        }
    });
    let batched = min_wall(iters, || {
        let probs = model.predict_paths(&session.samples()[..k]).unwrap();
        for _ in 0..BATCH {
            session.infer_from_probs(k, &probs);
        }
    });

    let report = ServeBenchReport {
        design: "MAERI 16PE (fast)".into(),
        cold_ms: cold.as_secs_f64() * 1e3,
        warm_ms: warm.as_secs_f64() * 1e3,
        cold_over_warm,
        warm_bit_identical: true,
        batch: BATCH,
        paths: k,
        unbatched_ms: unbatched.as_secs_f64() * 1e3,
        batched_ms: batched.as_secs_f64() * 1e3,
        batch_speedup: unbatched.as_secs_f64() / batched.as_secs_f64().max(1e-12),
        batch_bit_identical: true,
        soak_connections: conns,
        soak_baseline_p99_ms: baseline_p99,
        soak_p99_ms: soak_p99,
        soak_p99_ratio: soak_ratio,
        soak_rss_mb: soak_rss,
        smoke_mode: smoke,
    };
    // Bench binaries run with the package dir as cwd; anchor at the
    // workspace root. Output lands under target/bench/ unless
    // --commit-baseline asks for the committed root-level ledger.
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    if let Some(out) = gnnmls_bench::render::write_bench_json(root, "BENCH_serve.json", &report) {
        println!(
            "cold {:.1} ms, warm {:.3} ms ({:.0}x); batch x{} {:.2} -> {:.2} ms -> {}",
            report.cold_ms,
            report.warm_ms,
            report.cold_over_warm,
            BATCH,
            report.unbatched_ms,
            report.batched_ms,
            out.display(),
        );
    }

    // Standard criterion entries for trend tracking.
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut g = c.benchmark_group("serve");
    g.bench_function("warm_what_if_roundtrip", |b| {
        b.iter(|| client.what_if(&spec, NET, true, None).unwrap().kind)
    });
    g.bench_function("infer_unbatched_x8", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                session.infer(k).unwrap();
            }
        })
    });
    g.bench_function("infer_batched_x8", |b| {
        b.iter(|| {
            let probs = model.predict_paths(&session.samples()[..k]).unwrap();
            for _ in 0..BATCH {
                session.infer_from_probs(k, &probs);
            }
        })
    });
    g.finish();
    server.shutdown();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = serve;
    config = config();
    targets = bench_serve
}
criterion_main!(serve);

//! Criterion benches — one per table/figure of the paper, at bench scale
//! (MAERI 16PE with the fast-test flow config), so `cargo bench` stays in
//! minutes. The full-scale regenerators are the `table*`/`fig*` binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gnn_mls::flow::{prepare, run_flow, FlowPolicy};
use gnn_mls::oracle::{label_paths, net_mls_impact, OracleConfig};
use gnn_mls::paths::extract_path_samples;
use gnnmls_bench::designs::bench_scale;
use gnnmls_dft::{analyze_coverage, DftMode};
use gnnmls_netlist::Tier;
use gnnmls_pdn::ir::{currents_from_power, IrReport};
use gnnmls_pdn::{PdnGrid, PdnSpec, PowerConfig, PowerReport};
use gnnmls_route::{route_design, MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

/// Table I: the single-net what-if oracle (disconnect → re-route →
/// re-evaluate) over the critical paths.
fn bench_table1(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    c.bench_function("table1_single_net_whatif", |b| {
        b.iter(|| {
            let mut router = Router::new(
                &netlist,
                &placement,
                &exp.design.tech,
                MlsPolicy::Disabled,
                exp.cfg.route.clone(),
            )
            .unwrap();
            router.route_all().unwrap();
            let routes = router.db().unwrap();
            let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
            let samples = extract_path_samples(&netlist, &placement, &exp.design.tech, &rep, 10);
            let grid = router.grid().clone();
            net_mls_impact(&samples, &netlist, &router, &routes, &grid)
                .unwrap()
                .len()
        })
    });
}

/// Figure 2 / Table IV: the heterogeneous flow (dominant stage: the
/// no-MLS flow run the comparisons start from).
fn bench_table4_fig2(c: &mut Criterion) {
    let exp = bench_scale();
    c.bench_function("table4_fig2_hetero_flow", |b| {
        b.iter(|| {
            run_flow(&exp.design, &exp.cfg, FlowPolicy::NoMls)
                .unwrap()
                .violating_paths
        })
    });
}

/// Table V: the homogeneous flow under the SOTA policy.
fn bench_table5(c: &mut Criterion) {
    use gnn_mls::flow::FlowConfig;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    let tech = TechConfig::homogeneous_28_28(6, 6);
    let design = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
    let cfg = FlowConfig::fast_test(2500.0);
    c.bench_function("table5_homo_sota_flow", |b| {
        b.iter(|| run_flow(&design, &cfg, FlowPolicy::Sota).unwrap().mls_nets)
    });
}

/// Table III / Table VI: stuck-at coverage analysis under MLS opens.
fn bench_table3_table6(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    let (routes, _) = route_design(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::sota(),
        exp.cfg.route.clone(),
    )
    .unwrap();
    let mut g = c.benchmark_group("table3_table6_dft_coverage");
    for mode in [DftMode::None, DftMode::NetBased, DftMode::WireBased] {
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| analyze_coverage(&netlist, &routes, mode).detected_faults)
        });
    }
    g.finish();
}

/// Figure 9: the conjugate-gradient IR-drop solve.
fn bench_fig9(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    let (routes, _) = route_design(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::Disabled,
        exp.cfg.route.clone(),
    )
    .unwrap();
    let power = PowerReport::compute(
        &netlist,
        &routes,
        &exp.design.tech,
        &PowerConfig::at_freq_mhz(2500.0),
    );
    let mesh = PdnGrid::build(
        placement.floorplan(),
        &exp.design.tech,
        Tier::Logic,
        PdnSpec::maeri_hetero(),
    );
    let currents = currents_from_power(&mesh, &netlist, &placement, &power, 0.81);
    c.bench_function("fig9_ir_solve", |b| {
        b.iter(|| IrReport::solve(&mesh, &currents, 0.81).max_drop_mv)
    });
}

/// Supporting micro-benches: the stages every table pays for.
fn bench_stages(c: &mut Criterion) {
    let exp = bench_scale();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).unwrap();
    c.bench_function("stage_route_disabled", |b| {
        b.iter(|| {
            route_design(
                &netlist,
                &placement,
                &exp.design.tech,
                MlsPolicy::Disabled,
                exp.cfg.route.clone(),
            )
            .unwrap()
            .0
            .summary
            .total_wirelength_m
        })
    });
    let (routes, _) = route_design(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::Disabled,
        exp.cfg.route.clone(),
    )
    .unwrap();
    c.bench_function("stage_sta", |b| {
        b.iter(|| {
            analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0))
                .unwrap()
                .wns_ps()
        })
    });
    c.bench_function("stage_oracle_labeling", |b| {
        let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
        b.iter(|| {
            let mut router = Router::new(
                &netlist,
                &placement,
                &exp.design.tech,
                MlsPolicy::Disabled,
                exp.cfg.route.clone(),
            )
            .unwrap();
            router.route_all().unwrap();
            let mut samples =
                extract_path_samples(&netlist, &placement, &exp.design.tech, &rep, 10);
            label_paths(
                &mut samples,
                &netlist,
                &router,
                &routes,
                &OracleConfig::default(),
            )
            .unwrap()
            .what_ifs
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

criterion_group! {
    name = tables;
    config = config();
    targets = bench_table1, bench_table4_fig2, bench_table5, bench_table3_table6,
              bench_fig9, bench_stages
}
criterion_main!(tables);

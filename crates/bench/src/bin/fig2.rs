//! Regenerates **Figure 2**: timing-violation points (violating
//! registers/endpoints) on MAERI 128PE under the three policies, and the
//! reduction percentages vs No-MLS (paper: SOTA −68 %, GNN-MLS −80 %).
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin fig2
//! ```

use gnnmls_bench::designs::maeri128_hetero;
use gnnmls_bench::paper::{FIG2_OURS_REDUCTION_PCT, FIG2_SOTA_REDUCTION_PCT};
use gnnmls_bench::render::{check, summarize, write_json, Comparison};
use gnnmls_bench::run_three;

fn main() {
    let exp = maeri128_hetero();
    let reports = run_three(&exp);
    let base = reports[0].violating_paths.max(1) as f64;
    let red = |r: &gnn_mls::FlowReport| 100.0 * (1.0 - r.violating_paths as f64 / base);

    let mut t = Comparison::new(
        "Figure 2 — violation points, MAERI 128PE (hetero)",
        &["paper red. %", "meas points", "meas red. %"],
    );
    t.row(
        "No MLS",
        &[
            "0".into(),
            reports[0].violating_paths.to_string(),
            "0".into(),
        ],
    );
    t.row(
        "SOTA",
        &[
            Comparison::num(FIG2_SOTA_REDUCTION_PCT),
            reports[1].violating_paths.to_string(),
            Comparison::num(red(&reports[1])),
        ],
    );
    t.row(
        "GNN-MLS",
        &[
            Comparison::num(FIG2_OURS_REDUCTION_PCT),
            reports[2].violating_paths.to_string(),
            Comparison::num(red(&reports[2])),
        ],
    );
    println!("\n{}", t.render());

    let checks = vec![
        check(
            "both MLS policies reduce violation points",
            red(&reports[1]) > 0.0 && red(&reports[2]) > 0.0,
            format!(
                "SOTA {:.0}%, GNN-MLS {:.0}%",
                red(&reports[1]),
                red(&reports[2])
            ),
        ),
        check(
            "GNN-MLS reduces at least as much as SOTA",
            reports[2].violating_paths <= reports[1].violating_paths,
            format!(
                "{} vs {} points",
                reports[2].violating_paths, reports[1].violating_paths
            ),
        ),
    ];
    summarize(&checks);
    write_json(
        "fig2",
        &serde_json::json!({
            "violating_points": [
                reports[0].violating_paths,
                reports[1].violating_paths,
                reports[2].violating_paths
            ],
            "reduction_pct": [0.0, red(&reports[1]), red(&reports[2])],
            "paper_reduction_pct": [0.0, FIG2_SOTA_REDUCTION_PCT, FIG2_OURS_REDUCTION_PCT],
        }),
    );
}

//! Regenerates **Figure 9**: (a) the heterogeneous IR-drop map, (b/c) the
//! sharing of the memory die's top metal between PDN stripes and signal
//! (MLS) routing.
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin fig9
//! ```

use gnn_mls::flow::prepare;
use gnnmls_bench::designs::{a7_hetero, maeri128_hetero, Experiment};
use gnnmls_bench::paper::{FIG9_A7_IR_PCT, FIG9_MAERI_IR_MV};
use gnnmls_bench::render::{ascii_heatmap, check, summarize, write_json};
use gnnmls_netlist::Tier;
use gnnmls_pdn::ir::{currents_from_power, IrReport};
use gnnmls_pdn::{PdnGrid, PdnSpec, PowerConfig, PowerReport};
use gnnmls_route::{route_design, MlsPolicy};

struct Fig9Result {
    name: &'static str,
    ir_pct: f64,
    ir_mv: f64,
    pdn_util: f64,
    signal_util_top_mem: f64,
}

fn run(exp: &Experiment, spec: PdnSpec) -> Fig9Result {
    eprintln!("running {} ...", exp.name);
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).expect("prepare succeeds");
    let (db, grid) = route_design(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::sota(),
        exp.cfg.route.clone(),
    )
    .expect("routing succeeds");
    let power = PowerReport::compute(
        &netlist,
        &db,
        &exp.design.tech,
        &PowerConfig::at_freq_mhz(exp.cfg.target_freq_mhz),
    );
    // IR on the denser (logic) die at the paper's stripe geometry.
    let vdd_ref = exp.design.tech.min_vdd();
    let mut worst: Option<IrReport> = None;
    for tier in Tier::BOTH {
        let mesh = PdnGrid::build(placement.floorplan(), &exp.design.tech, tier, spec);
        let vdd = exp.design.tech.node(tier).vdd;
        let cur = currents_from_power(&mesh, &netlist, &placement, &power, vdd);
        let rep = IrReport::solve(&mesh, &cur, vdd_ref);
        if worst
            .as_ref()
            .is_none_or(|w| rep.max_drop_mv > w.max_drop_mv)
        {
            worst = Some(rep);
        }
    }
    let worst = worst.expect("two tiers analyzed");
    println!(
        "\n{}",
        ascii_heatmap(
            &worst.drop_v,
            worst.nx,
            worst.ny,
            &format!(
                "Figure 9(a) — IR-drop map, {} ({:?} die)",
                exp.name, worst.tier
            ),
        )
    );

    // Figure 9(b/c): memory-die top metal shared between PDN and signal.
    let top_mem_z = grid.logic_layers; // bond-adjacent memory top metal
    let signal_util = db.summary.layer_utilization[top_mem_z];
    // Layout artifacts: routing-usage heat maps per die + IR map.
    let dir = std::path::PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let tag = exp.name.replace([' ', '(', ')'], "_");
        // Artifacts are best-effort (a read-only checkout must not fail
        // the figure), but a refused write is warned, never swallowed.
        let dump = |path: std::path::PathBuf, bytes: &[u8]| {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("fig9: could not write {}: {e}", path.display());
            }
        };
        for tier in Tier::BOTH {
            let svg = gnnmls_route::congestion_svg(&db, &grid, tier);
            dump(
                dir.join(format!("fig9_{tag}_{tier}_usage.svg")),
                svg.as_bytes(),
            );
        }
        dump(
            dir.join(format!("fig9_{tag}_ir.svg")),
            worst.to_svg().as_bytes(),
        );
        println!("layout SVGs written under target/experiments/ (fig9_{tag}_*.svg)");
    }
    println!(
        "memory-die top metal: PDN utilization {:.0}%, signal utilization {:.0}% (MLS nets: {})",
        spec.utilization() * 100.0,
        signal_util * 100.0,
        db.summary.mls_net_count
    );
    Fig9Result {
        name: exp.name,
        ir_pct: worst.pct_of_vdd,
        ir_mv: worst.max_drop_mv,
        pdn_util: spec.utilization(),
        signal_util_top_mem: signal_util,
    }
}

fn main() {
    let maeri = run(&maeri128_hetero(), PdnSpec::maeri_hetero());
    let a7 = run(&a7_hetero(), PdnSpec::a7_hetero());

    println!(
        "\npaper: MAERI IR 92 mV (~10% of 0.9 V); A7 IR ~{FIG9_A7_IR_PCT}%  (ref {FIG9_MAERI_IR_MV} mV)"
    );
    println!(
        "ours:  MAERI IR {:.1} mV ({:.2}%); A7 IR {:.1} mV ({:.2}%)",
        maeri.ir_mv, maeri.ir_pct, a7.ir_mv, a7.ir_pct
    );

    let checks = vec![
        check(
            "MAERI droops more than the A7 (higher power density)",
            maeri.ir_pct > a7.ir_pct,
            format!("{:.2}% vs {:.2}%", maeri.ir_pct, a7.ir_pct),
        ),
        check(
            "both meet the 10% budget at the paper's PDN geometry",
            maeri.ir_pct <= 10.0 && a7.ir_pct <= 10.0,
            format!("{:.2}% / {:.2}%", maeri.ir_pct, a7.ir_pct),
        ),
        check(
            "PDN and signal share the memory top metal without overflow",
            maeri.pdn_util + maeri.signal_util_top_mem < 1.2,
            format!(
                "PDN {:.0}% + signal {:.0}%",
                maeri.pdn_util * 100.0,
                maeri.signal_util_top_mem * 100.0
            ),
        ),
    ];
    summarize(&checks);
    write_json(
        "fig9",
        &serde_json::json!({
            "maeri": {"ir_mv": maeri.ir_mv, "ir_pct": maeri.ir_pct,
                       "pdn_util": maeri.pdn_util, "signal_util": maeri.signal_util_top_mem},
            "a7": {"ir_mv": a7.ir_mv, "ir_pct": a7.ir_pct,
                    "pdn_util": a7.pdn_util, "signal_util": a7.signal_util_top_mem},
            "names": [maeri.name, a7.name],
        }),
    );
}

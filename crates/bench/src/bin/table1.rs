//! Regenerates **Table I**: metal-layer sharing applied to *single nets*
//! of MAERI 128PE can improve slack (paper: −62 → −45 ps) or degrade it
//! (−45 → −48 ps) — the motivation for net-level control.
//!
//! The harness routes the baseline, then runs the what-if oracle over the
//! critical paths and prints the strongest helped net and the strongest
//! hurt net with their metal usage, next to the paper's rows.
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin table1
//! ```

use gnn_mls::flow::prepare;
use gnn_mls::oracle::{net_mls_impact, NetImpact};
use gnn_mls::paths::extract_path_samples;
use gnnmls_bench::designs::maeri128_hetero;
use gnnmls_bench::paper::TABLE1;
use gnnmls_bench::render::{check, summarize, write_json, Comparison};
use gnnmls_route::{MlsPolicy, Router};
use gnnmls_sta::{analyze, StaConfig};

fn main() {
    let exp = maeri128_hetero();
    let (netlist, placement) = prepare(&exp.design, &exp.cfg).expect("prepare succeeds");
    let mut router = Router::new(
        &netlist,
        &placement,
        &exp.design.tech,
        MlsPolicy::Disabled,
        exp.cfg.route.clone(),
    )
    .expect("router builds");
    router.route_all().unwrap();
    let routes = router.db().unwrap();
    let report = analyze(
        &netlist,
        &routes,
        StaConfig::from_freq_mhz(exp.cfg.target_freq_mhz),
    )
    .expect("acyclic design");

    eprintln!("evaluating single-net MLS impact over the 200 worst paths ...");
    let samples = extract_path_samples(&netlist, &placement, &exp.design.tech, &report, 200);
    let grid = router.grid().clone();
    let impacts = net_mls_impact(&samples, &netlist, &router, &routes, &grid).unwrap();

    let crossed: Vec<&NetImpact> = impacts
        .iter()
        .filter(|i| i.metals_after.0 != 0 && i.metals_after.1 != 0)
        .collect();
    let helped = crossed.first().copied();
    let hurt = crossed.iter().rev().find(|i| i.gain_ps() < 0.0).copied();

    let mut t = Comparison::new(
        "Table I — single-net MLS impact, MAERI 128PE (hetero)",
        &[
            "slack before",
            "metals before",
            "slack after",
            "metals after",
        ],
    );
    for row in TABLE1 {
        t.row(
            format!("paper {}", row.net),
            &[
                Comparison::num(row.before_ps),
                row.metals_before.into(),
                Comparison::num(row.after_ps),
                row.metals_after.into(),
            ],
        );
    }
    for (label, imp) in [("helped", helped), ("hurt", hurt)] {
        if let Some(i) = imp {
            t.row(
                format!("ours {} ({})", i.name, label),
                &[
                    Comparison::num(i.slack_before_ps),
                    NetImpact::metals_str(i.metals_before),
                    Comparison::num(i.slack_after_ps),
                    NetImpact::metals_str(i.metals_after),
                ],
            );
        }
    }
    println!("\n{}", t.render());

    let checks = vec![
        check(
            "some net is helped by MLS",
            helped.is_some_and(|i| i.gain_ps() > 0.0),
            helped
                .map(|i| format!("{}: {:+.1} ps", i.name, i.gain_ps()))
                .unwrap_or_else(|| "none crossed".into()),
        ),
        check(
            "some net is hurt by MLS (the paper's motivation)",
            hurt.is_some(),
            hurt.map(|i| format!("{}: {:+.1} ps", i.name, i.gain_ps()))
                .unwrap_or_else(|| "none hurt".into()),
        ),
        check(
            "helped nets borrow the other die's top metals",
            helped.is_some_and(|i| i.metals_after.1 != 0 && i.metals_before.1 == 0),
            helped
                .map(|i| {
                    format!(
                        "{} -> {}",
                        NetImpact::metals_str(i.metals_before),
                        NetImpact::metals_str(i.metals_after)
                    )
                })
                .unwrap_or_default(),
        ),
    ];
    summarize(&checks);
    write_json(
        "table1",
        &serde_json::json!({
            "evaluated_nets": impacts.len(),
            "helped": helped.map(|i| (i.name.clone(), i.slack_before_ps, i.slack_after_ps)),
            "hurt": hurt.map(|i| (i.name.clone(), i.slack_before_ps, i.slack_after_ps)),
        }),
    );
}

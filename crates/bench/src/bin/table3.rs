//! Regenerates **Table III**: net-based vs wire-based MLS DFT on the
//! MAERI 16PE 4BW design — total faults, detected faults, and the WNS of
//! the testable design.
//!
//! Paper shape: wire-based detects more faults (it also registers the
//! incoming pad signal) at the cost of more own-logic faults and a
//! slightly worse WNS (extra load on the crossing net).
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin table3
//! ```

use gnn_mls::flow::{run_flow, FlowPolicy};
use gnnmls_bench::designs::maeri16_hetero;
use gnnmls_bench::paper::TABLE3;
use gnnmls_bench::render::{check, summarize, write_json, Comparison};
use gnnmls_dft::DftMode;

fn main() {
    let exp = maeri16_hetero();
    let mut measured = Vec::new();
    for mode in [DftMode::NetBased, DftMode::WireBased] {
        eprintln!("running GNN-MLS flow with {mode:?} DFT ...");
        let cfg = exp.cfg.clone().with_dft(mode);
        let r = run_flow(&exp.design, &cfg, FlowPolicy::GnnMls).expect("flow succeeds");
        measured.push(r);
    }

    let mut t = Comparison::new(
        "Table III — MLS DFT strategies, MAERI 16PE 4BW",
        &["total faults", "detected", "coverage %", "WNS (ps)"],
    );
    for row in TABLE3 {
        t.row(
            format!("paper {}", row.method),
            &[
                Comparison::num(row.total_faults),
                Comparison::num(row.detected_faults),
                Comparison::num(100.0 * row.detected_faults / row.total_faults),
                Comparison::num(row.wns_ps),
            ],
        );
    }
    for (name, r) in [
        ("Net-based DFT", &measured[0]),
        ("Wire-based DFT", &measured[1]),
    ] {
        let (total, det) = r.faults.unwrap_or((0, 0));
        t.row(
            format!("ours {name}"),
            &[
                total.to_string(),
                det.to_string(),
                Comparison::num(r.test_coverage_pct.unwrap_or(0.0)),
                Comparison::num(r.wns_ps),
            ],
        );
    }
    println!("\n{}", t.render());
    println!(
        "MLS nets in the tested design: {} (paper: 16); DFT cells added: net-based {}, wire-based {}",
        measured[0].mls_nets, measured[0].dft_cells, measured[1].dft_cells
    );

    let (net_total, net_det) = measured[0].faults.unwrap_or((0, 0));
    let (wire_total, wire_det) = measured[1].faults.unwrap_or((0, 0));
    let checks = vec![
        check(
            "wire-based detects more faults than net-based",
            wire_det > net_det,
            format!("{wire_det} vs {net_det}"),
        ),
        check(
            "wire-based adds more logic (its shadow FFs add faults)",
            measured[1].dft_cells > measured[0].dft_cells,
            format!(
                "{} vs {} DFT cells",
                measured[1].dft_cells, measured[0].dft_cells
            ),
        ),
        check(
            "wire-based WNS is no better than net-based (extra load)",
            measured[1].wns_ps <= measured[0].wns_ps + 1.0,
            format!("{:.1} vs {:.1} ps", measured[1].wns_ps, measured[0].wns_ps),
        ),
        check(
            "both strategies reach high coverage",
            measured
                .iter()
                .all(|r| r.test_coverage_pct.unwrap_or(0.0) > 90.0),
            format!(
                "{:.2}% / {:.2}%",
                measured[0].test_coverage_pct.unwrap_or(0.0),
                measured[1].test_coverage_pct.unwrap_or(0.0)
            ),
        ),
    ];
    summarize(&checks);
    write_json(
        "table3",
        &serde_json::json!({
            "net_based": {"total": net_total, "detected": net_det, "wns_ps": measured[0].wns_ps},
            "wire_based": {"total": wire_total, "detected": wire_det, "wns_ps": measured[1].wns_ps},
        }),
    );
}

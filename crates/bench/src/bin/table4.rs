//! Regenerates **Table IV** (and the left half of Figure 8): PPA metrics
//! for No-MLS / SOTA / GNN-MLS on the heterogeneous benchmarks.
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin table4
//! ```

use gnnmls_bench::designs::{a7_hetero, maeri128_hetero};
use gnnmls_bench::paper::{TABLE4_A7, TABLE4_MAERI128};
use gnnmls_bench::render::{summarize, write_json};
use gnnmls_bench::{policy_comparison, run_three, shape_checks};

fn main() {
    let mut all = Vec::new();
    for (exp, paper) in [
        (maeri128_hetero(), TABLE4_MAERI128),
        (a7_hetero(), TABLE4_A7),
    ] {
        let reports = run_three(&exp);
        let table = policy_comparison(
            &format!("Table IV — {} (16nm logic + 28nm memory)", exp.name),
            paper,
            &reports,
        );
        println!("\n{}", table.render());
        if let Some(rt) = reports[2].runtime_s {
            println!("GNN-MLS model runtime: {rt:.1} s (paper: minutes at full scale)");
        }
        let checks = shape_checks(paper, &reports);
        summarize(&checks);
        all.push((exp.name, reports));
    }
    let json: Vec<_> = all
        .iter()
        .map(|(name, r)| serde_json::json!({ "design": name, "reports": r }))
        .collect();
    write_json("table4", &json);
}

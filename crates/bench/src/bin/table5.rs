//! Regenerates **Table V** (and the right half of Figure 8): PPA metrics
//! for the homogeneous (28 nm + 28 nm) benchmarks.
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin table5
//! ```

use gnnmls_bench::designs::{a7_homo, maeri256_homo};
use gnnmls_bench::paper::{TABLE5_A7, TABLE5_MAERI256};
use gnnmls_bench::render::{summarize, write_json};
use gnnmls_bench::{policy_comparison, run_three, shape_checks};

fn main() {
    let mut all = Vec::new();
    for (exp, paper) in [(maeri256_homo(), TABLE5_MAERI256), (a7_homo(), TABLE5_A7)] {
        let reports = run_three(&exp);
        let table = policy_comparison(
            &format!("Table V — {} (28nm logic + 28nm memory)", exp.name),
            paper,
            &reports,
        );
        println!("\n{}", table.render());
        let checks = shape_checks(paper, &reports);
        summarize(&checks);
        all.push((exp.name, reports));
    }
    let json: Vec<_> = all
        .iter()
        .map(|(name, r)| serde_json::json!({ "design": name, "reports": r }))
        .collect();
    write_json("table5", &json);
}

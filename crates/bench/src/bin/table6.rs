//! Regenerates **Table VI**: testable (scan + MLS DFT) designs — No-MLS
//! vs GNN-MLS on both heterogeneous benchmarks, with wire-based MLS DFT
//! inserted (the paper's scan-FF-at-critical-points solution).
//!
//! ```sh
//! cargo run --release -p gnnmls-bench --bin table6
//! ```

use gnn_mls::flow::{run_flow, FlowPolicy};
use gnn_mls::FlowReport;
use gnnmls_bench::designs::{a7_hetero, maeri128_hetero};
use gnnmls_bench::paper::{DftRow, TABLE6_A7, TABLE6_MAERI128};
use gnnmls_bench::render::{check, summarize, write_json, Comparison};
use gnnmls_dft::DftMode;

fn measured_of(r: &FlowReport, metric: &str) -> String {
    match metric {
        "WL (m)" => Comparison::num(r.wirelength_m),
        "Test Cover (%)" => Comparison::num(r.test_coverage_pct.unwrap_or(0.0)),
        "WNS (ps)" => Comparison::num(r.wns_ps),
        "TNS (ns)" => Comparison::num(r.tns_ns),
        "#Vio. Paths" => r.violating_paths.to_string(),
        "#MLS Nets" => r.mls_nets.to_string(),
        "Pwr (mW)" => Comparison::num(r.power_mw),
        "Eff. Freq (MHz)" => Comparison::num(r.eff_freq_mhz),
        _ => "-".into(),
    }
}

fn main() {
    let mut all = Vec::new();
    for (exp, paper) in [
        (maeri128_hetero(), TABLE6_MAERI128),
        (a7_hetero(), TABLE6_A7),
    ] {
        let cfg = exp.cfg.clone().with_dft(DftMode::WireBased);
        eprintln!("running {} [No MLS + DFT] ...", exp.name);
        let no_mls = run_flow(&exp.design, &cfg, FlowPolicy::NoMls).expect("flow succeeds");
        eprintln!("running {} [GNN-MLS + DFT] ...", exp.name);
        let ours = run_flow(&exp.design, &cfg, FlowPolicy::GnnMls).expect("flow succeeds");

        let mut t = Comparison::new(
            format!(
                "Table VI — testable {} (scan + wire-based MLS DFT)",
                exp.name
            ),
            &["paper NoMLS", "paper Ours", "meas NoMLS", "meas Ours"],
        );
        for row in paper {
            t.row(
                row.metric,
                &[
                    Comparison::num(row.no_mls),
                    Comparison::num(row.gnn_mls),
                    measured_of(&no_mls, row.metric),
                    measured_of(&ours, row.metric),
                ],
            );
        }
        println!("\n{}", t.render());

        let checks = eval_checks(paper, &no_mls, &ours);
        summarize(&checks);
        all.push(serde_json::json!({
            "design": exp.name,
            "no_mls": no_mls,
            "gnn_mls": ours,
        }));
    }
    write_json("table6", &all);
}

fn eval_checks(
    _paper: &[DftRow],
    no_mls: &FlowReport,
    ours: &FlowReport,
) -> Vec<gnnmls_bench::ShapeCheck> {
    vec![
        check(
            "GNN-MLS + DFT still beats No-MLS + DFT on TNS",
            ours.tns_ns > no_mls.tns_ns,
            format!("{:.2} vs {:.2} ns", ours.tns_ns, no_mls.tns_ns),
        ),
        check(
            "GNN-MLS + DFT beats No-MLS + DFT on WNS",
            ours.wns_ps > no_mls.wns_ps,
            format!("{:.1} vs {:.1} ps", ours.wns_ps, no_mls.wns_ps),
        ),
        check(
            "violating paths drop with GNN-MLS",
            ours.violating_paths < no_mls.violating_paths,
            format!("{} vs {}", ours.violating_paths, no_mls.violating_paths),
        ),
        check(
            "coverage stays within 1% of the No-MLS design",
            (ours.test_coverage_pct.unwrap_or(0.0) - no_mls.test_coverage_pct.unwrap_or(0.0)).abs()
                < 1.0,
            format!(
                "{:.2}% vs {:.2}%",
                ours.test_coverage_pct.unwrap_or(0.0),
                no_mls.test_coverage_pct.unwrap_or(0.0)
            ),
        ),
        check(
            "effective frequency improves",
            ours.eff_freq_mhz > no_mls.eff_freq_mhz,
            format!("{:.0} vs {:.0} MHz", ours.eff_freq_mhz, no_mls.eff_freq_mhz),
        ),
    ]
}

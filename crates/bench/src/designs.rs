//! Canonical experiment setups.
//!
//! The generators reproduce each benchmark's *structure* at a scale that
//! keeps the whole experiment suite in minutes (the paper's RTL is tens
//! of times larger); EXPERIMENTS.md records the scale alongside the
//! results. Targets follow the paper: 2,500 MHz for MAERI, 2,000 MHz for
//! the A7.

use gnn_mls::flow::FlowConfig;
use gnnmls_netlist::generators::{
    generate_a7, generate_maeri, A7Config, GeneratedDesign, MaeriConfig,
};
use gnnmls_netlist::tech::TechConfig;

/// One named experiment: a generated design plus its flow configuration.
pub struct Experiment {
    /// Display name (matches the paper's benchmark naming).
    pub name: &'static str,
    /// The generated design (netlist + technology).
    pub design: GeneratedDesign,
    /// Flow configuration (target frequency, training budget, …).
    pub cfg: FlowConfig,
}

impl Experiment {
    fn new(name: &'static str, design: GeneratedDesign, mhz: f64) -> Self {
        Self {
            name,
            design,
            cfg: FlowConfig::new(mhz),
        }
    }
}

/// Table IV / Fig. 2 / Fig. 8-left: MAERI 128PE 32BW, 16 nm logic +
/// 28 nm memory, BEOL 6+6, 2.5 GHz.
pub fn maeri128_hetero() -> Experiment {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    Experiment::new(
        "MAERI 128PE (hetero)",
        generate_maeri(&MaeriConfig::pe128_bw32(), &tech).expect("generator is infallible"),
        2500.0,
    )
}

/// Table IV / Fig. 8: A7 dual-core, heterogeneous, BEOL 8+8, 2.0 GHz.
pub fn a7_hetero() -> Experiment {
    let tech = TechConfig::heterogeneous_16_28(8, 8);
    Experiment::new(
        "A7 Dual-Core (hetero)",
        generate_a7(&A7Config::dual_core(), &tech).expect("generator is infallible"),
        2000.0,
    )
}

/// Table V: MAERI 256PE 64BW, homogeneous 28 + 28 nm, 2.5 GHz.
pub fn maeri256_homo() -> Experiment {
    let tech = TechConfig::homogeneous_28_28(6, 6);
    Experiment::new(
        "MAERI 256PE (homo)",
        generate_maeri(&MaeriConfig::pe256_bw64(), &tech).expect("generator is infallible"),
        2500.0,
    )
}

/// Table V: A7 dual-core, homogeneous 28 + 28 nm, 2.0 GHz.
pub fn a7_homo() -> Experiment {
    let tech = TechConfig::homogeneous_28_28(8, 8);
    Experiment::new(
        "A7 Dual-Core (homo)",
        generate_a7(&A7Config::dual_core(), &tech).expect("generator is infallible"),
        2000.0,
    )
}

/// Table III: MAERI 16PE 4BW (the DFT study design), heterogeneous.
pub fn maeri16_hetero() -> Experiment {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    Experiment::new(
        "MAERI 16PE 4BW (hetero)",
        generate_maeri(&MaeriConfig::pe16_bw4(), &tech).expect("generator is infallible"),
        2500.0,
    )
}

/// A down-scaled experiment for Criterion benches (seconds, not minutes).
pub fn bench_scale() -> Experiment {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let mut e = Experiment::new(
        "MAERI 16PE (bench scale)",
        generate_maeri(&MaeriConfig::pe16_bw4(), &tech).expect("generator is infallible"),
        2500.0,
    );
    e.cfg = FlowConfig::fast_test(2500.0);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_build_and_follow_paper_targets() {
        let t3 = maeri16_hetero();
        assert_eq!(t3.cfg.target_freq_mhz, 2500.0);
        assert!(t3.design.netlist.cell_count() > 500);
        let a7 = a7_homo();
        assert_eq!(a7.cfg.target_freq_mhz, 2000.0);
        assert!(!a7.design.tech.is_heterogeneous());
        let m = maeri128_hetero();
        assert!(m.design.tech.is_heterogeneous());
        assert!(m.design.netlist.cell_count() > t3.design.netlist.cell_count());
    }
}

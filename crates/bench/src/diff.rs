//! The PPA regression gate: compares a fresh [`SuiteReport`] against a
//! committed baseline with per-metric tolerances.
//!
//! QoR metrics are deterministic under a fixed seed, so the gate is
//! strict: integer counts (F2F pads, MLS nets, violating paths, …)
//! must match exactly, float metrics within a tiny relative tolerance
//! (libm differences across platforms). Directional metrics that move
//! the *good* way are reported as improvements (pass with a note, so a
//! genuinely better result still prompts a baseline refresh); anything
//! else outside tolerance is a regression. Wall-clock is advisory and
//! never gates — it is machine-local by construction.
//!
//! A scenario or metric present in the baseline but missing from the
//! fresh run fails (losing coverage is a regression); new scenarios or
//! metrics in the fresh run are notes (the baseline just needs a
//! refresh to start tracking them).

use std::collections::BTreeSet;
use std::fmt;

use crate::suite::SuiteReport;

/// Relative tolerance for float QoR metrics (absorbs libm rounding
/// differences across platforms, nothing more).
pub const FLOAT_REL_TOL: f64 = 1e-6;

/// Which way a metric is allowed to drift without being a regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (WNS, coverage, MLS gain).
    HigherIsBetter,
    /// Smaller is better (wirelength, power, IR drop).
    LowerIsBetter,
    /// Any drift beyond tolerance is a regression (counts, unknown
    /// metrics).
    Exact,
}

/// How one metric is compared.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricPolicy {
    /// Improvement direction.
    pub direction: Direction,
    /// Relative tolerance under which a drift is noise.
    pub rel_tol: f64,
    /// Advisory metrics never fail the gate.
    pub advisory: bool,
}

/// The comparison policy for a metric name. Unknown metrics are exact
/// with the float tolerance — the safe default for anything a future
/// suite adds.
pub fn policy_for(metric: &str) -> MetricPolicy {
    let exact_count = MetricPolicy {
        direction: Direction::Exact,
        rel_tol: 0.0,
        advisory: false,
    };
    let float = |direction| MetricPolicy {
        direction,
        rel_tol: FLOAT_REL_TOL,
        advisory: false,
    };
    match metric {
        "wall_clock_s" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: FLOAT_REL_TOL,
            advisory: true,
        },
        "f2f_pads" | "mls_nets" | "violating_paths" | "endpoints" | "dft_cells" => exact_count,
        "wns_ps" | "tns_ns" | "eff_freq_mhz" | "test_coverage_pct" | "mls_wl_gain_pct"
        | "mls_wns_gain_ps" => float(Direction::HigherIsBetter),
        "wirelength_m" | "power_mw" | "ir_drop_pct" => float(Direction::LowerIsBetter),
        _ => float(Direction::Exact),
    }
}

/// The verdict on one (scenario, metric) cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance.
    Unchanged,
    /// Outside tolerance, moved the good way (pass, noted so the
    /// baseline gets refreshed).
    Improved,
    /// Outside tolerance the wrong way, or drift on an exact metric
    /// (fails the gate).
    Regressed,
    /// Present in the baseline, absent from the fresh run (fails —
    /// lost coverage).
    MissingInFresh,
    /// Absent from the baseline, present in the fresh run (note only).
    NewInFresh,
    /// Advisory drift (wall-clock); never fails.
    Advisory,
}

impl DiffStatus {
    /// Whether this status fails the gate.
    pub fn is_failure(self) -> bool {
        matches!(self, DiffStatus::Regressed | DiffStatus::MissingInFresh)
    }

    /// Short tag for rendering.
    pub fn tag(self) -> &'static str {
        match self {
            DiffStatus::Unchanged => "ok",
            DiffStatus::Improved => "IMPROVED",
            DiffStatus::Regressed => "REGRESSED",
            DiffStatus::MissingInFresh => "MISSING",
            DiffStatus::NewInFresh => "new",
            DiffStatus::Advisory => "advisory",
        }
    }
}

/// One comparison entry. `metric` is `"*"` for whole-scenario entries.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffEntry {
    /// Scenario name.
    pub scenario: String,
    /// Metric name, or `"*"` for a whole scenario appearing/vanishing.
    pub metric: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Fresh value, when present.
    pub fresh: Option<f64>,
    /// The verdict.
    pub status: DiffStatus,
}

/// The full gate result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffReport {
    /// Every compared cell, in (scenario, metric) order. `Unchanged`
    /// entries are elided; only drifts and coverage changes appear.
    pub entries: Vec<DiffEntry>,
    /// Cells compared in total (including unchanged ones).
    pub compared: usize,
}

impl DiffReport {
    /// Number of gate-failing entries.
    pub fn regressions(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status.is_failure())
            .count()
    }

    /// `true` when the gate passes (no regressions, no lost coverage).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_v = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.6}"));
        for e in &self.entries {
            writeln!(
                f,
                "[{}] {} / {}: baseline {} -> fresh {}",
                e.status.tag(),
                e.scenario,
                e.metric,
                fmt_v(e.baseline),
                fmt_v(e.fresh),
            )?;
        }
        let fails = self.regressions();
        write!(
            f,
            "bench diff: {} cells compared, {} drifted, {} regression{}",
            self.compared,
            self.entries.len(),
            fails,
            if fails == 1 { "" } else { "s" }
        )
    }
}

fn compare_metric(scenario: &str, metric: &str, b: f64, fr: f64) -> DiffEntry {
    let policy = policy_for(metric);
    let scale = b.abs().max(fr.abs());
    let within = if policy.rel_tol == 0.0 {
        b == fr
    } else {
        (fr - b).abs() <= policy.rel_tol * scale.max(1e-12)
    };
    let status = if within {
        DiffStatus::Unchanged
    } else if policy.advisory {
        DiffStatus::Advisory
    } else {
        let improved = match policy.direction {
            Direction::HigherIsBetter => fr > b,
            Direction::LowerIsBetter => fr < b,
            Direction::Exact => false,
        };
        if improved {
            DiffStatus::Improved
        } else {
            DiffStatus::Regressed
        }
    };
    DiffEntry {
        scenario: scenario.to_string(),
        metric: metric.to_string(),
        baseline: Some(b),
        fresh: Some(fr),
        status,
    }
}

/// Diffs a fresh suite run against the committed baseline.
///
/// A schema-version mismatch is reported as a single failing entry
/// (the ledgers are not comparable) instead of a misleading per-metric
/// storm.
pub fn diff_reports(baseline: &SuiteReport, fresh: &SuiteReport) -> DiffReport {
    let mut out = DiffReport::default();
    if baseline.schema_version != fresh.schema_version {
        out.entries.push(DiffEntry {
            scenario: "*".into(),
            metric: "schema_version".into(),
            baseline: Some(baseline.schema_version as f64),
            fresh: Some(fresh.schema_version as f64),
            status: DiffStatus::Regressed,
        });
        out.compared = 1;
        return out;
    }
    let fresh_by_name = |name: &str| fresh.scenarios.iter().find(|s| s.name == name);
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for bs in &baseline.scenarios {
        seen.insert(bs.name.as_str());
        let Some(fs) = fresh_by_name(&bs.name) else {
            out.entries.push(DiffEntry {
                scenario: bs.name.clone(),
                metric: "*".into(),
                baseline: None,
                fresh: None,
                status: DiffStatus::MissingInFresh,
            });
            out.compared += 1;
            continue;
        };
        for (metric, &b) in &bs.metrics {
            out.compared += 1;
            match fs.metrics.get(metric) {
                Some(&fr) => {
                    let entry = compare_metric(&bs.name, metric, b, fr);
                    if entry.status != DiffStatus::Unchanged {
                        out.entries.push(entry);
                    }
                }
                None => out.entries.push(DiffEntry {
                    scenario: bs.name.clone(),
                    metric: metric.clone(),
                    baseline: Some(b),
                    fresh: None,
                    status: DiffStatus::MissingInFresh,
                }),
            }
        }
        // Wall-clock: always compared, never gates.
        out.compared += 1;
        let entry = compare_metric(&bs.name, "wall_clock_s", bs.wall_clock_s, fs.wall_clock_s);
        if entry.status != DiffStatus::Unchanged {
            out.entries.push(entry);
        }
        for (metric, &fr) in &fs.metrics {
            if !bs.metrics.contains_key(metric) {
                out.compared += 1;
                out.entries.push(DiffEntry {
                    scenario: bs.name.clone(),
                    metric: metric.clone(),
                    baseline: None,
                    fresh: Some(fr),
                    status: DiffStatus::NewInFresh,
                });
            }
        }
    }
    for fs in &fresh.scenarios {
        if !seen.contains(fs.name.as_str()) {
            out.compared += 1;
            out.entries.push(DiffEntry {
                scenario: fs.name.clone(),
                metric: "*".into(),
                baseline: None,
                fresh: None,
                status: DiffStatus::NewInFresh,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{ScenarioResult, SuiteReport, SUITE_SCHEMA_VERSION};
    use std::collections::BTreeMap;

    fn scenario(name: &str, metrics: &[(&str, f64)]) -> ScenarioResult {
        ScenarioResult {
            name: name.into(),
            design: "maeri16".into(),
            tech: "hetero".into(),
            policy: "no-mls".into(),
            metrics: metrics
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect::<BTreeMap<_, _>>(),
            wall_clock_s: 10.0,
        }
    }

    fn report(scenarios: Vec<ScenarioResult>) -> SuiteReport {
        SuiteReport {
            schema_version: SUITE_SCHEMA_VERSION,
            manifest_version: 1,
            profile: "ci".into(),
            scenarios,
        }
    }

    fn entry_status(d: &DiffReport, scenario: &str, metric: &str) -> Option<DiffStatus> {
        d.entries
            .iter()
            .find(|e| e.scenario == scenario && e.metric == metric)
            .map(|e| e.status)
    }

    #[test]
    fn identical_reports_pass_clean() {
        let b = report(vec![scenario(
            "s",
            &[("wns_ps", -12.0), ("f2f_pads", 40.0)],
        )]);
        let d = diff_reports(&b, &b.clone());
        assert!(d.passed());
        assert!(d.entries.is_empty(), "{d}");
        assert_eq!(d.compared, 3); // two metrics + wall-clock
    }

    #[test]
    fn wrong_direction_drift_is_a_regression() {
        let b = report(vec![scenario("s", &[("wns_ps", -12.0)])]);
        let f = report(vec![scenario("s", &[("wns_ps", -30.0)])]);
        let d = diff_reports(&b, &f);
        assert!(!d.passed());
        assert_eq!(entry_status(&d, "s", "wns_ps"), Some(DiffStatus::Regressed));
    }

    #[test]
    fn good_direction_drift_is_an_improvement_and_passes() {
        let b = report(vec![scenario(
            "s",
            &[("wns_ps", -12.0), ("wirelength_m", 2.0)],
        )]);
        let f = report(vec![scenario(
            "s",
            &[("wns_ps", -5.0), ("wirelength_m", 1.8)],
        )]);
        let d = diff_reports(&b, &f);
        assert!(d.passed(), "{d}");
        assert_eq!(entry_status(&d, "s", "wns_ps"), Some(DiffStatus::Improved));
        assert_eq!(
            entry_status(&d, "s", "wirelength_m"),
            Some(DiffStatus::Improved)
        );
    }

    #[test]
    fn exact_counts_regress_in_both_directions() {
        let b = report(vec![scenario("s", &[("f2f_pads", 40.0)])]);
        for fresh_pads in [39.0, 41.0] {
            let f = report(vec![scenario("s", &[("f2f_pads", fresh_pads)])]);
            let d = diff_reports(&b, &f);
            assert!(!d.passed(), "pads {fresh_pads} must gate");
            assert_eq!(
                entry_status(&d, "s", "f2f_pads"),
                Some(DiffStatus::Regressed)
            );
        }
    }

    #[test]
    fn tiny_float_noise_is_within_tolerance() {
        let b = report(vec![scenario("s", &[("wirelength_m", 2.0)])]);
        let f = report(vec![scenario("s", &[("wirelength_m", 2.0 * (1.0 + 1e-9))])]);
        assert!(diff_reports(&b, &f).passed());
    }

    #[test]
    fn missing_metric_fails_new_metric_notes() {
        let b = report(vec![scenario("s", &[("wns_ps", -1.0), ("power_mw", 9.0)])]);
        let f = report(vec![scenario(
            "s",
            &[("wns_ps", -1.0), ("ir_drop_pct", 5.0)],
        )]);
        let d = diff_reports(&b, &f);
        assert!(!d.passed());
        assert_eq!(
            entry_status(&d, "s", "power_mw"),
            Some(DiffStatus::MissingInFresh)
        );
        assert_eq!(
            entry_status(&d, "s", "ir_drop_pct"),
            Some(DiffStatus::NewInFresh)
        );
    }

    #[test]
    fn missing_scenario_fails_new_scenario_notes() {
        let b = report(vec![scenario("old", &[("wns_ps", -1.0)])]);
        let f = report(vec![scenario("new", &[("wns_ps", -1.0)])]);
        let d = diff_reports(&b, &f);
        assert!(!d.passed());
        assert_eq!(
            entry_status(&d, "old", "*"),
            Some(DiffStatus::MissingInFresh)
        );
        assert_eq!(entry_status(&d, "new", "*"), Some(DiffStatus::NewInFresh));
    }

    #[test]
    fn wall_clock_drift_is_advisory_only() {
        let b = report(vec![scenario("s", &[("wns_ps", -1.0)])]);
        let mut f = b.clone();
        f.scenarios[0].wall_clock_s = 500.0;
        let d = diff_reports(&b, &f);
        assert!(d.passed(), "{d}");
        assert_eq!(
            entry_status(&d, "s", "wall_clock_s"),
            Some(DiffStatus::Advisory)
        );
    }

    #[test]
    fn schema_mismatch_is_a_single_failure() {
        let b = report(vec![scenario("s", &[("wns_ps", -1.0)])]);
        let mut f = b.clone();
        f.schema_version += 1;
        let d = diff_reports(&b, &f);
        assert!(!d.passed());
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].metric, "schema_version");
    }

    #[test]
    fn render_mentions_the_verdict() {
        let b = report(vec![scenario("s", &[("wns_ps", -12.0)])]);
        let f = report(vec![scenario("s", &[("wns_ps", -30.0)])]);
        let text = diff_reports(&b, &f).to_string();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("1 regression"), "{text}");
    }
}

//! Experiment harness for the GNN-MLS reproduction.
//!
//! Each table and figure of the paper has a regenerator binary
//! (`cargo run --release -p gnnmls-bench --bin table4`, …) that runs the
//! corresponding flow configurations, prints measured rows next to the
//! paper's published rows, evaluates *shape checks* (who wins, direction
//! of regressions — absolute numbers cannot match a TSMC testbed), and
//! dumps machine-readable JSON under `target/experiments/`.
//!
//! - [`designs`] — the canonical experiment setups (design generator +
//!   flow configuration per benchmark).
//! - [`paper`] — the paper's published values (Tables I, III–VI, Fig. 2).
//! - [`render`] — table rendering, shape checks, and JSON output.

// Library code writes progress/tables through explicit (error-tolerant)
// `writeln!` handles, never bare prints; the regenerator binaries are
// the only place `println!` lives.
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(test, allow(clippy::print_stdout, clippy::print_stderr))]

pub mod designs;
pub mod diff;
pub mod paper;
pub mod render;
pub mod runner;
pub mod suite;

pub use designs::Experiment;
pub use diff::{diff_reports, policy_for, DiffReport, DiffStatus};
pub use render::{check, write_json, Comparison, ShapeCheck};
pub use runner::{metric_of, policy_comparison, run_three, shape_checks};
pub use suite::{
    load_manifest, load_report, parse_manifest, run_suite, write_report, Scenario, SuiteError,
    SuiteManifest, SuiteReport, SUITE_SCHEMA_VERSION,
};

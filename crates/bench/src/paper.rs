//! The paper's published numbers, used as the reference column in every
//! regenerated table.

/// One three-policy metric row as published.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyRow {
    /// Metric label, e.g. `"WNS (ps)"`.
    pub metric: &'static str,
    /// Sequential-2D (No MLS) value.
    pub no_mls: f64,
    /// SOTA (region sharing, ref. \[9\]) value.
    pub sota: f64,
    /// GNN-MLS value.
    pub ours: f64,
}

/// Table IV, MAERI 128PE heterogeneous (16 nm logic + 28 nm memory).
pub const TABLE4_MAERI128: &[PolicyRow] = &[
    PolicyRow {
        metric: "WL (m)",
        no_mls: 5.23,
        sota: 5.18,
        ours: 5.16,
    },
    PolicyRow {
        metric: "WNS (ps)",
        no_mls: -85.0,
        sota: -29.0,
        ours: -23.0,
    },
    PolicyRow {
        metric: "TNS (ns)",
        no_mls: -327.0,
        sota: -32.0,
        ours: -11.0,
    },
    PolicyRow {
        metric: "#Vio. Paths",
        no_mls: 14_000.0,
        sota: 4_600.0,
        ours: 2_800.0,
    },
    PolicyRow {
        metric: "#MLS Nets",
        no_mls: 0.0,
        sota: 9_500.0,
        ours: 2_370.0,
    },
    PolicyRow {
        metric: "Pwr (mW)",
        no_mls: 1_472.0,
        sota: 1_404.0,
        ours: 1_389.0,
    },
    PolicyRow {
        metric: "IR-drop (%)",
        no_mls: 10.0,
        sota: 9.5,
        ours: 9.4,
    },
    PolicyRow {
        metric: "L.S Pwr (mW)",
        no_mls: 40.0,
        sota: 45.0,
        ours: 46.0,
    },
    PolicyRow {
        metric: "Eff. Freq (MHz)",
        no_mls: 2_061.0,
        sota: 2_330.0,
        ours: 2_363.0,
    },
];

/// Table IV, A7 dual-core heterogeneous.
pub const TABLE4_A7: &[PolicyRow] = &[
    PolicyRow {
        metric: "WL (m)",
        no_mls: 7.60,
        sota: 8.30,
        ours: 8.10,
    },
    PolicyRow {
        metric: "WNS (ps)",
        no_mls: -140.0,
        sota: -118.0,
        ours: -106.0,
    },
    PolicyRow {
        metric: "TNS (ns)",
        no_mls: -84.0,
        sota: -94.0,
        ours: -75.0,
    },
    PolicyRow {
        metric: "#Vio. Paths",
        no_mls: 4_500.0,
        sota: 4_400.0,
        ours: 4_200.0,
    },
    PolicyRow {
        metric: "#MLS Nets",
        no_mls: 0.0,
        sota: 3_542.0,
        ours: 2_621.0,
    },
    PolicyRow {
        metric: "Pwr (mW)",
        no_mls: 1_008.0,
        sota: 1_061.0,
        ours: 1_052.0,
    },
    PolicyRow {
        metric: "IR-drop (%)",
        no_mls: 1.9,
        sota: 2.0,
        ours: 1.98,
    },
    PolicyRow {
        metric: "L.S Pwr (mW)",
        no_mls: 31.0,
        sota: 32.0,
        ours: 33.0,
    },
    PolicyRow {
        metric: "Eff. Freq (MHz)",
        no_mls: 1_562.0,
        sota: 1_618.0,
        ours: 1_650.0,
    },
];

/// Table V, MAERI 256PE homogeneous (28 + 28 nm).
pub const TABLE5_MAERI256: &[PolicyRow] = &[
    PolicyRow {
        metric: "WL (m)",
        no_mls: 14.5,
        sota: 14.6,
        ours: 15.5,
    },
    PolicyRow {
        metric: "WNS (ps)",
        no_mls: -83.0,
        sota: -85.0,
        ours: -77.0,
    },
    PolicyRow {
        metric: "TNS (ns)",
        no_mls: -513.0,
        sota: -715.0,
        ours: -240.0,
    },
    PolicyRow {
        metric: "#Vio. Paths",
        no_mls: 16_037.0,
        sota: 24_195.0,
        ours: 9_173.0,
    },
    PolicyRow {
        metric: "#MLS Nets",
        no_mls: 0.0,
        sota: 870.0,
        ours: 1_600.0,
    },
    PolicyRow {
        metric: "Pwr (mW)",
        no_mls: 4_680.0,
        sota: 4_747.0,
        ours: 4_804.0,
    },
    PolicyRow {
        metric: "Eff. Freq (MHz)",
        no_mls: 2_070.0,
        sota: 2_061.0,
        ours: 2_096.0,
    },
];

/// Table V, A7 dual-core homogeneous.
pub const TABLE5_A7: &[PolicyRow] = &[
    PolicyRow {
        metric: "WL (m)",
        no_mls: 14.5,
        sota: 12.1,
        ours: 11.2,
    },
    PolicyRow {
        metric: "WNS (ps)",
        no_mls: -114.0,
        sota: -258.0,
        ours: -48.0,
    },
    PolicyRow {
        metric: "TNS (ns)",
        no_mls: -89.0,
        sota: -242.0,
        ours: -48.0,
    },
    PolicyRow {
        metric: "#Vio. Paths",
        no_mls: 11_391.0,
        sota: 16_770.0,
        ours: 3_569.0,
    },
    PolicyRow {
        metric: "#MLS Nets",
        no_mls: 0.0,
        sota: 8_400.0,
        ours: 73_000.0,
    },
    PolicyRow {
        metric: "Pwr (mW)",
        no_mls: 1_425.0,
        sota: 1_412.0,
        ours: 1_442.0,
    },
    PolicyRow {
        metric: "Eff. Freq (MHz)",
        no_mls: 1_628.0,
        sota: 1_319.0,
        ours: 1_824.0,
    },
];

/// One No-MLS vs GNN-MLS row of Table VI (testable designs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DftRow {
    /// Metric label.
    pub metric: &'static str,
    /// No-MLS design with DFT.
    pub no_mls: f64,
    /// GNN-MLS design with DFT.
    pub gnn_mls: f64,
}

/// Table VI, MAERI 128PE with scan + MLS DFT.
pub const TABLE6_MAERI128: &[DftRow] = &[
    DftRow {
        metric: "WL (m)",
        no_mls: 5.95,
        gnn_mls: 5.93,
    },
    DftRow {
        metric: "Test Cover (%)",
        no_mls: 98.25,
        gnn_mls: 98.38,
    },
    DftRow {
        metric: "WNS (ps)",
        no_mls: -86.0,
        gnn_mls: -21.0,
    },
    DftRow {
        metric: "TNS (ns)",
        no_mls: -358.0,
        gnn_mls: -20.0,
    },
    DftRow {
        metric: "#Vio. Paths",
        no_mls: 15_321.0,
        gnn_mls: 3_766.0,
    },
    DftRow {
        metric: "#MLS Nets",
        no_mls: 0.0,
        gnn_mls: 2_425.0,
    },
    DftRow {
        metric: "Pwr (mW)",
        no_mls: 1_539.0,
        gnn_mls: 1_523.0,
    },
    DftRow {
        metric: "Eff. Freq (MHz)",
        no_mls: 2_062.0,
        gnn_mls: 2_375.0,
    },
];

/// Table VI, A7 dual-core with scan + MLS DFT.
pub const TABLE6_A7: &[DftRow] = &[
    DftRow {
        metric: "WL (m)",
        no_mls: 9.40,
        gnn_mls: 9.30,
    },
    DftRow {
        metric: "Test Cover (%)",
        no_mls: 97.32,
        gnn_mls: 97.49,
    },
    DftRow {
        metric: "WNS (ps)",
        no_mls: -159.0,
        gnn_mls: -132.0,
    },
    DftRow {
        metric: "TNS (ns)",
        no_mls: -112.0,
        gnn_mls: -76.0,
    },
    DftRow {
        metric: "#Vio. Paths",
        no_mls: 6_055.0,
        gnn_mls: 5_267.0,
    },
    DftRow {
        metric: "#MLS Nets",
        no_mls: 0.0,
        gnn_mls: 2_536.0,
    },
    DftRow {
        metric: "Pwr (mW)",
        no_mls: 1_157.0,
        gnn_mls: 1_152.0,
    },
    DftRow {
        metric: "Eff. Freq (MHz)",
        no_mls: 2_062.0,
        gnn_mls: 2_375.0,
    },
];

/// Table III: the two MLS DFT strategies on MAERI 16PE 4BW (16 MLS nets).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table3Row {
    /// Strategy label.
    pub method: &'static str,
    /// Total stuck-at faults.
    pub total_faults: f64,
    /// Detected faults.
    pub detected_faults: f64,
    /// WNS after insertion, ps.
    pub wns_ps: f64,
}

/// Table III as published.
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        method: "Net-based DFT",
        total_faults: 444_296.0,
        detected_faults: 438_152.0,
        wns_ps: -21.0,
    },
    Table3Row {
        method: "Wire-based DFT",
        total_faults: 444_346.0,
        detected_faults: 438_276.0,
        wns_ps: -23.0,
    },
];

/// Figure 2: violation-point reduction vs No-MLS on MAERI 128PE.
pub const FIG2_SOTA_REDUCTION_PCT: f64 = 68.0;
/// Figure 2: GNN-MLS reduction.
pub const FIG2_OURS_REDUCTION_PCT: f64 = 80.0;

/// Table I: single-net MLS impact rows (MAERI 128PE heterogeneous).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Row {
    /// Net name as published.
    pub net: &'static str,
    /// Slack before MLS, ps.
    pub before_ps: f64,
    /// Metals before.
    pub metals_before: &'static str,
    /// Slack after MLS, ps.
    pub after_ps: f64,
    /// Metals after.
    pub metals_after: &'static str,
}

/// Table I as published: one net helped, one hurt.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        net: "n480132",
        before_ps: -62.0,
        metals_before: "M1-6(bot)",
        after_ps: -45.0,
        metals_after: "M1-6(bot)+M5-6(top)",
    },
    Table1Row {
        net: "n146095",
        before_ps: -45.0,
        metals_before: "M1-4(bot)",
        after_ps: -48.0,
        metals_after: "M1-6(bot)+M6(top)",
    },
];

/// Figure 9: heterogeneous MAERI 128PE worst IR-drop (92 mV ≈ 10 % of
/// 0.9 V... the paper quotes 10 % of the lowest 0.81 V rail elsewhere).
pub const FIG9_MAERI_IR_MV: f64 = 92.0;
/// Figure 9 / Table IV: A7 heterogeneous IR-drop, %.
pub const FIG9_A7_IR_PCT: f64 = 2.0;

//! Table rendering, shape checks, and JSON result dumps.

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

/// A rendered paper-vs-measured comparison table.
#[derive(Debug, Default)]
pub struct Comparison {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Comparison {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one metric row.
    pub fn row(&mut self, metric: impl Into<String>, values: &[String]) -> &mut Self {
        self.rows.push((metric.into(), values.to_vec()));
        self
    }

    /// Convenience: formats an f64 with sensible precision.
    pub fn num(v: f64) -> String {
        if v == 0.0 {
            "0".into()
        } else if v.abs() >= 1000.0 {
            format!("{v:.0}")
        } else if v.abs() >= 10.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.2}")
        }
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let metric_w = self
            .rows
            .iter()
            .map(|(m, _)| m.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len())
            .chain(
                self.rows
                    .iter()
                    .flat_map(|(_, v)| v.iter().map(|s| s.len())),
            )
            .max()
            .unwrap_or(10)
            .max(8);
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&format!("{:metric_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" | {c:>col_w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(metric_w + self.columns.len() * (col_w + 3)));
        out.push('\n');
        for (m, vals) in &self.rows {
            out.push_str(&format!("{m:metric_w$}"));
            for v in vals {
                out.push_str(&format!(" | {v:>col_w$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// One shape assertion: a qualitative property the paper's data shows
/// that the reproduction must also show.
#[derive(Debug, Serialize)]
pub struct ShapeCheck {
    /// What is being checked.
    pub name: String,
    /// Whether the reproduction shows it.
    pub pass: bool,
    /// The measured values behind the verdict.
    pub detail: String,
}

/// Evaluates and formats one shape check.
pub fn check(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> ShapeCheck {
    let c = ShapeCheck {
        name: name.into(),
        pass,
        detail: detail.into(),
    };
    // Tolerate a closed stdout (e.g. `table4 | head`).
    let _ = writeln!(
        std::io::stdout(),
        "  [{}] {} — {}",
        if c.pass { "PASS" } else { "MISS" },
        c.name,
        c.detail
    );
    c
}

/// Summarizes a slice of checks (returns the pass count).
pub fn summarize(checks: &[ShapeCheck]) -> usize {
    let pass = checks.iter().filter(|c| c.pass).count();
    let _ = writeln!(
        std::io::stdout(),
        "shape checks: {pass}/{} pass",
        checks.len()
    );
    pass
}

/// Writes a JSON result blob under `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = PathBuf::from("target/experiments").join(format!("{name}.json"));
    match gnn_mls::checkpoint::write_json_file(&path, value) {
        Ok(()) => {
            let _ = writeln!(std::io::stdout(), "results written to {}", path.display());
        }
        Err(e) => {
            let _ = writeln!(
                std::io::stderr(),
                "warning: could not write {}: {e}",
                path.display()
            );
        }
    }
}

/// `true` when the process was launched with `--commit-baseline` — the
/// explicit opt-in for updating committed `BENCH_*.json` ledgers. The
/// criterion shim passes unknown flags through, so bench binaries can
/// read it straight off the command line.
pub fn commit_baseline_requested() -> bool {
    std::env::args().any(|a| a == "--commit-baseline")
}

/// Where a bench ledger goes: `<root>/target/bench/<file>` by default
/// (machine-local numbers never dirty the checkout), the workspace root
/// — the committed location — only behind `--commit-baseline`.
pub fn bench_output_path(workspace_root: &std::path::Path, file: &str) -> PathBuf {
    if commit_baseline_requested() {
        workspace_root.join(file)
    } else {
        workspace_root.join("target").join("bench").join(file)
    }
}

/// Writes a machine-readable bench ledger to [`bench_output_path`],
/// creating directories as needed. Returns the path written, `None` on
/// any (warned, non-fatal) failure — benches must not panic over a
/// read-only checkout.
pub fn write_bench_json<T: Serialize>(
    workspace_root: &std::path::Path,
    file: &str,
    value: &T,
) -> Option<PathBuf> {
    let path = bench_output_path(workspace_root, file);
    match gnn_mls::checkpoint::write_json_file(&path, value) {
        Ok(()) => Some(path),
        Err(e) => {
            let _ = writeln!(
                std::io::stderr(),
                "warning: could not write {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Renders an ASCII heat map (used for the Figure 9 IR-drop map).
pub fn ascii_heatmap(values: &[f64], nx: usize, ny: usize, title: &str) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    let mut out = format!("{title} (max {max:.3})\n");
    for y in (0..ny).rev() {
        for x in 0..nx {
            let v = values[y * nx + x] / max;
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_aligned_rows() {
        let mut c = Comparison::new("Test", &["paper", "measured"]);
        c.row("WNS (ps)", &["-85".into(), "-410".into()]);
        c.row("TNS (ns)", &["-327".into(), "-19.8".into()]);
        let s = c.render();
        assert!(s.contains("== Test =="));
        assert!(s.contains("WNS (ps)"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn num_formatting_scales() {
        assert_eq!(Comparison::num(0.0), "0");
        assert_eq!(Comparison::num(-2414.0), "-2414");
        assert_eq!(Comparison::num(-23.4), "-23.4");
        assert_eq!(Comparison::num(9.44), "9.44");
    }

    #[test]
    fn heatmap_is_rectangular() {
        let v = vec![0.0, 0.5, 1.0, 0.25];
        let s = ascii_heatmap(&v, 2, 2, "ir");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].len(), 2);
        assert!(lines[0].contains("max 1.000"));
    }

    #[test]
    fn default_bench_output_stays_under_target() {
        // The test binary is never launched with --commit-baseline, so
        // the default (non-committing) path must be under target/bench.
        assert!(!commit_baseline_requested());
        let p = bench_output_path(std::path::Path::new("/ws"), "BENCH_x.json");
        assert_eq!(p, PathBuf::from("/ws/target/bench/BENCH_x.json"));
    }

    #[test]
    fn checks_report_pass_and_miss() {
        let a = check("ordering", true, "a < b");
        let b = check("ordering2", false, "oops");
        assert!(a.pass && !b.pass);
        assert_eq!(summarize(&[a, b]), 1);
    }
}

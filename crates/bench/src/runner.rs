//! Shared experiment-running helpers for the table/figure binaries.

use gnn_mls::flow::{run_flow, FlowPolicy};
use gnn_mls::FlowReport;

use crate::designs::Experiment;
use crate::paper::PolicyRow;
use crate::render::{check, Comparison, ShapeCheck};

/// Runs all three policies on an experiment, printing progress.
pub fn run_three(exp: &Experiment) -> [FlowReport; 3] {
    use std::io::Write;
    let mut out = Vec::with_capacity(3);
    for policy in [FlowPolicy::NoMls, FlowPolicy::Sota, FlowPolicy::GnnMls] {
        // Tolerate a closed stderr (e.g. piped regenerator runs).
        let _ = writeln!(
            std::io::stderr(),
            "running {} [{}] ...",
            exp.name,
            policy.name()
        );
        let r = run_flow(&exp.design, &exp.cfg, policy).expect("flow succeeds");
        out.push(r);
    }
    out.try_into().expect("exactly three reports")
}

/// Extracts the measured value of a paper metric from a flow report.
pub fn metric_of(report: &FlowReport, metric: &str) -> Option<f64> {
    Some(match metric {
        "WL (m)" => report.wirelength_m,
        "WNS (ps)" => report.wns_ps,
        "TNS (ns)" => report.tns_ns,
        "#Vio. Paths" => report.violating_paths as f64,
        "#MLS Nets" => report.mls_nets as f64,
        "Pwr (mW)" => report.power_mw,
        "IR-drop (%)" => report.ir_drop_pct?,
        "L.S Pwr (mW)" => report.ls_power_mw?,
        "Eff. Freq (MHz)" => report.eff_freq_mhz,
        _ => return None,
    })
}

/// Builds the paper-vs-measured comparison for a three-policy table.
pub fn policy_comparison(
    title: &str,
    paper: &[PolicyRow],
    reports: &[FlowReport; 3],
) -> Comparison {
    let mut c = Comparison::new(
        title,
        &[
            "paper NoMLS",
            "paper SOTA",
            "paper Ours",
            "meas NoMLS",
            "meas SOTA",
            "meas Ours",
        ],
    );
    for row in paper {
        let meas: Vec<String> = reports
            .iter()
            .map(|r| {
                metric_of(r, row.metric)
                    .map(Comparison::num)
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        let mut vals = vec![
            Comparison::num(row.no_mls),
            Comparison::num(row.sota),
            Comparison::num(row.ours),
        ];
        vals.extend(meas);
        c.row(row.metric, &vals);
    }
    c
}

/// Checks that the measured policy ordering matches the paper's ordering
/// for every pair the paper separates by more than 5 % — the "shape" of
/// the table. Returns one check per significant metric.
pub fn shape_checks(paper: &[PolicyRow], reports: &[FlowReport; 3]) -> Vec<ShapeCheck> {
    const KEY_METRICS: &[&str] = &["WNS (ps)", "TNS (ns)", "#Vio. Paths", "#MLS Nets"];
    let mut checks = Vec::new();
    for row in paper {
        if !KEY_METRICS.contains(&row.metric) {
            continue;
        }
        let Some(m0) = metric_of(&reports[0], row.metric) else {
            continue;
        };
        let Some(m1) = metric_of(&reports[1], row.metric) else {
            continue;
        };
        let Some(m2) = metric_of(&reports[2], row.metric) else {
            continue;
        };
        let paper_vals = [row.no_mls, row.sota, row.ours];
        let meas_vals = [m0, m1, m2];
        let names = ["NoMLS", "SOTA", "Ours"];
        let mut pairs_total = 0;
        let mut pairs_ok = 0;
        let mut detail = String::new();
        for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let dp = paper_vals[i] - paper_vals[j];
            let scale = paper_vals[i].abs().max(paper_vals[j].abs()).max(1e-9);
            if dp.abs() / scale < 0.05 {
                continue; // the paper itself calls this a tie
            }
            pairs_total += 1;
            let dm = meas_vals[i] - meas_vals[j];
            let ok = dp.signum() == dm.signum();
            if ok {
                pairs_ok += 1;
            }
            detail.push_str(&format!(
                "{}{}{}{} ",
                names[i],
                if dp > 0.0 { ">" } else { "<" },
                names[j],
                if ok { "✓" } else { "✗" }
            ));
        }
        if pairs_total > 0 {
            checks.push(check(
                format!("{} ordering", row.metric),
                pairs_ok == pairs_total,
                detail.trim().to_string(),
            ));
        }
    }
    checks
}

//! The benchmark suite: a versioned scenario manifest, a runner that
//! drives every scenario through the full flow, and the machine-readable
//! PPA ledger (`BENCH_suite.json`) the CI regression gate diffs.
//!
//! The manifest (`bench/suite.toml`) enumerates designs × policies as
//! `[[scenario]]` tables. It is parsed by a deliberately small TOML
//! subset reader (comments, `key = value`, `[[scenario]]` array tables;
//! strings, integers, floats, booleans, and string arrays) so the
//! workspace stays dependency-free. Each scenario names a design from
//! [`gnn_mls::session::DESIGNS`], a technology, an MLS policy, and the
//! per-scenario flow knobs (PDN analysis, DFT mode, fast/full config).
//!
//! [`run_suite`] executes the scenarios selected by a profile and
//! returns a [`SuiteReport`]: per-scenario PPA metrics (WNS/TNS,
//! wirelength, F2F pad count, MLS gain vs. the same group's No-MLS
//! baseline, IR drop, fault coverage) plus advisory wall-clock. The
//! report is what `gnnmls bench diff` (see [`crate::diff`]) compares
//! against the committed baseline.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnn_mls::session::{build_design, build_tech, DESIGNS};
use gnn_mls::FlowReport;
use gnnmls_dft::DftMode;

/// Version of the [`SuiteReport`] JSON schema. Bump on any
/// shape-incompatible change; `bench diff` refuses to compare across
/// schema versions.
pub const SUITE_SCHEMA_VERSION: u64 = 1;

/// Errors raised parsing a manifest or running the suite.
#[derive(Debug)]
pub enum SuiteError {
    /// A manifest syntax or validation error, with the 1-based line.
    Parse {
        /// 1-based line number in the manifest text.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A scenario references an unknown design/tech/policy/dft name.
    BadScenario {
        /// The scenario's `name`.
        scenario: String,
        /// What is wrong with it.
        msg: String,
    },
    /// No scenario in the manifest matches the requested profile.
    EmptyProfile(String),
    /// A flow stage failed while running a scenario.
    Flow {
        /// The scenario's `name`.
        scenario: String,
        /// The flow error, rendered.
        msg: String,
    },
    /// Reading or writing a suite JSON file failed.
    Io(String),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Parse { line, msg } => write!(f, "manifest line {line}: {msg}"),
            SuiteError::BadScenario { scenario, msg } => {
                write!(f, "scenario `{scenario}`: {msg}")
            }
            SuiteError::EmptyProfile(p) => {
                write!(f, "no scenario in the manifest selects profile `{p}`")
            }
            SuiteError::Flow { scenario, msg } => {
                write!(f, "scenario `{scenario}` failed: {msg}")
            }
            SuiteError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SuiteError {}

/// One scenario of the manifest: a design × policy × knobs cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Unique scenario name (the diff key).
    pub name: String,
    /// Design name (must be in [`DESIGNS`]).
    pub design: String,
    /// Technology name (`hetero` | `homo`).
    pub tech: String,
    /// MLS policy (`no-mls` | `sota` | `gnn-mls`).
    pub policy: String,
    /// Profiles this scenario belongs to (e.g. `ci`, `full`).
    pub profiles: Vec<String>,
    /// Use the down-scaled fast-test flow configuration.
    pub fast: bool,
    /// Run PDN synthesis + IR-drop analysis.
    pub pdn: bool,
    /// MLS DFT mode (`none` | `net` | `wire`).
    pub dft: String,
    /// Target frequency, MHz; `0` = the design's paper default.
    pub freq_mhz: f64,
    /// MLS-gain group: scenarios sharing a group are compared against
    /// the group's `no-mls` member. Empty = no gain computed.
    pub group: String,
}

impl Scenario {
    fn empty() -> Self {
        Self {
            name: String::new(),
            design: String::new(),
            tech: "hetero".into(),
            policy: "no-mls".into(),
            profiles: Vec::new(),
            fast: true,
            pdn: false,
            dft: "none".into(),
            freq_mhz: 0.0,
            group: String::new(),
        }
    }

    /// The paper-default target frequency for this scenario's design.
    pub fn effective_freq_mhz(&self) -> f64 {
        if self.freq_mhz > 0.0 {
            self.freq_mhz
        } else if self.design.starts_with("a7") {
            2000.0
        } else {
            2500.0
        }
    }

    /// The flow policy this scenario routes under.
    pub fn flow_policy(&self) -> Option<FlowPolicy> {
        match self.policy.as_str() {
            "no-mls" => Some(FlowPolicy::NoMls),
            "sota" => Some(FlowPolicy::Sota),
            "gnn-mls" => Some(FlowPolicy::GnnMls),
            _ => None,
        }
    }

    /// The DFT mode this scenario inserts post-route.
    pub fn dft_mode(&self) -> Option<Option<DftMode>> {
        match self.dft.as_str() {
            "none" => Some(None),
            "net" => Some(Some(DftMode::NetBased)),
            "wire" => Some(Some(DftMode::WireBased)),
            _ => None,
        }
    }

    fn validate(&self) -> Result<(), SuiteError> {
        let bad = |msg: String| SuiteError::BadScenario {
            scenario: self.name.clone(),
            msg,
        };
        if self.name.is_empty() {
            return Err(bad("missing `name`".into()));
        }
        if !DESIGNS.iter().any(|&(d, _)| d == self.design) {
            return Err(bad(format!("unknown design `{}`", self.design)));
        }
        if build_tech(&self.tech, &self.design).is_none() {
            return Err(bad(format!("unknown tech `{}` (hetero|homo)", self.tech)));
        }
        if self.flow_policy().is_none() {
            return Err(bad(format!(
                "unknown policy `{}` (no-mls|sota|gnn-mls)",
                self.policy
            )));
        }
        if self.dft_mode().is_none() {
            return Err(bad(format!("unknown dft `{}` (none|net|wire)", self.dft)));
        }
        if self.profiles.is_empty() {
            return Err(bad("scenario selects no profiles".into()));
        }
        Ok(())
    }

    /// The flow configuration this scenario runs with.
    pub fn flow_config(&self) -> FlowConfig {
        let freq = self.effective_freq_mhz();
        let mut cfg = if self.fast {
            FlowConfig::fast_test(freq)
        } else {
            FlowConfig::new(freq)
        };
        cfg.analyze_pdn = self.pdn;
        cfg.dft = self.dft_mode().unwrap_or(None);
        cfg
    }
}

/// The parsed, validated manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteManifest {
    /// Manifest schema version (the `version` key).
    pub version: u64,
    /// All scenarios, in file order.
    pub scenarios: Vec<Scenario>,
}

impl SuiteManifest {
    /// The scenarios selected by `profile`, in file order.
    pub fn select(&self, profile: &str) -> Vec<&Scenario> {
        self.scenarios
            .iter()
            .filter(|s| s.profiles.iter().any(|p| p == profile))
            .collect()
    }
}

/// One TOML-subset value.
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    StrArray(Vec<String>),
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<TomlValue, SuiteError> {
    let err = |msg: String| SuiteError::Parse { line, msg };
    let raw = raw.trim();
    if let Some(s) = raw.strip_prefix('"') {
        let s = s
            .strip_suffix('"')
            .ok_or_else(|| err(format!("unterminated string `{raw}`")))?;
        if s.contains('"') {
            return Err(err("escaped quotes are not supported".into()));
        }
        return Ok(TomlValue::Str(s.to_string()));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(format!("unterminated array `{raw}`")))?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                TomlValue::Str(s) => items.push(s),
                _ => return Err(err("only string arrays are supported".into())),
            }
        }
        return Ok(TomlValue::StrArray(items));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    Err(err(format!("unparsable value `{raw}`")))
}

/// Parses and validates a manifest from TOML-subset text.
///
/// # Errors
///
/// Returns [`SuiteError::Parse`] with the offending line, or
/// [`SuiteError::BadScenario`] when a scenario fails validation.
pub fn parse_manifest(text: &str) -> Result<SuiteManifest, SuiteError> {
    let mut version: Option<u64> = None;
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut current: Option<Scenario> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |msg: String| SuiteError::Parse { line: lineno, msg };
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[scenario]]" {
            if let Some(s) = current.take() {
                scenarios.push(s);
            }
            current = Some(Scenario::empty());
            continue;
        }
        if line.starts_with('[') {
            return Err(err(format!("unsupported table `{line}`")));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim();
        let value = parse_value(value, lineno)?;
        match (&mut current, key) {
            (None, "version") => match value {
                TomlValue::Int(v) if v > 0 => version = Some(v as u64),
                _ => return Err(err("`version` must be a positive integer".into())),
            },
            (None, other) => {
                return Err(err(format!(
                    "unknown top-level key `{other}` (only `version` and `[[scenario]]` tables)"
                )))
            }
            (Some(s), key) => {
                let type_err = || err(format!("wrong type for `{key}`"));
                match (key, value) {
                    ("name", TomlValue::Str(v)) => s.name = v,
                    ("design", TomlValue::Str(v)) => s.design = v,
                    ("tech", TomlValue::Str(v)) => s.tech = v,
                    ("policy", TomlValue::Str(v)) => s.policy = v,
                    ("profiles", TomlValue::StrArray(v)) => s.profiles = v,
                    ("fast", TomlValue::Bool(v)) => s.fast = v,
                    ("pdn", TomlValue::Bool(v)) => s.pdn = v,
                    ("dft", TomlValue::Str(v)) => s.dft = v,
                    ("freq_mhz", TomlValue::Float(v)) => s.freq_mhz = v,
                    ("freq_mhz", TomlValue::Int(v)) => s.freq_mhz = v as f64,
                    ("group", TomlValue::Str(v)) => s.group = v,
                    (
                        "name" | "design" | "tech" | "policy" | "profiles" | "fast" | "pdn" | "dft"
                        | "freq_mhz" | "group",
                        _,
                    ) => return Err(type_err()),
                    (other, _) => {
                        return Err(err(format!("unknown scenario key `{other}`")));
                    }
                }
            }
        }
    }
    if let Some(s) = current.take() {
        scenarios.push(s);
    }

    let version = version.ok_or(SuiteError::Parse {
        line: 1,
        msg: "manifest has no `version` key".into(),
    })?;
    let mut seen = std::collections::BTreeSet::new();
    for s in &scenarios {
        s.validate()?;
        if !seen.insert(s.name.clone()) {
            return Err(SuiteError::BadScenario {
                scenario: s.name.clone(),
                msg: "duplicate scenario name".into(),
            });
        }
    }
    Ok(SuiteManifest { version, scenarios })
}

/// Loads and parses a manifest file.
///
/// # Errors
///
/// Returns [`SuiteError::Io`] when the file cannot be read, or any
/// [`parse_manifest`] error.
pub fn load_manifest(path: &std::path::Path) -> Result<SuiteManifest, SuiteError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SuiteError::Io(format!("cannot read {}: {e}", path.display())))?;
    parse_manifest(&text)
}

/// One scenario's results: the PPA ledger row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name (the diff key).
    pub name: String,
    /// Design name.
    pub design: String,
    /// Technology name.
    pub tech: String,
    /// Policy name.
    pub policy: String,
    /// QoR metrics, keyed by stable snake_case names. Deterministic
    /// under a fixed seed; diffed exactly (counts) or with a float
    /// tolerance by `bench diff`.
    pub metrics: BTreeMap<String, f64>,
    /// Wall-clock seconds for the scenario (advisory: machine-local,
    /// never gates).
    pub wall_clock_s: f64,
}

/// The suite ledger `BENCH_suite.json` holds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// [`SUITE_SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// The manifest's `version` key.
    pub manifest_version: u64,
    /// The profile that selected the scenarios.
    pub profile: String,
    /// Per-scenario results, in manifest order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Extracts the suite's QoR metric map from a flow report. Counts stay
/// integral (stored as `f64` for a uniform ledger); optional stages
/// (IR drop, DFT coverage) appear only when the scenario ran them.
pub fn suite_metrics(report: &FlowReport) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    m.insert("wirelength_m".into(), report.wirelength_m);
    m.insert("wns_ps".into(), report.wns_ps);
    m.insert("tns_ns".into(), report.tns_ns);
    m.insert("violating_paths".into(), report.violating_paths as f64);
    m.insert("endpoints".into(), report.endpoints as f64);
    m.insert("mls_nets".into(), report.mls_nets as f64);
    m.insert("f2f_pads".into(), report.f2f_pads as f64);
    m.insert("power_mw".into(), report.power_mw);
    m.insert("eff_freq_mhz".into(), report.eff_freq_mhz);
    if let Some(ir) = report.ir_drop_pct {
        m.insert("ir_drop_pct".into(), ir);
    }
    if let Some(cov) = report.test_coverage_pct {
        m.insert("test_coverage_pct".into(), cov);
        m.insert("dft_cells".into(), report.dft_cells as f64);
    }
    m
}

/// Adds MLS-gain metrics to every grouped non-baseline scenario:
/// `mls_wl_gain_pct` (wirelength saved vs. the group's `no-mls` run, %)
/// and `mls_wns_gain_ps` (WNS improvement, ps).
fn add_mls_gains(manifest_rows: &[(&Scenario, usize)], results: &mut [ScenarioResult]) {
    // Group name -> index of the group's no-mls result.
    let mut baselines: BTreeMap<String, usize> = BTreeMap::new();
    for (scn, i) in manifest_rows {
        if !scn.group.is_empty() && scn.policy == "no-mls" {
            baselines.entry(scn.group.clone()).or_insert(*i);
        }
    }
    for (scn, i) in manifest_rows {
        if scn.group.is_empty() || scn.policy == "no-mls" {
            continue;
        }
        let Some(&b) = baselines.get(&scn.group) else {
            continue;
        };
        let base_wl = results[b].metrics["wirelength_m"];
        let base_wns = results[b].metrics["wns_ps"];
        let wl = results[*i].metrics["wirelength_m"];
        let wns = results[*i].metrics["wns_ps"];
        let wl_gain = if base_wl.abs() > 1e-12 {
            (base_wl - wl) / base_wl * 100.0
        } else {
            0.0
        };
        results[*i]
            .metrics
            .insert("mls_wl_gain_pct".into(), wl_gain);
        results[*i]
            .metrics
            .insert("mls_wns_gain_ps".into(), wns - base_wns);
    }
}

/// Runs every scenario the profile selects through the full flow and
/// assembles the suite ledger. Progress goes to stderr; per-scenario
/// counters and QoR gauges are published through `gnnmls-obs`.
///
/// # Errors
///
/// Returns [`SuiteError::EmptyProfile`] when nothing matches the
/// profile and [`SuiteError::Flow`] on the first failing scenario.
pub fn run_suite(manifest: &SuiteManifest, profile: &str) -> Result<SuiteReport, SuiteError> {
    let selected = manifest.select(profile);
    if selected.is_empty() {
        return Err(SuiteError::EmptyProfile(profile.to_string()));
    }
    let mut results: Vec<ScenarioResult> = Vec::with_capacity(selected.len());
    let mut rows: Vec<(&Scenario, usize)> = Vec::with_capacity(selected.len());
    for (i, scn) in selected.iter().enumerate() {
        let _ = writeln!(
            std::io::stderr(),
            "[suite {}/{}] {} ({} / {} / {})",
            i + 1,
            selected.len(),
            scn.name,
            scn.design,
            scn.tech,
            scn.policy
        );
        let flow_err = |msg: String| SuiteError::Flow {
            scenario: scn.name.clone(),
            msg,
        };
        let tech = build_tech(&scn.tech, &scn.design)
            .ok_or_else(|| flow_err(format!("unknown tech `{}`", scn.tech)))?;
        let design = build_design(&scn.design, &tech)
            .ok_or_else(|| flow_err(format!("unknown design `{}`", scn.design)))?;
        let cfg = scn.flow_config();
        let policy = scn
            .flow_policy()
            .ok_or_else(|| flow_err(format!("unknown policy `{}`", scn.policy)))?;
        let t0 = Instant::now();
        let report = run_flow(&design, &cfg, policy).map_err(|e| flow_err(e.to_string()))?;
        let wall = t0.elapsed().as_secs_f64();
        let metrics = suite_metrics(&report);

        gnnmls_obs::counter_add(
            "bench_suite_scenarios_total",
            &[("profile", profile), ("policy", &scn.policy)],
            1,
        );
        gnnmls_obs::gauge_set(
            "bench_suite_wns_ps",
            &[("scenario", &scn.name)],
            report.wns_ps.round() as i64,
        );
        gnnmls_obs::gauge_set(
            "bench_suite_f2f_pads",
            &[("scenario", &scn.name)],
            report.f2f_pads as i64,
        );

        rows.push((scn, results.len()));
        results.push(ScenarioResult {
            name: scn.name.clone(),
            design: scn.design.clone(),
            tech: scn.tech.clone(),
            policy: scn.policy.clone(),
            metrics,
            wall_clock_s: wall,
        });
    }
    add_mls_gains(&rows, &mut results);
    Ok(SuiteReport {
        schema_version: SUITE_SCHEMA_VERSION,
        manifest_version: manifest.version,
        profile: profile.to_string(),
        scenarios: results,
    })
}

/// Serializes a suite report to pretty JSON.
pub fn report_to_json(report: &SuiteReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".into())
}

/// Reads a suite report back from a JSON file.
///
/// # Errors
///
/// Returns [`SuiteError::Io`] on a read or parse failure.
pub fn load_report(path: &std::path::Path) -> Result<SuiteReport, SuiteError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SuiteError::Io(format!("cannot read {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| SuiteError::Io(format!("cannot parse {}: {e}", path.display())))
}

/// Writes a suite report as pretty JSON, creating parent directories.
///
/// # Errors
///
/// Returns [`SuiteError::Io`] on any filesystem failure.
pub fn write_report(report: &SuiteReport, path: &std::path::Path) -> Result<(), SuiteError> {
    gnn_mls::checkpoint::write_json_file(path, report)
        .map_err(|e| SuiteError::Io(format!("cannot write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"
# Suite manifest (test copy).
version = 3

[[scenario]]
name = "maeri16-nomls"          # trailing comment
design = "maeri16"
policy = "no-mls"
profiles = ["ci", "full"]
group = "m16"

[[scenario]]
name = "maeri16-gnn"
design = "maeri16"
policy = "gnn-mls"
profiles = ["ci"]
group = "m16"
pdn = true
dft = "net"
freq_mhz = 2400

[[scenario]]
name = "noc-sota"
design = "noc4x4"
tech = "homo"
policy = "sota"
profiles = ["full"]
fast = false
"#;

    #[test]
    fn manifest_parses_fields_and_profiles() {
        let m = parse_manifest(MANIFEST).unwrap();
        assert_eq!(m.version, 3);
        assert_eq!(m.scenarios.len(), 3);
        let ci = m.select("ci");
        assert_eq!(ci.len(), 2);
        assert_eq!(m.select("full").len(), 2);
        assert!(m.select("nightly").is_empty());

        let s = &m.scenarios[1];
        assert_eq!(s.name, "maeri16-gnn");
        assert!(s.pdn);
        assert_eq!(s.dft, "net");
        assert_eq!(s.freq_mhz, 2400.0);
        assert_eq!(s.flow_policy(), Some(FlowPolicy::GnnMls));
        let cfg = s.flow_config();
        assert!(cfg.analyze_pdn);
        assert_eq!(cfg.dft, Some(DftMode::NetBased));
        assert_eq!(cfg.target_freq_mhz, 2400.0);

        let n = &m.scenarios[2];
        assert_eq!(n.tech, "homo");
        assert!(!n.fast);
        assert_eq!(n.effective_freq_mhz(), 2500.0);
    }

    #[test]
    fn manifest_rejects_bad_input() {
        for (text, needle) in [
            ("[[scenario]]\nname = \"x\"", "no `version` key"),
            ("version = 1\nbogus = 2", "unknown top-level key"),
            (
                "version = 1\n[[scenario]]\nname = \"x\"\nwat = 1",
                "unknown scenario key",
            ),
            (
                "version = 1\n[[scenario]]\nname = \"x\"\ndesign = \"nope\"\nprofiles = [\"ci\"]",
                "unknown design",
            ),
            (
                "version = 1\n[[scenario]]\nname = \"x\"\ndesign = \"maeri16\"\nprofiles = [\"ci\"]\npolicy = \"wat\"",
                "unknown policy",
            ),
            (
                "version = 1\n[[scenario]]\nname = \"x\"\ndesign = \"maeri16\"",
                "no profiles",
            ),
            (
                "version = 1\n[[scenario]]\nname = \"x\"\ndesign = \"maeri16\"\nprofiles = [\"ci\"]\n[[scenario]]\nname = \"x\"\ndesign = \"maeri16\"\nprofiles = [\"ci\"]",
                "duplicate scenario",
            ),
            ("version = 1\nkey value", "expected `key = value`"),
            ("version = 1\n[table]", "unsupported table"),
            (
                "version = 1\n[[scenario]]\nfast = \"yes\"",
                "wrong type for `fast`",
            ),
        ] {
            let err = parse_manifest(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{needle}` not in `{err}` for:\n{text}");
        }
    }

    #[test]
    fn comments_inside_strings_survive() {
        let m = parse_manifest(
            "version = 1\n[[scenario]]\nname = \"a#b\"\ndesign = \"maeri16\"\nprofiles = [\"ci\"]\n",
        )
        .unwrap();
        assert_eq!(m.scenarios[0].name, "a#b");
    }

    #[test]
    fn suite_metrics_cover_the_ledger() {
        let mut r = FlowReport {
            design: "x".into(),
            wirelength_m: 1.5,
            wns_ps: -12.0,
            tns_ns: -0.4,
            violating_paths: 9,
            endpoints: 100,
            mls_nets: 7,
            f2f_pads: 321,
            power_mw: 55.0,
            eff_freq_mhz: 2400.0,
            ..Default::default()
        };
        let m = suite_metrics(&r);
        assert_eq!(m["f2f_pads"], 321.0);
        assert_eq!(m["wns_ps"], -12.0);
        assert!(!m.contains_key("ir_drop_pct"));
        assert!(!m.contains_key("test_coverage_pct"));
        r.ir_drop_pct = Some(8.5);
        r.test_coverage_pct = Some(97.5);
        r.dft_cells = 12;
        let m = suite_metrics(&r);
        assert_eq!(m["ir_drop_pct"], 8.5);
        assert_eq!(m["dft_cells"], 12.0);
    }

    #[test]
    fn mls_gains_compare_against_group_baseline() {
        let manifest = parse_manifest(
            r#"
version = 1
[[scenario]]
name = "base"
design = "maeri16"
policy = "no-mls"
profiles = ["t"]
group = "g"
[[scenario]]
name = "ours"
design = "maeri16"
policy = "sota"
profiles = ["t"]
group = "g"
"#,
        )
        .unwrap();
        let mk = |name: &str, wl: f64, wns: f64| ScenarioResult {
            name: name.into(),
            design: "maeri16".into(),
            tech: "hetero".into(),
            policy: if name == "base" { "no-mls" } else { "sota" }.into(),
            metrics: BTreeMap::from([("wirelength_m".into(), wl), ("wns_ps".into(), wns)]),
            wall_clock_s: 0.0,
        };
        let mut results = vec![mk("base", 2.0, -50.0), mk("ours", 1.5, -20.0)];
        let rows: Vec<(&Scenario, usize)> = manifest.scenarios.iter().zip(0usize..).collect();
        add_mls_gains(&rows, &mut results);
        assert!(!results[0].metrics.contains_key("mls_wl_gain_pct"));
        assert_eq!(results[1].metrics["mls_wl_gain_pct"], 25.0);
        assert_eq!(results[1].metrics["mls_wns_gain_ps"], 30.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = SuiteReport {
            schema_version: SUITE_SCHEMA_VERSION,
            manifest_version: 2,
            profile: "ci".into(),
            scenarios: vec![ScenarioResult {
                name: "s".into(),
                design: "maeri16".into(),
                tech: "hetero".into(),
                policy: "no-mls".into(),
                metrics: BTreeMap::from([("wns_ps".into(), -1.25)]),
                wall_clock_s: 3.5,
            }],
        };
        let json = report_to_json(&report);
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}

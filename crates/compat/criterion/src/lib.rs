//! Offline shim for the `criterion` crate.
//!
//! Provides the API subset the workspace benches use: `Criterion` with
//! `sample_size`/`warm_up_time`/`measurement_time` builders,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is
//! a plain warm-up + timed-samples loop reporting min/median/mean; the
//! `--test` flag (as passed by CI smoke runs) executes each benchmark
//! routine exactly once without timing, and a positional argument
//! filters benchmarks by substring, both matching criterion's CLI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies the process CLI arguments (`--test`, name filter).
    /// Called by the `criterion_group!` expansion.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo or users pass that the shim can ignore.
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Whether the driver is in `--test` smoke mode (run once, no timing).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            cfg: self.clone(),
            samples: Vec::new(),
        };
        if self.test_mode {
            print!("Testing {id} ... ");
            f(&mut b);
            println!("ok");
        } else {
            f(&mut b);
            b.report(&id);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks (`group/name` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(id, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs the routine.
pub struct Bencher {
    cfg: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.cfg.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        // Measurement: one timed sample per run, until both the sample
        // target and the time budget allow stopping.
        let measure_start = Instant::now();
        self.samples.clear();
        loop {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            let done_samples = self.samples.len() >= self.cfg.sample_size;
            let out_of_time = measure_start.elapsed() >= self.cfg.measurement_time;
            if done_samples || (out_of_time && !self.samples.is_empty()) {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{id:<40} time: [min {} median {} mean {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        let mut c = fast_cfg();
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        assert!(calls >= 3, "routine ran during warm-up and sampling");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = fast_cfg();
        c.test_mode = true;
        let mut calls = 0usize;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = fast_cfg();
        c.filter = Some("match_me".to_string());
        let mut calls = 0usize;
        c.bench_function("other", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
        c.bench_function("does_match_me_yes", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = fast_cfg();
        c.filter = Some("grp/inner".to_string());
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("inner", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert!(calls > 0, "group id should be group/name");
    }
}

//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the (small) API subset the workspace uses: `StdRng` seeded
//! via `seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded by
//! SplitMix64 — deterministic for a given seed, which is all the
//! workspace relies on (it never assumes bit-compatibility with the
//! upstream crate's stream).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly. Mirrors rand's
/// `SampleUniform` so `Range<T>` gets one blanket `SampleRange` impl
/// (required for float-literal type inference at call sites).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_in_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            #[inline]
            fn sample_in_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let f: $t = Standard::sample(rng);
                lo + f * (hi - lo)
            }
            #[inline]
            fn sample_in_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_in(lo, hi, rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let f: f64 = Standard::sample(self);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    pub use super::StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(4..10);
            assert!((4..10).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

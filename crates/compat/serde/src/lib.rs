//! Offline shim for the `serde` crate.
//!
//! The build environment has no crates.io access, so serialization is
//! provided by this in-tree crate. Instead of serde's visitor-based
//! zero-copy architecture, this shim uses a simple self-describing
//! [`Value`] tree: `Serialize` lowers a type into a `Value`,
//! `Deserialize` rebuilds the type from one, and `serde_json` (also a
//! shim) renders `Value` to/from JSON text. The derive macros in
//! `serde_derive` generate `to_value`/`from_value` impls that match the
//! JSON layout the real serde would produce for the shapes this
//! workspace uses (named structs, newtype ids, unit enums).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a `Value` does not match the requested type.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a struct field from a `Map` value (used by derived impls).
pub fn map_get<'v>(v: &'v Value, key: &str) -> Result<&'v Value, DeError> {
    match v {
        Value::Map(_) => v
            .get(key)
            .ok_or_else(|| DeError(format!("missing field `{key}`"))),
        other => Err(DeError(format!(
            "expected map for field `{key}`, got {other:?}"
        ))),
    }
}

/// Fetches a tuple element from a `Seq` value (used by derived impls).
pub fn seq_get(v: &Value, idx: usize) -> Result<&Value, DeError> {
    match v {
        Value::Seq(items) => items
            .get(idx)
            .ok_or_else(|| DeError(format!("missing tuple element {idx}"))),
        other => Err(DeError(format!("expected sequence, got {other:?}"))),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---- primitives ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

// ---- references and containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(seq_get(v, $idx)?)?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort so serialized
        // output is stable across runs.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected map, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<f32> = None;
        assert_eq!(Option::<f32>::from_value(&opt.to_value()).unwrap(), None);
        let arr = [1.0f32, 2.0];
        assert_eq!(<[f32; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = (3u32, -1.25f64);
        assert_eq!(<(u32, f64)>::from_value(&tup.to_value()).unwrap(), tup);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        match m.to_value() {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected map, got {other:?}"),
        }
        assert_eq!(
            HashMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(map_get(&Value::Map(vec![]), "missing").is_err());
    }
}

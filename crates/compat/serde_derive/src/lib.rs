//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the in-tree serde
//! shim's `Value` data model. Written against `proc_macro` directly (no
//! syn/quote — the build environment has no crates.io access), so it
//! supports exactly the item shapes this workspace derives on:
//!
//! - named-field structs (JSON object keyed by field name)
//! - tuple structs — newtypes serialize transparently as their inner
//!   value, wider tuples as a sequence (matching real serde)
//! - unit-variant enums (serialized as the variant name string)
//!
//! Generics, data-carrying enums, and `#[serde(...)]` attributes are
//! rejected with a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_get(v, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(::serde::seq_get(v, {i})?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name}({entries}))\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic item `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::UnitEnum {
                name: name.clone(),
                variants: parse_unit_variants(g.stream(), &name),
            },
            other => panic!("serde shim derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

/// Field names of a named struct; types are skipped (the generated code
/// relies on inference through `Serialize::to_value`/`from_value`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

/// Variant names of a unit-only enum.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let v = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde shim derive: enum `{enum_name}` variant `{v}` is not a unit \
                 variant (got {other:?}); only unit enums are supported"
            ),
        }
        variants.push(v);
    }
    variants
}

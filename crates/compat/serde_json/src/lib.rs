//! Offline shim for the `serde_json` crate.
//!
//! Renders the serde shim's [`Value`] tree to JSON text and parses JSON
//! text back into it. Provides `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, the `json!` macro, and an `Error` type — the
//! API subset this workspace uses.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                // JSON has no Infinity/NaN; degrade to null like a lossy cast.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must be followed by \uDC00-\uDFFF.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("bad surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

// ---- json! macro ----

/// Builds a [`Value`] from JSON-ish syntax with interpolated Rust
/// expressions (the serde_json `json!` shape, tt-munched).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////// arrays ////////////
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// objects ////////////
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((::std::string::String::from($($key)+), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((::std::string::String::from($($key)+), $value));
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is a nested object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    //////////// primary ////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Seq(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Seq($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Map(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Map({
            let mut object = ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = json!({
            "name": "pe16",
            "counts": [1, 2, 3],
            "nested": {"ok": true, "ratio": 0.5},
            "missing": null,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"a": [1.5, -2], "b": "x\"y\n"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn interpolated_expressions() {
        let xs = [10u32, 20, 30];
        let opt: Option<(String, f64)> = Some(("n1".to_string(), -4.5));
        let v = json!({
            "sum": xs.iter().sum::<u32>(),
            "opt": opt.as_ref().map(|(n, g)| (n.clone(), *g)),
            "arr": [xs[0], xs[1]],
        });
        assert_eq!(v.get("sum"), Some(&Value::U64(60)));
        match v.get("opt") {
            Some(Value::Seq(items)) => assert_eq!(items.len(), 2),
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<(String, f64)> = from_str(r#"[["a", 1.0], ["b", -2.5]]"#).unwrap();
        assert_eq!(v[1], ("b".to_string(), -2.5));
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
    }

    #[test]
    fn string_escapes() {
        let s = to_string(&"tab\there \"quoted\" \\ back").unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "tab\there \"quoted\" \\ back");
        let uni: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(uni, "é😀");
    }
}

//! The unified front door for the GNN-MLS stack.
//!
//! Every consumer — the CLI, the `gnnmls-serve` daemon, and library
//! users — reaches the flow and warm-session machinery through the same
//! three entry points:
//!
//! - [`run_flow`] — one-shot flow for a validated [`SessionSpec`];
//! - [`build_session`] + [`query`] — warm-session build and the single
//!   query dispatcher ([`Query`] → [`QueryAnswer`]) that what-if,
//!   inference, and stats requests all funnel through;
//! - [`metrics`] — the process-wide observability registry rendered as
//!   Prometheus-style text (what the serve `Metrics` request returns).
//!
//! Keeping one dispatch point means the serve handler, the CLI
//! subcommands, and tests cannot drift apart in how they validate,
//! build, or answer — they are the same code path. The older scattered
//! entry points that predated it have been removed; this module is the
//! only way in.

use crate::report::FlowReport;
use crate::session::{
    build_design, build_tech, DesignSession, InferResult, SessionError, SessionSpec, SessionStats,
    WhatIfResult,
};

/// A query against a warm [`DesignSession`]: the request shapes shared
/// by the serve wire protocol, the CLI client, and library callers.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Route `net` detached with MLS forced on/off, optionally under a
    /// reduced A* expansion budget (a request deadline).
    WhatIf {
        /// The net to query.
        net: u32,
        /// Force MLS on (`true`) or off (`false`).
        allow_mls: bool,
        /// Optional expansion budget (clamped to the session's).
        max_expansions: Option<usize>,
    },
    /// MLS inference over the session's worst `paths` warm samples.
    Infer {
        /// How many worst paths to infer over.
        paths: usize,
    },
    /// The session's stats snapshot.
    Stats,
}

/// The answer to a [`Query`], one variant per request shape.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryAnswer {
    /// Answer to [`Query::WhatIf`].
    WhatIf(WhatIfResult),
    /// Answer to [`Query::Infer`].
    Infer(InferResult),
    /// Answer to [`Query::Stats`].
    Stats(SessionStats),
}

/// One-shot flow run for a spec: validates, builds the named design,
/// and delegates to [`crate::flow::run_flow`].
///
/// # Errors
///
/// Returns [`SessionError`] for a spec that fails admission validation
/// or a failing flow stage.
pub fn run_flow(spec: &SessionSpec) -> Result<FlowReport, SessionError> {
    spec.validate().map_err(SessionError::from)?;
    let tech = build_tech(&spec.tech, &spec.design)
        .ok_or_else(|| SessionError::UnknownTech(spec.tech.clone()))?;
    let design = build_design(&spec.design, &tech)
        .ok_or_else(|| SessionError::UnknownDesign(spec.design.clone()))?;
    let cfg = spec.flow_config();
    Ok(crate::flow::run_flow(&design, &cfg, spec.policy)?)
}

/// Cold-builds a warm session for a spec (the expensive step the serve
/// daemon caches behind its build lock).
///
/// # Errors
///
/// Returns [`SessionError`] for unknown names or a failing flow stage.
pub fn build_session(spec: &SessionSpec) -> Result<DesignSession, SessionError> {
    DesignSession::build(spec)
}

/// Answers one [`Query`] against a warm session — the single dispatch
/// point the serve handler and the CLI both use.
///
/// # Errors
///
/// Returns the [`SessionError`] of the underlying session method
/// (unknown net, no model, failed detached route).
pub fn query(session: &DesignSession, q: &Query) -> Result<QueryAnswer, SessionError> {
    match q {
        Query::WhatIf {
            net,
            allow_mls,
            max_expansions,
        } => session
            .what_if(*net, *allow_mls, *max_expansions)
            .map(QueryAnswer::WhatIf),
        Query::Infer { paths } => session.infer(*paths).map(QueryAnswer::Infer),
        Query::Stats => Ok(QueryAnswer::Stats(session.stats())),
    }
}

/// Renders the process-wide metrics registry as Prometheus-style text
/// exposition — counters, gauges, and histograms from every crate in
/// the stack (router search effort, rip-up convergence, serve queue and
/// cache behavior, recovered panics, fault activations).
pub fn metrics() -> String {
    gnnmls_obs::render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_validates_before_work() {
        let mut spec = SessionSpec::fast("maeri16");
        spec.design = "nope".into();
        assert!(matches!(
            run_flow(&spec),
            Err(SessionError::UnknownDesign(_))
        ));
        assert!(matches!(
            build_session(&spec),
            Err(SessionError::UnknownDesign(_))
        ));
    }

    #[test]
    fn query_dispatch_matches_direct_calls() {
        let session = build_session(&SessionSpec::fast("maeri16")).unwrap();
        let direct = session.stats();
        match query(&session, &Query::Stats).unwrap() {
            QueryAnswer::Stats(s) => assert_eq!(s, direct),
            other => panic!("expected stats, got {other:?}"),
        }
        let q = Query::WhatIf {
            net: 0,
            allow_mls: true,
            max_expansions: None,
        };
        match (query(&session, &q), session.what_if(0, true, None)) {
            (Ok(QueryAnswer::WhatIf(a)), Ok(b)) => assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("facade diverged from direct call: {a:?} vs {b:?}"),
        }
        // No-model sessions refuse inference through the facade too.
        assert!(matches!(
            query(&session, &Query::Infer { paths: 5 }),
            Err(SessionError::NoModel)
        ));
    }

    #[test]
    fn metrics_exposition_is_parsable() {
        let text = metrics();
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "unparsable line: {line}"
            );
        }
    }
}

//! Cross-stage invariant auditing for the flow and the serve daemon.
//!
//! The route-level checks live in [`gnnmls_route::audit`]; this module
//! turns their violation lists into typed [`FlowError::AuditFailed`]
//! values and adds the flow-level checks the route crate cannot see:
//! a resumed report envelope must describe the run that asked for it
//! (same design, same policy) and carry sane aggregate numbers.
//!
//! Where the auditor runs:
//! - after the routing stage of [`crate::flow::run_flow`] — fresh or
//!   resumed from a checkpoint, the DB is proven before STA reads it;
//! - after the DFT ECO re-route;
//! - on a resumed `report-<policy>` stage (consistency, not recount);
//! - after a [`crate::session::DesignSession`] build (full), and on
//!   every serve warm cache hit (cheap mode).

use gnnmls_netlist::Netlist;
use gnnmls_route::{audit_route_db, AuditMode, MlsPolicy, RouteDb, RoutingGrid};

use crate::flow::{FlowError, FlowPolicy};
use crate::report::FlowReport;

/// Audits a route DB and converts violations into
/// [`FlowError::AuditFailed`], tagged with the flow stage that
/// produced the DB.
///
/// # Errors
///
/// Returns [`FlowError::AuditFailed`] when any invariant is violated.
pub fn check_routes(
    netlist: &Netlist,
    grid: &RoutingGrid,
    policy: &MlsPolicy,
    db: &RouteDb,
    mode: AuditMode,
    stage: &str,
) -> Result<(), FlowError> {
    let violations = audit_route_db(netlist, grid, policy, db, mode);
    match violations.first() {
        None => Ok(()),
        Some(first) => Err(FlowError::AuditFailed {
            stage: stage.to_string(),
            violations: violations.len(),
            first: first.to_string(),
        }),
    }
}

/// Checks a resumed report envelope against the run that loaded it:
/// the checkpoint must describe this design under this policy, and its
/// aggregates must be internally consistent. Catches a resume directory
/// shared between incompatible runs, which the per-stage checksums
/// cannot (each file is individually valid).
///
/// # Errors
///
/// Returns [`FlowError::AuditFailed`] when the envelope disagrees.
pub fn check_report(
    report: &FlowReport,
    design: &str,
    policy: FlowPolicy,
) -> Result<(), FlowError> {
    let mut problems: Vec<String> = Vec::new();
    if report.policy != policy.name() {
        problems.push(format!(
            "report is for policy `{}`, run requested `{}`",
            report.policy,
            policy.name()
        ));
    }
    if report.design != design {
        problems.push(format!(
            "report is for design `{}`, run requested `{}`",
            report.design, design
        ));
    }
    if report.violating_paths > report.endpoints {
        problems.push(format!(
            "{} violating paths out of {} endpoints",
            report.violating_paths, report.endpoints
        ));
    }
    for (name, v) in [
        ("wirelength_m", report.wirelength_m),
        ("wns_ps", report.wns_ps),
        ("tns_ns", report.tns_ns),
        ("power_mw", report.power_mw),
        ("eff_freq_mhz", report.eff_freq_mhz),
    ] {
        if !v.is_finite() {
            problems.push(format!("{name} is not finite ({v})"));
        }
    }
    if report.wirelength_m < 0.0 || report.power_mw < 0.0 {
        problems.push("negative wirelength or power".to_string());
    }
    match problems.first() {
        None => Ok(()),
        Some(first) => Err(FlowError::AuditFailed {
            stage: "report".to_string(),
            violations: problems.len(),
            first: first.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{run_flow, FlowConfig};
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;

    fn report() -> FlowReport {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        run_flow(&d, &FlowConfig::fast_test(2500.0), FlowPolicy::NoMls).unwrap()
    }

    #[test]
    fn clean_report_passes_for_its_own_run() {
        let r = report();
        check_report(&r, &r.design.clone(), FlowPolicy::NoMls).unwrap();
    }

    #[test]
    fn report_for_the_wrong_policy_is_caught() {
        let r = report();
        let err = check_report(&r, &r.design.clone(), FlowPolicy::Sota).unwrap_err();
        match err {
            FlowError::AuditFailed { stage, first, .. } => {
                assert_eq!(stage, "report");
                assert!(first.contains("policy"), "{first}");
            }
            other => panic!("expected AuditFailed, got {other}"),
        }
    }

    #[test]
    fn report_with_poisoned_numbers_is_caught() {
        let mut r = report();
        let design = r.design.clone();
        r.wns_ps = f64::NAN;
        assert!(check_report(&r, &design, FlowPolicy::NoMls).is_err());
        let mut r2 = report();
        r2.violating_paths = r2.endpoints + 1;
        assert!(check_report(&r2, &design, FlowPolicy::NoMls).is_err());
    }
}

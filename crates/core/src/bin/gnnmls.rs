//! `gnnmls` — command-line front end to the GNN-MLS flow.
//!
//! ```sh
//! gnnmls flow --design maeri128 --tech hetero --policy gnn-mls --freq 2500 \
//!        [--dft net|wire] [--json report.json] [--save-model model.json] \
//!        [--load-model model.json] [--verilog netlist.v]
//! gnnmls designs      # list available designs
//! ```
//!
//! Argument parsing is hand-rolled (the workspace is dependency-minimal).

use std::collections::HashMap;
use std::process::ExitCode;

use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
use gnn_mls::GnnMls;
use gnnmls_dft::DftMode;
use gnnmls_netlist::generators::{
    generate_a7, generate_maeri, A7Config, GeneratedDesign, MaeriConfig,
};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::verilog::write_verilog;

const DESIGNS: &[(&str, &str)] = &[
    ("maeri16", "MAERI 16PE 4BW (Table III scale)"),
    ("maeri128", "MAERI 128PE 32BW (Table IV)"),
    ("maeri256", "MAERI 256PE 64BW (Table V)"),
    ("a7", "Cortex-A7-style dual-core (Tables IV/V)"),
];

fn usage() -> &'static str {
    "usage:\n  gnnmls flow --design <name> [--tech hetero|homo] [--policy no-mls|sota|gnn-mls]\n              [--freq <MHz>] [--dft net|wire] [--json <path>] [--verilog <path>]\n              [--save-model <path>] [--load-model <path>] [--resume <dir>] [--fast]\n  gnnmls designs\n\nGNNMLS_FAULTS=<site:shots,...|seed:N> arms the deterministic fault harness.\n"
}

fn build_design(name: &str, tech: &TechConfig) -> Option<GeneratedDesign> {
    let d = match name {
        "maeri16" => generate_maeri(&MaeriConfig::pe16_bw4(), tech),
        "maeri128" => generate_maeri(&MaeriConfig::pe128_bw32(), tech),
        "maeri256" => generate_maeri(&MaeriConfig::pe256_bw64(), tech),
        "a7" => generate_a7(&A7Config::dual_core(), tech),
        _ => return None,
    };
    Some(d.expect("generators are infallible for known configs"))
}

fn main() -> ExitCode {
    // Armed only when GNNMLS_FAULTS is set; the guard must outlive the run.
    let _faults = gnnmls_faults::install_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("designs") => {
            for (name, desc) in DESIGNS {
                println!("{name:10} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("flow") => run_flow_cmd(&args[1..]),
        _ => {
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run_flow_cmd(args: &[String]) -> ExitCode {
    let mut opts: HashMap<&str, &str> = HashMap::new();
    let mut fast = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--fast" {
            fast = true;
            continue;
        }
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument `{a}`\n{}", usage());
            return ExitCode::FAILURE;
        };
        let Some(v) = it.next() else {
            eprintln!("missing value for --{key}");
            return ExitCode::FAILURE;
        };
        opts.insert(
            match key {
                "design" | "tech" | "policy" | "freq" | "dft" | "json" | "verilog"
                | "save-model" | "load-model" | "resume" => key,
                other => {
                    eprintln!("unknown option --{other}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            v,
        );
    }

    let design_name = opts.get("design").copied().unwrap_or("maeri16");
    let is_a7 = design_name == "a7";
    let layers = if is_a7 { 8 } else { 6 };
    let tech = match opts.get("tech").copied().unwrap_or("hetero") {
        "hetero" => TechConfig::heterogeneous_16_28(layers, layers),
        "homo" => TechConfig::homogeneous_28_28(layers, layers),
        other => {
            eprintln!("unknown tech `{other}` (hetero|homo)");
            return ExitCode::FAILURE;
        }
    };
    let Some(design) = build_design(design_name, &tech) else {
        eprintln!("unknown design `{design_name}`; see `gnnmls designs`");
        return ExitCode::FAILURE;
    };

    let policy = match opts.get("policy").copied().unwrap_or("gnn-mls") {
        "no-mls" => FlowPolicy::NoMls,
        "sota" => FlowPolicy::Sota,
        "gnn-mls" => FlowPolicy::GnnMls,
        other => {
            eprintln!("unknown policy `{other}` (no-mls|sota|gnn-mls)");
            return ExitCode::FAILURE;
        }
    };
    let freq: f64 = match opts
        .get("freq")
        .copied()
        .unwrap_or(if is_a7 { "2000" } else { "2500" })
        .parse()
    {
        Ok(f) if f > 0.0 => f,
        _ => {
            eprintln!("--freq must be a positive number (MHz)");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = if fast {
        FlowConfig::fast_test(freq)
    } else {
        FlowConfig::new(freq)
    };
    match opts.get("dft").copied() {
        None => {}
        Some("net") => cfg.dft = Some(DftMode::NetBased),
        Some("wire") => cfg.dft = Some(DftMode::WireBased),
        Some(other) => {
            eprintln!("unknown dft mode `{other}` (net|wire)");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = opts.get("save-model") {
        cfg.save_model = Some(std::path::PathBuf::from(path));
    }
    if let Some(dir) = opts.get("resume") {
        cfg.resume = Some(std::path::PathBuf::from(dir));
    }
    if let Some(path) = opts.get("load-model") {
        match GnnMls::load_json(path) {
            Ok(m) => cfg.pretrained = Some(m.to_checkpoint()),
            Err(e) => {
                eprintln!("could not load model from {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = opts.get("verilog") {
        if let Err(e) = std::fs::write(path, write_verilog(&design.netlist)) {
            eprintln!("could not write verilog to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("netlist written to {path}");
    }

    eprintln!(
        "running {} [{}] @ {freq} MHz ({})...",
        design.netlist.name(),
        policy.name(),
        tech.name
    );
    let report = match run_flow(&design, &cfg, policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");

    if let Some(path) = opts.get("json") {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(path, s) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("report written to {path}");
            }
            Err(e) => eprintln!("serialize failed: {e}"),
        }
    }
    if let Some(path) = opts.get("save-model") {
        eprintln!("trained model checkpointed to {path}");
    }
    ExitCode::SUCCESS
}

//! Model checkpoints: serialize a trained GNN-MLS model (architecture
//! config, encoder + head weights, feature scaler) to JSON and restore it
//! later — e.g. train once on a family of designs, then make MLS
//! decisions on new ones without re-running the oracle.

use std::fmt;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use gnnmls_nn::Tensor;

use crate::features::FeatureScaler;
use crate::model::{GnnMls, ModelConfig};

/// A serializable snapshot of a trained model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Architecture / training configuration (the restore target must be
    /// rebuilt from exactly this config).
    pub config: ModelConfig,
    /// Encoder parameters in registration order.
    pub encoder_params: Vec<Tensor>,
    /// MLP head parameters in registration order.
    pub head_params: Vec<Tensor>,
    /// The frozen feature normalizer (present after training).
    pub scaler: Option<FeatureScaler>,
}

/// Errors raised restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// File or serialization problem.
    Io(std::io::Error),
    /// JSON problem.
    Json(serde_json::Error),
    /// Parameter count/shape mismatch at the given index (the checkpoint
    /// was produced by a different architecture).
    Shape(usize),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint json: {e}"),
            CheckpointError::Shape(i) => {
                write!(
                    f,
                    "checkpoint parameter {i} does not match the architecture"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}
impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

impl GnnMls {
    /// Snapshots the model.
    pub fn to_checkpoint(&self) -> ModelCheckpoint {
        ModelCheckpoint {
            config: self.config().clone(),
            encoder_params: self.encoder_tensors().to_vec(),
            head_params: self.head_tensors().to_vec(),
            scaler: self.scaler_ref().cloned(),
        }
    }

    /// Rebuilds a model from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Shape`] if the snapshot does not match
    /// the architecture its config describes.
    pub fn from_checkpoint(cp: ModelCheckpoint) -> Result<Self, CheckpointError> {
        let mut model = GnnMls::new(cp.config);
        model
            .restore_tensors(cp.encoder_params, cp.head_params)
            .map_err(CheckpointError::Shape)?;
        model.set_scaler(cp.scaler);
        Ok(model)
    }

    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on IO or serialization failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let s = serde_json::to_string(&self.to_checkpoint())?;
        fs::write(path, s)?;
        Ok(())
    }

    /// Loads a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on IO, parse, or shape mismatch.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let s = fs::read_to_string(path)?;
        let cp: ModelCheckpoint = serde_json::from_str(&s)?;
        Self::from_checkpoint(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use crate::model::EncoderKind;
    use crate::paths::PathSample;
    use gnnmls_netlist::{NetId, PinId};
    use gnnmls_sta::TimingPath;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn samples(n: usize, seed: u64) -> Vec<PathSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let len = rng.gen_range(4..10);
                let mut features = Vec::new();
                let mut labels = Vec::new();
                let mut nets = Vec::new();
                for i in 0..len {
                    let mut f = [0.0f32; FEATURE_DIM];
                    for v in f.iter_mut() {
                        *v = rng.gen_range(-1.0..1.0);
                    }
                    labels.push(f[4] > 0.0);
                    features.push(f);
                    nets.push(NetId::new((k * 64 + i) as u32));
                }
                PathSample {
                    path: TimingPath {
                        pins: vec![],
                        cells: vec![],
                        nets: nets.clone(),
                        endpoint: PinId::new(0),
                        slack_ps: -5.0,
                        clock_period_ps: 400.0,
                        setup_ps: 10.0,
                    },
                    eligible: vec![true; nets.len()],
                    nets,
                    features,
                    labels: Some(labels),
                }
            })
            .collect()
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let train = samples(25, 1);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            finetune_epochs: 10,
            ..ModelConfig::default()
        });
        model.pretrain(&train);
        model.finetune(&train);
        let before: Vec<Vec<f32>> = train.iter().map(|s| model.predict_path(s)).collect();

        let restored = GnnMls::from_checkpoint(model.to_checkpoint()).unwrap();
        let after: Vec<Vec<f32>> = train.iter().map(|s| restored.predict_path(s)).collect();
        assert_eq!(before, after, "restored model must predict identically");
        assert_eq!(model.decide(&train), restored.decide(&train));
    }

    #[test]
    fn json_roundtrip_via_disk() {
        let train = samples(15, 2);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 1,
            finetune_epochs: 5,
            ..ModelConfig::default()
        });
        model.pretrain(&train);
        model.finetune(&train);
        let dir = std::env::temp_dir().join("gnnmls_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save_json(&path).unwrap();
        let restored = GnnMls::load_json(&path).unwrap();
        for s in &train {
            assert_eq!(model.predict_path(s), restored.predict_path(s));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let model = GnnMls::new(ModelConfig::default());
        let mut cp = model.to_checkpoint();
        // Claim a different architecture than the weights describe.
        cp.config.encoder = EncoderKind::Gcn;
        assert!(matches!(
            GnnMls::from_checkpoint(cp),
            Err(CheckpointError::Shape(_))
        ));
    }

    #[test]
    fn checkpoint_errors_display() {
        let e = CheckpointError::Shape(3);
        assert!(e.to_string().contains("parameter 3"));
    }
}

//! Flow checkpoints.
//!
//! Two layers live here:
//!
//! - [`ModelCheckpoint`] — a serializable snapshot of a trained GNN-MLS
//!   model (architecture config, encoder + head weights, feature
//!   scaler): train once on a family of designs, then make MLS decisions
//!   on new ones without re-running the oracle.
//! - **Stage checkpoints** ([`save_stage`] / [`load_stage`]) — the
//!   resumable on-disk state each flow stage emits (placement, learned
//!   decisions, routing DB, final report), wrapped in a checksummed
//!   envelope so truncation or bit-corruption is always detected as
//!   [`CheckpointError::Corrupt`], never deserialized into silently
//!   wrong data.
//!
//! The envelope is a single header line followed by the JSON payload:
//!
//! ```text
//! GNNMLS-CKPT v1 <stage> <format-version> <fnv1a64-hex> <payload-len>\n{...json...}
//! ```
//!
//! The format-version field (ahead of the checksum) lets both `--resume`
//! and the serve session cache reject envelopes written by an
//! incompatible build with a typed [`CheckpointError::Version`] instead
//! of a confusing decode failure. Version-0 files (the original
//! four-field header without the version) are still read.

use std::fmt;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use gnnmls_nn::Tensor;

use crate::features::FeatureScaler;
use crate::model::{GnnMls, ModelConfig};
use crate::store::{durable_read, durable_write, StorageError};

/// Magic prefix of the stage-checkpoint envelope.
pub const STAGE_MAGIC: &str = "GNNMLS-CKPT v1";

/// Format version written by this build. Version 0 is the original
/// envelope without a version field; readers accept `0..=` this value.
pub const STAGE_FORMAT_VERSION: u32 = 1;

/// Stage name of a versioned model-zoo checkpoint envelope.
pub const ZOO_MODEL_STAGE: &str = "model-zoo";

/// A semver-ish model version: versions within one family order by
/// `(major, minor, patch)`; the serve tier reports the active version
/// per family in its metrics.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ModelVersion {
    /// Incompatible retrain (new architecture or feature schema).
    pub major: u32,
    /// Corpus growth or re-finetune, same architecture.
    pub minor: u32,
    /// Metadata-only or re-export.
    pub patch: u32,
}

impl ModelVersion {
    /// Builds a version literal.
    pub const fn new(major: u32, minor: u32, patch: u32) -> Self {
        Self {
            major,
            minor,
            patch,
        }
    }

    /// Parses `major.minor.patch`; `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.split('.');
        let major = it.next()?.parse().ok()?;
        let minor = it.next()?.parse().ok()?;
        let patch = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(Self {
            major,
            minor,
            patch,
        })
    }
}

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// The `model-zoo` checkpoint payload: a trained model plus the
/// provenance the registry needs — which family it serves, its version,
/// and the content hashes of every corpus design it saw. Written and
/// read through the same checksummed stage envelope as every other
/// checkpoint ([`ZOO_MODEL_STAGE`]), so corruption is a typed refusal.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZooModelCheckpoint {
    /// Design family this model serves (see
    /// [`crate::session::FAMILIES`]).
    pub family: String,
    /// Version of this model within its family.
    pub version: ModelVersion,
    /// Sorted [`gnnmls_netlist::Netlist::content_hash`] of every design
    /// variant in the training corpus (pretrain + finetune).
    pub corpus_hashes: Vec<u64>,
    /// DGI-pretrain epochs the corpus driver ran.
    pub pretrain_epochs: usize,
    /// Fine-tune epochs the family driver ran.
    pub finetune_epochs: usize,
    /// The trained weights + config + scaler.
    pub model: ModelCheckpoint,
}

impl ZooModelCheckpoint {
    /// Saves the checkpoint at `path` in the [`ZOO_MODEL_STAGE`]
    /// envelope.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on IO or serialization failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        durable_write(path, &encode_stage(ZOO_MODEL_STAGE, self)?)?;
        Ok(())
    }

    /// Loads and envelope-validates a checkpoint from `path`.
    ///
    /// The [`gnnmls_faults::FaultSite::ModelSwapCorrupt`] seam damages
    /// the bytes between the read and the envelope check (one shot
    /// bit-flips, a second in the same plan truncates), standing in for
    /// a torn download or a bad disk serving a `LoadModel` swap.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] for a damaged envelope and
    /// [`CheckpointError::Io`]/[`CheckpointError::Json`] for filesystem
    /// or payload problems.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = durable_read(path)?;
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::ModelSwapCorrupt) {
            if gnnmls_faults::fire(gnnmls_faults::FaultSite::ModelSwapCorrupt) {
                bytes.truncate(bytes.len() / 2);
            } else if let Some(mid) = bytes.len().checked_sub(1).map(|n| n / 2) {
                bytes[mid] ^= 0x04;
            }
        }
        decode_stage(ZOO_MODEL_STAGE, &bytes)
    }
}

/// A serializable snapshot of a trained model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Architecture / training configuration (the restore target must be
    /// rebuilt from exactly this config).
    pub config: ModelConfig,
    /// Encoder parameters in registration order.
    pub encoder_params: Vec<Tensor>,
    /// MLP head parameters in registration order.
    pub head_params: Vec<Tensor>,
    /// The frozen feature normalizer (present after training).
    pub scaler: Option<FeatureScaler>,
}

/// Errors raised restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// File or serialization problem.
    Io(std::io::Error),
    /// JSON problem.
    Json(serde_json::Error),
    /// Parameter count/shape mismatch at the given index (the checkpoint
    /// was produced by a different architecture).
    Shape(usize),
    /// The stage envelope failed validation (bad magic, wrong stage
    /// name, truncated payload, or checksum mismatch).
    Corrupt(String),
    /// The envelope is well-formed but written by an incompatible
    /// format version newer than this build understands.
    Version {
        /// Format version declared by the file.
        found: u32,
        /// Newest format version this build reads.
        supported: u32,
    },
    /// The durable-storage layer refused the write or read (disk full,
    /// torn write, orphaned temp file — see [`StorageError`]).
    Storage(StorageError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint json: {e}"),
            CheckpointError::Shape(i) => {
                write!(
                    f,
                    "checkpoint parameter {i} does not match the architecture"
                )
            }
            CheckpointError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
            CheckpointError::Version { found, supported } => write!(
                f,
                "checkpoint format version {found} is newer than this \
                 build supports (max {supported})"
            ),
            CheckpointError::Storage(e) => write!(f, "checkpoint storage: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}
impl From<StorageError> for CheckpointError {
    fn from(e: StorageError) -> Self {
        match e {
            // Plain IO keeps its historical variant so callers that
            // branch on `ErrorKind` (missing file → start fresh) still
            // see the underlying error.
            StorageError::Io { error, .. } => CheckpointError::Io(error),
            other => CheckpointError::Storage(other),
        }
    }
}
impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to catch the
/// torn/truncated/bit-flipped writes stage checkpoints must survive.
/// Also used as the serve session-cache key hash and the model-zoo
/// manifest integrity hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `value` as pretty-printed JSON to `path`, creating parent
/// directories as needed. The one JSON-manifest writer behind the bench
/// ledgers, the suite report, and the model-zoo `MANIFEST.json` —
/// callers that must not fail (benches on a read-only checkout) wrap it
/// in their own warn-and-continue. The bytes go through
/// [`crate::store::durable_write`], so a crash mid-write leaves the
/// complete old ledger, never a torn one.
///
/// # Errors
///
/// Returns [`CheckpointError::Json`] if serialization fails,
/// [`CheckpointError::Io`] on plain filesystem failure, and
/// [`CheckpointError::Storage`] when the durable-write protocol was cut
/// short (disk full, torn write, crash before rename).
pub fn write_json_file<T: Serialize>(path: &Path, value: &T) -> Result<(), CheckpointError> {
    let json = serde_json::to_string_pretty(value)?;
    durable_write(path, json.as_bytes())?;
    Ok(())
}

/// [`save_stage`], but a write failure is reported as a structured
/// `gnnmls-obs` warning instead of an error — the shape every drain
/// path (serve-stats, cluster-stats) wants: final stats are best-effort
/// and must never turn a clean shutdown into a failure.
pub fn save_stage_logged<T: Serialize>(
    dir: &Path,
    stage: &str,
    value: &T,
    component: &'static str,
) {
    if let Err(e) = save_stage(dir, stage, value) {
        gnnmls_obs::warn(
            component,
            &format!("could not write final `{stage}` checkpoint: {e}"),
        );
    }
}

/// Serializes `value` into the checksummed stage envelope.
///
/// # Errors
///
/// Returns [`CheckpointError::Json`] if serialization fails.
pub fn encode_stage<T: Serialize>(stage: &str, value: &T) -> Result<Vec<u8>, CheckpointError> {
    let json = serde_json::to_string(value)?;
    let mut out = format!(
        "{STAGE_MAGIC} {stage} {STAGE_FORMAT_VERSION} {:016x} {}\n",
        fnv1a64(json.as_bytes()),
        json.len()
    )
    .into_bytes();
    out.extend_from_slice(json.as_bytes());
    Ok(out)
}

/// Validates the envelope and deserializes the payload of `stage`.
///
/// # Errors
///
/// Returns [`CheckpointError::Corrupt`] for any framing problem (bad
/// magic, wrong stage, truncated payload, checksum mismatch),
/// [`CheckpointError::Version`] for a well-formed envelope from a newer
/// format, and [`CheckpointError::Json`] if the verified payload does
/// not parse.
pub fn decode_stage<T: Deserialize>(stage: &str, bytes: &[u8]) -> Result<T, CheckpointError> {
    let corrupt = |why: &str| CheckpointError::Corrupt(format!("stage `{stage}`: {why}"));
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("missing header line"))?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| corrupt("header is not utf-8"))?;
    let rest = header
        .strip_prefix(STAGE_MAGIC)
        .ok_or_else(|| corrupt("bad magic"))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // Three fields (name, sum, len) is the original version-0 header;
    // four or more carries the format version ahead of the checksum. A
    // newer version may extend the header, so the version is checked
    // before the field count.
    let (name, sum, len) = match fields.as_slice() {
        [n, s, l] => (*n, *s, *l),
        [n, ver, tail @ ..] if !tail.is_empty() => {
            let ver: u32 = ver.parse().map_err(|_| corrupt("bad version field"))?;
            if ver > STAGE_FORMAT_VERSION {
                return Err(CheckpointError::Version {
                    found: ver,
                    supported: STAGE_FORMAT_VERSION,
                });
            }
            match tail {
                [s, l] => (*n, *s, *l),
                _ => return Err(corrupt("malformed header")),
            }
        }
        _ => return Err(corrupt("malformed header")),
    };
    if name != stage {
        return Err(corrupt(&format!("holds stage `{name}`")));
    }
    let sum = u64::from_str_radix(sum, 16).map_err(|_| corrupt("bad checksum field"))?;
    let len: usize = len.parse().map_err(|_| corrupt("bad length field"))?;
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(corrupt(&format!(
            "payload is {} bytes, header says {len}",
            payload.len()
        )));
    }
    if fnv1a64(payload) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    let json = std::str::from_utf8(payload).map_err(|_| corrupt("payload is not utf-8"))?;
    Ok(serde_json::from_str(json)?)
}

/// What [`inspect_envelope`] concluded about one artifact's bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeStatus {
    /// A complete, checksum-verified envelope.
    Valid {
        /// Stage name the header declares.
        stage: String,
        /// Format version the header declares (0 for legacy headers).
        version: u32,
    },
    /// Well-formed, but written by a newer format than this build.
    FutureVersion {
        /// Version the file declares.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The framing parsed but the payload does not hash to the header's
    /// checksum (bit rot or a swapped payload).
    ChecksumMismatch,
    /// The framing itself is damaged: missing or truncated header,
    /// non-UTF-8, bad magic, or a payload shorter/longer than declared
    /// — the residue of a torn write.
    Malformed(String),
}

/// Stage-agnostic envelope triage for `fsck`: unlike [`decode_stage`]
/// it does not know (or care) which stage the file *should* hold and
/// never deserializes the payload — it only answers "is this artifact
/// intact, and which stage/version does it claim?".
pub fn inspect_envelope(bytes: &[u8]) -> EnvelopeStatus {
    let bad = |why: &str| EnvelopeStatus::Malformed(why.to_string());
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return bad("missing header line");
    };
    let Ok(header) = std::str::from_utf8(&bytes[..nl]) else {
        return bad("header is not utf-8");
    };
    let Some(rest) = header.strip_prefix(STAGE_MAGIC) else {
        return bad("bad magic");
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // Same header grammar as `decode_stage`: three fields is the
    // legacy version-0 header, four or more carries the version —
    // checked before the field count so a longer future header still
    // classifies as FutureVersion, not Malformed.
    let (version, sum, len) = match fields.as_slice() {
        [_, s, l] => (0u32, *s, *l),
        [_, ver, tail @ ..] if !tail.is_empty() => {
            let Ok(ver) = ver.parse::<u32>() else {
                return bad("bad version field");
            };
            if ver > STAGE_FORMAT_VERSION {
                return EnvelopeStatus::FutureVersion {
                    found: ver,
                    supported: STAGE_FORMAT_VERSION,
                };
            }
            match tail {
                [s, l] => (ver, *s, *l),
                _ => return bad("malformed header"),
            }
        }
        _ => return bad("malformed header"),
    };
    let Ok(sum) = u64::from_str_radix(sum, 16) else {
        return bad("bad checksum field");
    };
    let Ok(len) = len.parse::<usize>() else {
        return bad("bad length field");
    };
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return EnvelopeStatus::Malformed(format!(
            "payload is {} bytes, header says {len}",
            payload.len()
        ));
    }
    if fnv1a64(payload) != sum {
        return EnvelopeStatus::ChecksumMismatch;
    }
    EnvelopeStatus::Valid {
        stage: fields[0].to_string(),
        version,
    }
}

/// Path of a stage checkpoint inside a resume directory.
pub fn stage_path(dir: &Path, stage: &str) -> std::path::PathBuf {
    dir.join(format!("{stage}.ckpt"))
}

/// Writes `value` as the checkpoint of `stage` under `dir` (created if
/// missing). The write goes through [`crate::store::durable_write`]
/// (tmp in the same dir → write → fsync → atomic rename → fsync parent)
/// so a crash at any point leaves either the complete old checkpoint or
/// the complete new one — never a plausible half-written checkpoint.
///
/// The `gnnmls-faults` seams [`gnnmls_faults::FaultSite::CheckpointCorrupt`]
/// and [`gnnmls_faults::FaultSite::CheckpointTruncate`] damage the bytes
/// on their way to disk, which the next [`load_stage`] must detect; the
/// four disk seams (`disk-full`, `torn-write`, `rename-crash`,
/// `read-eio`) fire inside the durable-write protocol itself.
///
/// # Errors
///
/// Returns [`CheckpointError`] on IO, storage-protocol, or
/// serialization failure.
pub fn save_stage<T: Serialize>(dir: &Path, stage: &str, value: &T) -> Result<(), CheckpointError> {
    fs::create_dir_all(dir)?;
    let mut bytes = encode_stage(stage, value)?;
    if gnnmls_faults::fire(gnnmls_faults::FaultSite::CheckpointCorrupt) {
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x01;
        }
    }
    if gnnmls_faults::fire(gnnmls_faults::FaultSite::CheckpointTruncate) {
        bytes.truncate(bytes.len() / 2);
    }
    durable_write(&stage_path(dir, stage), &bytes)?;
    Ok(())
}

/// Loads the checkpoint of `stage` from `dir`; `Ok(None)` when the stage
/// was never checkpointed (no file).
///
/// # Errors
///
/// Returns [`CheckpointError::Corrupt`] for a damaged envelope and
/// [`CheckpointError::Json`]/[`CheckpointError::Io`] for payload or
/// filesystem problems.
pub fn load_stage<T: Deserialize>(dir: &Path, stage: &str) -> Result<Option<T>, CheckpointError> {
    let path = stage_path(dir, stage);
    let bytes = match durable_read(&path) {
        Ok(b) => b,
        Err(StorageError::Io { error, .. }) if error.kind() == std::io::ErrorKind::NotFound => {
            return Ok(None)
        }
        Err(e) => return Err(e.into()),
    };
    decode_stage(stage, &bytes).map(Some)
}

impl GnnMls {
    /// Snapshots the model.
    pub fn to_checkpoint(&self) -> ModelCheckpoint {
        ModelCheckpoint {
            config: self.config().clone(),
            encoder_params: self.encoder_tensors().to_vec(),
            head_params: self.head_tensors().to_vec(),
            scaler: self.scaler_ref().cloned(),
        }
    }

    /// Rebuilds a model from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Shape`] if the snapshot does not match
    /// the architecture its config describes.
    pub fn from_checkpoint(cp: ModelCheckpoint) -> Result<Self, CheckpointError> {
        let mut model = GnnMls::new(cp.config);
        model
            .restore_tensors(cp.encoder_params, cp.head_params)
            .map_err(CheckpointError::Shape)?;
        model.set_scaler(cp.scaler);
        Ok(model)
    }

    /// Saves the model in the checksummed stage envelope (stage
    /// `model`), so later loads can tell corruption from a valid file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on IO or serialization failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let bytes = encode_stage("model", &self.to_checkpoint())?;
        durable_write(path.as_ref(), &bytes)?;
        Ok(())
    }

    /// Loads a model saved by [`GnnMls::save_json`]. Bare-JSON files
    /// from before the envelope are still accepted.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on IO, corruption, parse, or shape
    /// mismatch.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = durable_read(path.as_ref())?;
        let cp: ModelCheckpoint = if bytes.starts_with(STAGE_MAGIC.as_bytes()) {
            decode_stage("model", &bytes)?
        } else {
            let s = std::str::from_utf8(&bytes)
                .map_err(|_| CheckpointError::Corrupt("model checkpoint is not utf-8".into()))?;
            serde_json::from_str(s)?
        };
        Self::from_checkpoint(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use crate::model::EncoderKind;
    use crate::paths::PathSample;
    use gnnmls_netlist::{NetId, PinId};
    use gnnmls_sta::TimingPath;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn samples(n: usize, seed: u64) -> Vec<PathSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let len = rng.gen_range(4..10);
                let mut features = Vec::new();
                let mut labels = Vec::new();
                let mut nets = Vec::new();
                for i in 0..len {
                    let mut f = [0.0f32; FEATURE_DIM];
                    for v in f.iter_mut() {
                        *v = rng.gen_range(-1.0..1.0);
                    }
                    labels.push(f[4] > 0.0);
                    features.push(f);
                    nets.push(NetId::new((k * 64 + i) as u32));
                }
                PathSample {
                    path: TimingPath {
                        pins: vec![],
                        cells: vec![],
                        nets: nets.clone(),
                        endpoint: PinId::new(0),
                        slack_ps: -5.0,
                        clock_period_ps: 400.0,
                        setup_ps: 10.0,
                    },
                    eligible: vec![true; nets.len()],
                    nets,
                    features,
                    labels: Some(labels),
                }
            })
            .collect()
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let train = samples(25, 1);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            finetune_epochs: 10,
            ..ModelConfig::default()
        });
        model.pretrain(&train).unwrap();
        model.finetune(&train).unwrap();
        let before: Vec<Vec<f32>> = train
            .iter()
            .map(|s| model.predict_path(s).unwrap())
            .collect();

        let restored = GnnMls::from_checkpoint(model.to_checkpoint()).unwrap();
        let after: Vec<Vec<f32>> = train
            .iter()
            .map(|s| restored.predict_path(s).unwrap())
            .collect();
        assert_eq!(before, after, "restored model must predict identically");
        assert_eq!(
            model.decide(&train).unwrap(),
            restored.decide(&train).unwrap()
        );
    }

    #[test]
    fn json_roundtrip_via_disk() {
        let train = samples(15, 2);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 1,
            finetune_epochs: 5,
            ..ModelConfig::default()
        });
        model.pretrain(&train).unwrap();
        model.finetune(&train).unwrap();
        let dir = std::env::temp_dir().join("gnnmls_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save_json(&path).unwrap();
        let restored = GnnMls::load_json(&path).unwrap();
        for s in &train {
            assert_eq!(
                model.predict_path(s).unwrap(),
                restored.predict_path(s).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let model = GnnMls::new(ModelConfig::default());
        let mut cp = model.to_checkpoint();
        // Claim a different architecture than the weights describe.
        cp.config.encoder = EncoderKind::Gcn;
        assert!(matches!(
            GnnMls::from_checkpoint(cp),
            Err(CheckpointError::Shape(_))
        ));
    }

    #[test]
    fn checkpoint_errors_display() {
        let e = CheckpointError::Shape(3);
        assert!(e.to_string().contains("parameter 3"));
        let e = CheckpointError::Corrupt("checksum mismatch".into());
        assert!(e.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn stage_envelope_roundtrips() {
        let v: Vec<u32> = (0..50).collect();
        let bytes = encode_stage("routes", &v).unwrap();
        let back: Vec<u32> = decode_stage("routes", &bytes).unwrap();
        assert_eq!(v, back);
        // Saving the same value re-encodes bit-identically.
        assert_eq!(bytes, encode_stage("routes", &back).unwrap());
    }

    #[test]
    fn stage_envelope_rejects_damage() {
        let bytes = encode_stage("routes", &vec![1u32, 2, 3]).unwrap();
        // Every single-byte flip and every truncation is a typed error.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            if let Ok(v) = decode_stage::<Vec<u32>>("routes", &b) {
                panic!("flip at {i} decoded as {v:?}");
            }
            assert!(decode_stage::<Vec<u32>>("routes", &bytes[..i]).is_err());
        }
        // Wrong stage name is refused even with a valid checksum.
        assert!(matches!(
            decode_stage::<Vec<u32>>("report", &bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn version_zero_envelopes_still_decode() {
        // A file written before the version field existed: four-field
        // header `<magic> <stage> <sum> <len>`.
        let v = vec![9u32, 8, 7];
        let json = serde_json::to_string(&v).unwrap();
        let mut legacy = format!(
            "{STAGE_MAGIC} routes {:016x} {}\n",
            super::fnv1a64(json.as_bytes()),
            json.len()
        )
        .into_bytes();
        legacy.extend_from_slice(json.as_bytes());
        let back: Vec<u32> = decode_stage("routes", &legacy).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn future_format_version_is_a_typed_error() {
        let v = vec![1u32];
        let json = serde_json::to_string(&v).unwrap();
        let mut future = format!(
            "{STAGE_MAGIC} routes 2 {:016x} {} extra-field\n",
            super::fnv1a64(json.as_bytes()),
            json.len()
        )
        .into_bytes();
        future.extend_from_slice(json.as_bytes());
        match decode_stage::<Vec<u32>>("routes", &future) {
            Err(CheckpointError::Version { found, supported }) => {
                assert_eq!(found, 2);
                assert_eq!(supported, STAGE_FORMAT_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
        let msg = CheckpointError::Version {
            found: 2,
            supported: STAGE_FORMAT_VERSION,
        }
        .to_string();
        assert!(msg.contains("version 2"), "{msg}");
    }

    #[test]
    fn current_envelopes_carry_the_version_field() {
        let bytes = encode_stage("routes", &vec![1u32]).unwrap();
        let header =
            std::str::from_utf8(&bytes[..bytes.iter().position(|&b| b == b'\n').unwrap()]).unwrap();
        let fields: Vec<&str> = header
            .strip_prefix(STAGE_MAGIC)
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(fields.len(), 4, "stage, version, checksum, length");
        assert_eq!(fields[1], STAGE_FORMAT_VERSION.to_string());
    }

    #[test]
    fn save_and_load_stage_via_disk() {
        let dir = std::env::temp_dir().join("gnnmls_stage_ckpt_test");
        assert!(load_stage::<Vec<u32>>(&dir, "missing").unwrap().is_none());
        save_stage(&dir, "labels", &vec![7u32; 9]).unwrap();
        let back: Vec<u32> = load_stage(&dir, "labels").unwrap().unwrap();
        assert_eq!(back, vec![7u32; 9]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_version_parses_orders_and_displays() {
        let v = ModelVersion::parse("1.2.3").unwrap();
        assert_eq!(v, ModelVersion::new(1, 2, 3));
        assert_eq!(v.to_string(), "1.2.3");
        assert!(ModelVersion::new(1, 10, 0) > v);
        assert!(ModelVersion::new(2, 0, 0) > ModelVersion::new(1, 99, 99));
        for bad in ["", "1", "1.2", "1.2.3.4", "a.b.c", "1.2.-3"] {
            assert!(ModelVersion::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn zoo_checkpoint_roundtrips_and_detects_damage() {
        let dir = std::env::temp_dir().join("gnnmls_zoo_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let cp = ZooModelCheckpoint {
            family: "maeri".into(),
            version: ModelVersion::new(1, 0, 0),
            corpus_hashes: vec![7, 11, 13],
            pretrain_epochs: 2,
            finetune_epochs: 5,
            model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
        };
        let path = dir.join("maeri-1.0.0.ckpt");
        cp.save(&path).unwrap();
        let back = ZooModelCheckpoint::load(&path).unwrap();
        assert_eq!(back.family, "maeri");
        assert_eq!(back.version, cp.version);
        assert_eq!(back.corpus_hashes, cp.corpus_hashes);
        // A flipped byte is a typed corruption, never silent data.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ZooModelCheckpoint::load(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        // A model-stage envelope is not a zoo envelope.
        let model = GnnMls::new(ModelConfig::default());
        model.save_json(&path).unwrap();
        assert!(matches!(
            ZooModelCheckpoint::load(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_file_creates_parents_and_roundtrips() {
        let dir = std::env::temp_dir().join("gnnmls_write_json_file_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("manifest.json");
        write_json_file(&path, &vec![1u32, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<u32> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        // Pretty output, not the compact encoding.
        assert!(text.contains('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_stage_logged_writes_and_never_fails() {
        let dir = std::env::temp_dir().join("gnnmls_stage_logged_test");
        std::fs::remove_dir_all(&dir).ok();
        save_stage_logged(&dir, "stats", &vec![4u32], "test");
        let back: Vec<u32> = load_stage(&dir, "stats").unwrap().unwrap();
        assert_eq!(back, vec![4]);
        // A doomed write (dir path is a file) only warns.
        let file = dir.join("stats.ckpt");
        save_stage_logged(&file, "stats", &vec![4u32], "test");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_checkpoint_faults_are_detected_on_load() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let dir = std::env::temp_dir().join("gnnmls_stage_fault_test");
        for site in [FaultSite::CheckpointCorrupt, FaultSite::CheckpointTruncate] {
            let guard = install(&FaultPlan::single(site, 1));
            save_stage(&dir, "decisions", &vec![1u8, 2, 3]).unwrap();
            drop(guard);
            assert!(
                matches!(
                    load_stage::<Vec<u8>>(&dir, "decisions"),
                    Err(CheckpointError::Corrupt(_))
                ),
                "{site} must be caught by the envelope"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Pinned against independent FNV-1a 64 implementations: the
        // hash is load-bearing for every on-disk envelope, so a silent
        // change here would orphan every existing checkpoint.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a64(b"hello world"), 0x779a_65e7_023c_d2e7);
        assert_eq!(fnv1a64(STAGE_MAGIC.as_bytes()), 0x98c7_15c2_b3f8_6f2a);
    }

    #[test]
    fn inspect_envelope_classifies_every_damage_class() {
        let bytes = encode_stage("routes", &vec![1u32, 2, 3]).unwrap();
        assert_eq!(
            inspect_envelope(&bytes),
            EnvelopeStatus::Valid {
                stage: "routes".into(),
                version: STAGE_FORMAT_VERSION,
            }
        );
        // Truncation is framing damage.
        let cut = &bytes[..bytes.len() - 2];
        assert!(matches!(
            inspect_envelope(cut),
            EnvelopeStatus::Malformed(_)
        ));
        // A flipped payload byte with intact framing is a checksum
        // mismatch, distinct from torn.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(inspect_envelope(&flipped), EnvelopeStatus::ChecksumMismatch);
        // Garbage is malformed.
        assert!(matches!(
            inspect_envelope(b"not an envelope at all\n{}"),
            EnvelopeStatus::Malformed(_)
        ));
        // A future version is typed, never a panic or a decode attempt.
        let future = format!("{STAGE_MAGIC} routes 99 0123 7 who knows\npayload");
        assert_eq!(
            inspect_envelope(future.as_bytes()),
            EnvelopeStatus::FutureVersion {
                found: 99,
                supported: STAGE_FORMAT_VERSION,
            }
        );
        // Legacy version-0 headers classify as valid version 0.
        let v = vec![9u32];
        let json = serde_json::to_string(&v).unwrap();
        let mut legacy = format!(
            "{STAGE_MAGIC} routes {:016x} {}\n",
            fnv1a64(json.as_bytes()),
            json.len()
        )
        .into_bytes();
        legacy.extend_from_slice(json.as_bytes());
        assert_eq!(
            inspect_envelope(&legacy),
            EnvelopeStatus::Valid {
                stage: "routes".into(),
                version: 0,
            }
        );
    }

    #[test]
    fn save_stage_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("gnnmls_stage_durable_test");
        std::fs::remove_dir_all(&dir).ok();
        save_stage(&dir, "labels", &vec![1u32]).unwrap();
        assert!(stage_path(&dir, "labels").exists());
        assert!(!dir.join("labels.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_checkpoint_envelope_detects_corruption() {
        let model = GnnMls::new(ModelConfig::default());
        let dir = std::env::temp_dir().join("gnnmls_model_env_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save_json(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            GnnMls::load_json(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Table II hand-crafted features, folded per-net into the net's source
//! node (the hypergraph → node-centric conversion of Section III-B).
//!
//! Per path node (= one net + its driver cell):
//!
//! | # | feature | paper unit |
//! |---|---|---|
//! | 0 | cell location x | µm |
//! | 1 | cell location y | µm |
//! | 2 | cell delay | ps |
//! | 3 | pin capacitance (output load) | fF |
//! | 4 | early-global-routing wirelength (HPWL) | µm |
//! | 5 | estimated wire capacitance | fF |
//! | 6 | estimated wire resistance | kΩ |
//! | 7 | net fanout | — |
//! | 8 | home tier (0 = logic, 0.5 = memory, 1 = 3D) | — |
//!
//! Features 0–6 are the paper's; 7–8 disambiguate the synthetic designs'
//! high-fanout control nets and per-die stacks. Everything is computable
//! *before* detailed routing (HPWL-based estimates), which is the point:
//! the model decides MLS at the routing stage.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{NetId, Netlist, Tier};
use gnnmls_nn::Tensor;
use gnnmls_phys::{net_hpwl_um, Placement};

/// Width of the per-node feature vector.
pub const FEATURE_DIM: usize = 9;

/// Raw (unnormalized) features of one net/source-node.
pub fn node_features(
    netlist: &Netlist,
    placement: &Placement,
    tech: &TechConfig,
    net: NetId,
) -> [f32; FEATURE_DIM] {
    let driver = netlist.driver_cell(net);
    let loc = placement.loc(driver);
    let tpl = netlist.template(driver);
    let hpwl = net_hpwl_um(netlist, placement, net);
    let home = netlist.net_tier(net);
    // Mid-stack RC of the home die (or the average for 3D nets) as the
    // early wire estimate.
    let stack_rc = |tier: Tier| {
        let s = tech.stack(tier);
        let mid = s.layer(s.len().div_ceil(2) as u8);
        (mid.r_kohm_per_um, mid.c_ff_per_um)
    };
    let (r_um, c_um) = match home {
        Some(t) => stack_rc(t),
        None => {
            let (rl, cl) = stack_rc(Tier::Logic);
            let (rm, cm) = stack_rc(Tier::Memory);
            ((rl + rm) / 2.0, (cl + cm) / 2.0)
        }
    };
    [
        loc.x as f32,
        loc.y as f32,
        tpl.delay_ps as f32,
        netlist.pin_load_ff(net) as f32,
        hpwl as f32,
        (hpwl * c_um) as f32,
        (hpwl * r_um) as f32,
        netlist.sinks(net).len() as f32,
        match home {
            Some(Tier::Logic) => 0.0,
            Some(Tier::Memory) => 0.5,
            None => 1.0,
        },
    ]
}

/// Z-score normalizer fit on a training set and frozen into the model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureScaler {
    mean: [f32; FEATURE_DIM],
    std: [f32; FEATURE_DIM],
}

impl FeatureScaler {
    /// Fits mean/std over a set of feature rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit(rows: &[[f32; FEATURE_DIM]]) -> Self {
        assert!(!rows.is_empty(), "scaler needs at least one row");
        let n = rows.len() as f32;
        let mut mean = [0.0f32; FEATURE_DIM];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = [0.0f32; FEATURE_DIM];
        for r in rows {
            for ((s, v), m) in std.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        Self { mean, std }
    }

    /// Normalizes one row.
    pub fn apply(&self, row: &[f32; FEATURE_DIM]) -> [f32; FEATURE_DIM] {
        let mut out = [0.0f32; FEATURE_DIM];
        for i in 0..FEATURE_DIM {
            out[i] = (row[i] - self.mean[i]) / self.std[i];
        }
        out
    }

    /// Normalizes a path's feature rows into an `n × FEATURE_DIM` tensor.
    pub fn apply_matrix(&self, rows: &[[f32; FEATURE_DIM]]) -> Tensor {
        let data: Vec<f32> = rows
            .iter()
            .flat_map(|r| self.apply(r).into_iter())
            .collect();
        Tensor::from_flat(rows.len(), FEATURE_DIM, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_phys::{place, PlaceConfig};

    fn setup() -> (gnnmls_netlist::Netlist, Placement, TechConfig) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        (d.netlist, p, tech)
    }

    #[test]
    fn features_are_finite_and_dimensioned() {
        let (netlist, placement, tech) = setup();
        for net in netlist.net_ids().take(200) {
            let f = node_features(&netlist, &placement, &tech, net);
            assert_eq!(f.len(), FEATURE_DIM);
            for (i, v) in f.iter().enumerate() {
                assert!(v.is_finite(), "feature {i} of net {net}");
            }
            assert!(f[7] >= 1.0, "fanout at least 1");
            assert!([0.0, 0.5, 1.0].contains(&f[8]));
        }
    }

    #[test]
    fn wire_estimates_scale_with_hpwl() {
        let (netlist, placement, tech) = setup();
        let mut nets: Vec<_> = netlist.net_ids().collect();
        nets.sort_by(|&a, &b| {
            net_hpwl_um(&netlist, &placement, a).total_cmp(&net_hpwl_um(&netlist, &placement, b))
        });
        let short = node_features(&netlist, &placement, &tech, nets[0]);
        let long = node_features(&netlist, &placement, &tech, *nets.last().unwrap());
        assert!(long[4] > short[4]);
        assert!(long[5] > short[5], "cap estimate follows wirelength");
        assert!(long[6] > short[6], "res estimate follows wirelength");
    }

    #[test]
    fn scaler_standardizes() {
        let (netlist, placement, tech) = setup();
        let rows: Vec<[f32; FEATURE_DIM]> = netlist
            .net_ids()
            .take(500)
            .map(|n| node_features(&netlist, &placement, &tech, n))
            .collect();
        let scaler = FeatureScaler::fit(&rows);
        // Normalized training set has ~zero mean, ~unit variance.
        let normed: Vec<[f32; FEATURE_DIM]> = rows.iter().map(|r| scaler.apply(r)).collect();
        for i in 0..FEATURE_DIM {
            let m: f32 = normed.iter().map(|r| r[i]).sum::<f32>() / normed.len() as f32;
            assert!(m.abs() < 1e-3, "feature {i} mean {m}");
        }
        let t = scaler.apply_matrix(&rows[..4]);
        assert_eq!(t.shape(), (4, FEATURE_DIM));
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_fit_panics() {
        let _ = FeatureScaler::fit(&[]);
    }
}

//! The GNN-MLS design flow (Figure 4), end to end:
//!
//! place → (heterogeneous: level-shifter insertion) → baseline route +
//! STA → path extraction → iterative-STA oracle on a budgeted training
//! sample → DGI pretraining + MLP fine-tuning → per-net MLS decisions →
//! targeted routing → STA → (optional) MLS DFT ECO + re-route + coverage
//! → power / PDN sizing / IR-drop.
//!
//! The same entry point runs the two baselines: `No MLS` (sequential-2D)
//! and `SOTA` (region-level sharing), which is how every table of the
//! paper is produced.

use std::collections::HashSet;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use gnnmls_dft::{analyze_coverage, insert_mls_dft, DftMode, ScanChain};
use gnnmls_netlist::generators::GeneratedDesign;
use gnnmls_netlist::graph::GraphError;
use gnnmls_netlist::{NetId, Netlist, NetlistError, Tier};
use gnnmls_pdn::ir::size_for_budget;
use gnnmls_pdn::{insert_level_shifters, PowerConfig, PowerReport};
use gnnmls_phys::{
    insert_repeaters, place, Floorplan, PlaceConfig, PlaceError, Placement, RepeaterConfig,
};
use gnnmls_route::{
    route_design, MlsPolicy, RouteConfig, RouteDb, RouteError, Router, RoutingGrid,
};
use gnnmls_sta::{analyze, StaConfig, StaError};

use crate::checkpoint::{load_stage, save_stage, CheckpointError, ModelCheckpoint};
use crate::model::{GnnMls, ModelConfig, ModelError};
use crate::oracle::{label_paths, OracleConfig};
use crate::paths::extract_path_samples_par;
use crate::report::{DegradationSummary, FlowReport, PdnSummary, TrainSummary};

/// Which MLS strategy the flow applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowPolicy {
    /// Sequential-2D baseline: no sharing.
    NoMls,
    /// Region-level sharing (ref. \[9\]).
    Sota,
    /// The paper's contribution: learned per-net decisions.
    GnnMls,
}

impl FlowPolicy {
    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            FlowPolicy::NoMls => "No MLS",
            FlowPolicy::Sota => "SOTA",
            FlowPolicy::GnnMls => "GNN-MLS",
        }
    }
}

/// Flow configuration.
///
/// Construct through [`FlowConfig::new`] / [`FlowConfig::fast_test`] /
/// [`FlowConfig::builder`]; the struct is `#[non_exhaustive]` so fields
/// can grow without breaking downstream crates. To derive a modified
/// copy, mutate the public fields or go through
/// [`FlowConfig::to_builder`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FlowConfig {
    /// Target clock frequency, MHz.
    pub target_freq_mhz: f64,
    /// Placement knobs.
    pub place: PlaceConfig,
    /// Routing knobs.
    pub route: RouteConfig,
    /// Model hyperparameters.
    pub model: ModelConfig,
    /// Oracle labeling threshold.
    pub oracle: OracleConfig,
    /// Paths labeled for fine-tuning (the paper uses 500 per design).
    pub train_paths: usize,
    /// Extra labeled paths held out for evaluation metrics.
    pub eval_paths: usize,
    /// Paths used for DGI pretraining and decision inference.
    pub inference_paths: usize,
    /// MLS DFT strategy to insert post-route (`None` = skip DFT).
    pub dft: Option<DftMode>,
    /// PDN stripe pitch, µm.
    pub pdn_pitch_um: f64,
    /// IR-drop budget as % of the lowest VDD (the paper uses 10 %).
    pub ir_budget_pct: f64,
    /// Switching activity for the power model.
    pub activity: f64,
    /// Insert level shifters on 3D nets of heterogeneous stacks.
    pub level_shifters: bool,
    /// Repeater insertion (physical synthesis) parameters.
    pub repeaters: RepeaterConfig,
    /// Use a pre-trained model instead of running the oracle + training
    /// (train once on a design family, reuse everywhere; see
    /// [`crate::checkpoint`]).
    pub pretrained: Option<ModelCheckpoint>,
    /// Save the trained model as a JSON checkpoint after training.
    pub save_model: Option<std::path::PathBuf>,
    /// Run the PDN/IR analysis (skippable for timing-only sweeps).
    pub analyze_pdn: bool,
    /// Stage-checkpoint directory: completed stages (`decisions`,
    /// `routes`, `report`, suffixed with the policy) are saved here as
    /// checksummed envelopes and reused on the next run, so an
    /// interrupted flow resumes bit-identically (compare with
    /// [`FlowReport::comparable`]).
    pub resume: Option<PathBuf>,
    /// Worker threads for the flow's parallel phases — the what-if
    /// oracle, speculative rip-up rerouting, path extraction, and model
    /// inference. `0` = all available cores, `1` = fully serial; results
    /// are bit-identical for every value. This flow-level knob is copied
    /// into [`RouteConfig::threads`] wherever the flow builds a router
    /// (overriding whatever `route.threads` holds).
    pub threads: usize,
}

impl FlowConfig {
    /// Paper-like defaults at a target frequency.
    pub fn new(target_freq_mhz: f64) -> Self {
        Self {
            target_freq_mhz,
            place: PlaceConfig::default(),
            route: RouteConfig::default(),
            model: ModelConfig::default(),
            oracle: OracleConfig::default(),
            train_paths: 500,
            eval_paths: 100,
            inference_paths: 3000,
            dft: None,
            pdn_pitch_um: 7.0,
            ir_budget_pct: 10.0,
            activity: 0.15,
            level_shifters: true,
            repeaters: RepeaterConfig::default(),
            pretrained: None,
            save_model: None,
            analyze_pdn: true,
            resume: None,
            threads: 0,
        }
    }

    /// A down-scaled configuration for fast tests.
    pub fn fast_test(target_freq_mhz: f64) -> Self {
        let mut c = Self::new(target_freq_mhz);
        c.train_paths = 40;
        c.eval_paths = 10;
        c.inference_paths = 150;
        c.model.pretrain_epochs = 2;
        c.model.finetune_epochs = 8;
        c.route.target_gcells = 24;
        c.analyze_pdn = false;
        c
    }

    /// Enables MLS DFT insertion.
    pub fn with_dft(mut self, mode: DftMode) -> Self {
        self.dft = Some(mode);
        self
    }

    /// Sets the worker-thread knob (`0` = all cores, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// A checked builder seeded with the paper-like defaults at
    /// `target_freq_mhz`. Prefer this over mutating public fields when
    /// the values come from user input: [`FlowConfigBuilder::build`]
    /// validates every knob and returns a typed
    /// [`crate::session::ValidationError`] instead of letting a garbage
    /// config reach the middle of the flow.
    pub fn builder(target_freq_mhz: f64) -> FlowConfigBuilder {
        FlowConfigBuilder {
            cfg: Self::new(target_freq_mhz),
        }
    }

    /// Re-opens this config as a builder — the supported way to derive
    /// a modified copy now that the struct is `#[non_exhaustive]`.
    pub fn to_builder(&self) -> FlowConfigBuilder {
        FlowConfigBuilder { cfg: self.clone() }
    }

    /// The routing config with the flow-level thread knob applied (the
    /// config every router the flow — or the zoo corpus builder —
    /// constructs must use).
    pub fn route_cfg(&self) -> RouteConfig {
        self.route.clone().with_threads(self.threads)
    }
}

macro_rules! flow_builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

/// Checked builder for [`FlowConfig`] (see [`FlowConfig::builder`]).
#[derive(Clone, Debug)]
pub struct FlowConfigBuilder {
    cfg: FlowConfig,
}

impl FlowConfigBuilder {
    flow_builder_setters! {
        /// Target clock frequency, MHz.
        target_freq_mhz: f64,
        /// Placement knobs.
        place: PlaceConfig,
        /// Routing knobs (validated again at [`FlowConfigBuilder::build`]).
        route: RouteConfig,
        /// Model hyperparameters.
        model: ModelConfig,
        /// Oracle labeling threshold.
        oracle: OracleConfig,
        /// Paths labeled for fine-tuning.
        train_paths: usize,
        /// Extra labeled paths held out for evaluation metrics.
        eval_paths: usize,
        /// Paths used for DGI pretraining and decision inference.
        inference_paths: usize,
        /// MLS DFT strategy to insert post-route (`None` = skip DFT).
        dft: Option<DftMode>,
        /// PDN stripe pitch, µm.
        pdn_pitch_um: f64,
        /// IR-drop budget as % of the lowest VDD.
        ir_budget_pct: f64,
        /// Switching activity for the power model.
        activity: f64,
        /// Insert level shifters on 3D nets of heterogeneous stacks.
        level_shifters: bool,
        /// Repeater insertion parameters.
        repeaters: RepeaterConfig,
        /// Pre-trained model checkpoint (skips oracle + training).
        pretrained: Option<ModelCheckpoint>,
        /// Save the trained model as a JSON checkpoint after training.
        save_model: Option<std::path::PathBuf>,
        /// Run the PDN/IR analysis.
        analyze_pdn: bool,
        /// Stage-checkpoint directory for resumable flows.
        resume: Option<PathBuf>,
        /// Worker threads (`0` = all cores, `1` = serial).
        threads: usize,
    }

    /// Validates every knob and returns the config.
    ///
    /// # Errors
    ///
    /// Returns [`crate::session::ValidationError::BadFrequency`] for an
    /// unusable target frequency and
    /// [`crate::session::ValidationError::BadConfig`] for any other
    /// out-of-domain field (including the nested [`RouteConfig`], which
    /// is re-checked through its own builder).
    pub fn build(self) -> Result<FlowConfig, crate::session::ValidationError> {
        use crate::session::ValidationError;
        let c = self.cfg;
        if !c.target_freq_mhz.is_finite()
            || c.target_freq_mhz <= 0.0
            || c.target_freq_mhz > crate::session::MAX_FREQ_MHZ
        {
            return Err(ValidationError::BadFrequency(c.target_freq_mhz));
        }
        let bad = |field: &'static str, got: String, want: &'static str| {
            Err(ValidationError::BadConfig { field, got, want })
        };
        if c.inference_paths == 0 {
            return bad("inference_paths", "0".to_string(), ">= 1");
        }
        if !(c.pdn_pitch_um.is_finite() && c.pdn_pitch_um > 0.0) {
            return bad("pdn_pitch_um", c.pdn_pitch_um.to_string(), "finite > 0");
        }
        if !(c.ir_budget_pct.is_finite() && c.ir_budget_pct > 0.0) {
            return bad("ir_budget_pct", c.ir_budget_pct.to_string(), "finite > 0");
        }
        if !(c.activity.is_finite() && (0.0..=1.0).contains(&c.activity)) {
            return bad("activity", c.activity.to_string(), "finite in [0, 1]");
        }
        // The nested routing config has its own checked builder; a flow
        // config is only as valid as the route config it carries.
        if let Err(e) = c.route.to_builder().build() {
            return Err(ValidationError::BadConfig {
                field: e.field,
                got: e.got,
                want: e.want,
            });
        }
        Ok(c)
    }
}

/// Errors surfaced by the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Placement failed.
    Place(PlaceError),
    /// Routing setup failed.
    Route(RouteError),
    /// Netlist ECO failed.
    Netlist(NetlistError),
    /// The design has a combinational loop.
    Graph(GraphError),
    /// A pre-trained checkpoint could not be restored.
    Checkpoint(CheckpointError),
    /// Static timing analysis refused (e.g. incomplete route coverage).
    Sta(StaError),
    /// The model refused (untrained, unlabeled, or diverged past its
    /// retry budget).
    Model(ModelError),
    /// A checkpointed path or sample disagrees with the design's
    /// netlist or routes; refusing beats a silently wrong table.
    InconsistentPath,
    /// A worker panic that reproduced on the serial retry.
    Par(gnnmls_par::ParError),
    /// The invariant auditor found a stage output violating the
    /// contracts downstream stages assume (see [`crate::audit`]).
    AuditFailed {
        /// Which stage's output failed the audit.
        stage: String,
        /// How many invariants were violated (capped at a screenful).
        violations: usize,
        /// The first violation, rendered.
        first: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Place(e) => write!(f, "placement: {e}"),
            FlowError::Route(e) => write!(f, "routing: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist eco: {e}"),
            FlowError::Graph(e) => write!(f, "timing graph: {e}"),
            FlowError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            FlowError::Sta(e) => write!(f, "sta: {e}"),
            FlowError::Model(e) => write!(f, "model: {e}"),
            FlowError::InconsistentPath => {
                write!(f, "path sample disagrees with the design's routes")
            }
            FlowError::Par(e) => write!(f, "parallel fan-out: {e}"),
            FlowError::AuditFailed {
                stage,
                violations,
                first,
            } => write!(
                f,
                "audit failed after stage `{stage}`: {violations} violation(s), first: {first}"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<PlaceError> for FlowError {
    fn from(e: PlaceError) -> Self {
        FlowError::Place(e)
    }
}
impl From<RouteError> for FlowError {
    fn from(e: RouteError) -> Self {
        FlowError::Route(e)
    }
}
impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}
impl From<GraphError> for FlowError {
    fn from(e: GraphError) -> Self {
        FlowError::Graph(e)
    }
}
impl From<CheckpointError> for FlowError {
    fn from(e: CheckpointError) -> Self {
        FlowError::Checkpoint(e)
    }
}
impl From<StaError> for FlowError {
    fn from(e: StaError) -> Self {
        FlowError::Sta(e)
    }
}
impl From<ModelError> for FlowError {
    fn from(e: ModelError) -> Self {
        FlowError::Model(e)
    }
}
impl From<gnnmls_par::ParError> for FlowError {
    fn from(e: gnnmls_par::ParError) -> Self {
        FlowError::Par(e)
    }
}

/// Prepares a design for routing exactly as [`run_flow`] does: clone,
/// place, insert level shifters (heterogeneous stacks), insert repeaters.
/// Exposed for experiments that work below the flow level (Table I's
/// single-net study, Figure 9's PDN maps).
///
/// # Errors
///
/// Returns [`FlowError`] if placement or an ECO fails.
pub fn prepare(
    design: &GeneratedDesign,
    cfg: &FlowConfig,
) -> Result<(Netlist, Placement), FlowError> {
    let mut netlist = design.netlist.clone();
    let mut placement = place(&netlist, &cfg.place)?;
    if cfg.level_shifters {
        insert_level_shifters(&mut netlist, &mut placement, &design.tech)?;
    }
    insert_repeaters(&mut netlist, &mut placement, &design.tech, &cfg.repeaters)?;
    Ok((netlist, placement))
}

/// The resumable result of the GNN-MLS learning stage (stage name
/// `decisions-<policy>` in the resume directory).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct DecisionsCheckpoint {
    /// Nets selected for MLS (empty under the heuristic fallback).
    pub(crate) selected: Vec<NetId>,
    /// Training diagnostics (`None` under the heuristic fallback).
    pub(crate) train: Option<TrainSummary>,
    /// Learning wall time, s.
    pub(crate) runtime_s: Option<f64>,
    /// The model or its checkpoint was unusable and the flow degraded
    /// to the heuristic (SOTA) policy.
    pub(crate) model_fallback: bool,
    /// Training epochs retried after a divergence rollback.
    pub(crate) training_retries: u32,
}

/// Loads `stage` from the resume directory if configured and present,
/// otherwise computes it and (if configured) saves it.
fn resume_or<T, F>(cfg: &FlowConfig, stage: &str, compute: F) -> Result<T, FlowError>
where
    T: Serialize + Deserialize,
    F: FnOnce() -> Result<T, FlowError>,
{
    if let Some(dir) = &cfg.resume {
        if let Some(v) = load_stage(dir, stage)? {
            gnnmls_obs::event(
                "checkpoint",
                &[
                    ("stage", gnnmls_obs::FieldValue::from(stage.to_string())),
                    ("action", gnnmls_obs::FieldValue::Str("resume".to_string())),
                ],
            );
            return Ok(v);
        }
    }
    let v = compute()?;
    if let Some(dir) = &cfg.resume {
        save_stage(dir, stage, &v)?;
        gnnmls_obs::event(
            "checkpoint",
            &[
                ("stage", gnnmls_obs::FieldValue::from(stage.to_string())),
                ("action", gnnmls_obs::FieldValue::Str("save".to_string())),
            ],
        );
    }
    Ok(v)
}

/// Runs the full flow on a generated design under one policy.
///
/// With [`FlowConfig::resume`] set, completed stages are checkpointed
/// to disk and reused: a run interrupted after any stage resumes from
/// the last completed one and produces a bit-identical
/// [`FlowReport::comparable`]. A corrupted or truncated stage file
/// surfaces as [`FlowError::Checkpoint`], never a panic.
///
/// # Errors
///
/// Returns [`FlowError`] if any stage fails (all stages succeed for
/// well-formed generated designs).
pub fn run_flow(
    design: &GeneratedDesign,
    cfg: &FlowConfig,
    policy: FlowPolicy,
) -> Result<FlowReport, FlowError> {
    let slug = match policy {
        FlowPolicy::NoMls => "nomls",
        FlowPolicy::Sota => "sota",
        FlowPolicy::GnnMls => "gnnmls",
    };
    let report_stage = format!("report-{slug}");
    if let Some(dir) = &cfg.resume {
        // Fsck the resume directory before trusting anything in it: a
        // crash mid-checkpoint leaves orphan tmps or torn envelopes,
        // and the right response is to quarantine them and recompute
        // the stage — degrade to last-good state, not fail the run.
        let scrub = crate::store::scrub_dir(dir).map_err(CheckpointError::from)?;
        if !scrub.clean() {
            gnnmls_obs::event(
                "checkpoint",
                &[
                    (
                        "action",
                        gnnmls_obs::FieldValue::Str("scrub-repair".to_string()),
                    ),
                    ("repaired", gnnmls_obs::FieldValue::from(scrub.repaired)),
                    (
                        "unrepairable",
                        gnnmls_obs::FieldValue::from(scrub.unrepairable),
                    ),
                ],
            );
        }
        if let Some(report) = load_stage::<FlowReport>(dir, &report_stage)? {
            // A resumed report skips every recomputation below, so prove
            // the envelope describes *this* run before trusting it.
            crate::audit::check_report(&report, design.netlist.name(), policy)?;
            return Ok(report);
        }
    }
    let panics0 = gnnmls_par::recovered_panics();
    let mut degradation = DegradationSummary::default();

    gnnmls_obs::counter_add("gnnmls_flow_runs_total", &[("policy", policy.name())], 1);
    let mut flow_span = gnnmls_obs::span("flow");
    flow_span.field_str("design", design.netlist.name());
    flow_span.field_str("policy", policy.name());

    let tech = &design.tech;
    let sta_cfg = StaConfig::from_freq_mhz(cfg.target_freq_mhz);
    let mut netlist = design.netlist.clone();
    let mut placement = {
        let _s = gnnmls_obs::span("place");
        place(&netlist, &cfg.place)?
    };

    // Level shifters on 3D signals (heterogeneous stacks).
    let ls = {
        let mut s = gnnmls_obs::span("level_shifters");
        let ls = if cfg.level_shifters {
            insert_level_shifters(&mut netlist, &mut placement, tech)?
        } else {
            Default::default()
        };
        s.field_u64("inserted", ls.count as u64);
        ls
    };
    // Physical synthesis: break over-long wires with repeaters (keep in
    // sync with [`prepare`]).
    {
        let _s = gnnmls_obs::span("repeaters");
        insert_repeaters(&mut netlist, &mut placement, tech, &cfg.repeaters)?;
    }

    // Resolve the routing policy; GNN-MLS trains its decisions first
    // (or resumes them from the checkpointed stage).
    let mut runtime_s = None;
    let mut train_summary = None;
    let route_policy: MlsPolicy = match policy {
        FlowPolicy::NoMls => MlsPolicy::Disabled,
        FlowPolicy::Sota => MlsPolicy::sota(),
        FlowPolicy::GnnMls => {
            let mut s = gnnmls_obs::span("decisions");
            let decisions = resume_or(cfg, &format!("decisions-{slug}"), || {
                let t0 = Instant::now();
                let mut d = learn_decisions(&netlist, &placement, tech, cfg, sta_cfg)?;
                d.runtime_s = Some(t0.elapsed().as_secs_f64());
                Ok(d)
            })?;
            runtime_s = decisions.runtime_s;
            train_summary = decisions.train;
            degradation.model_fallback = decisions.model_fallback;
            degradation.training_retries = decisions.training_retries;
            s.field_u64("selected", decisions.selected.len() as u64);
            s.field_bool("model_fallback", decisions.model_fallback);
            s.field_u64("training_retries", u64::from(decisions.training_retries));
            if decisions.model_fallback {
                gnnmls_obs::warn("gnn-mls", "using heuristic MLS policy (model fallback)");
                MlsPolicy::sota()
            } else {
                MlsPolicy::per_net_from(&netlist, decisions.selected)
            }
        }
    };

    // Targeted routing + STA. The grid is a deterministic function of
    // the placement and config, so a resumed route DB rebuilds it
    // without re-routing.
    let (mut routes, grid) = {
        let mut s = gnnmls_obs::span("route");
        let routes: RouteDb = resume_or(cfg, &format!("routes-{slug}"), || {
            let (db, _) = route_design(
                &netlist,
                &placement,
                tech,
                route_policy.clone(),
                cfg.route_cfg(),
            )?;
            Ok(db)
        })?;
        let grid = RoutingGrid::build(
            placement.floorplan(),
            tech,
            cfg.route_cfg().target_gcells,
            cfg.route_cfg().pdn_top_util_logic,
            cfg.route_cfg().pdn_top_util_memory,
        );
        s.field_u64("mls_nets", routes.summary.mls_net_count as u64);
        s.field_u64(
            "pattern_fallback_sinks",
            routes.summary.pattern_fallback_sinks as u64,
        );
        (routes, grid)
    };
    // Post-stage audit: whether the DB was just routed or resumed from
    // a checkpoint, prove its invariants before STA consumes it.
    {
        let _s = gnnmls_obs::span("audit_routes");
        crate::audit::check_routes(
            &netlist,
            &grid,
            &route_policy,
            &routes,
            gnnmls_route::AuditMode::Full,
            &format!("routes-{slug}"),
        )?;
    }
    let mut timing = {
        let mut s = gnnmls_obs::span("sta");
        let timing = analyze(&netlist, &routes, sta_cfg)?;
        s.field_u64("endpoints", timing.endpoint_count() as u64);
        s.field_u64("violating", timing.violating_endpoints() as u64);
        timing
    };

    // Optional MLS DFT ECO: logical coverage first (pre-ECO routes define
    // the opens), then the physical insertion + re-route + re-STA.
    let mut coverage = None;
    let mut faults = None;
    let mut dft_cells = 0;
    if let Some(mode) = cfg.dft {
        let mut dft_span = gnnmls_obs::span("dft_eco");
        let rec = insert_mls_dft(&mut netlist, &mut placement, &routes, &grid, tech, mode)?;
        dft_span.field_u64("added_cells", rec.added_cells.len() as u64);
        dft_cells = rec.added_cells.len();
        if !rec.added_cells.is_empty() {
            // Preserve MLS permission for the split nets and their
            // children, then re-route the modified design.
            let mut allowed: HashSet<NetId> = match &route_policy {
                MlsPolicy::PerNet(flags) => flags
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| NetId::new(i as u32))
                    .collect(),
                _ => routes
                    .nets
                    .iter()
                    .filter(|r| r.is_mls)
                    .map(|r| r.net)
                    .collect(),
            };
            for &(parent, child) in &rec.mls_nets {
                allowed.insert(parent);
                allowed.insert(child);
            }
            let post_policy = MlsPolicy::per_net_from(&netlist, allowed.iter().copied());
            let (r2, post_grid) = route_design(
                &netlist,
                &placement,
                tech,
                post_policy.clone(),
                cfg.route_cfg(),
            )?;
            crate::audit::check_routes(
                &netlist,
                &post_grid,
                &post_policy,
                &r2,
                gnnmls_route::AuditMode::Full,
                "dft-reroute",
            )?;
            routes = r2;
            timing = analyze(&netlist, &routes, sta_cfg)?;
        }
        // Coverage on the post-ECO design: the inserted DFT cells add
        // their own faults (Table III counts them) and the mode's test
        // structures bridge the remaining opens.
        let cov = analyze_coverage(&netlist, &routes, mode);
        coverage = Some(cov.coverage_pct());
        faults = Some((cov.total_faults, cov.detected_faults));
        // Scan stitching (full-scan model; chain length sanity only).
        let _ = ScanChain::build(&netlist, &placement, 5.0);
    }

    // Power.
    let power = {
        let _s = gnnmls_obs::span("power");
        PowerReport::compute(
            &netlist,
            &routes,
            tech,
            &PowerConfig {
                activity: cfg.activity,
                freq_mhz: cfg.target_freq_mhz,
            },
        )
    };

    // PDN + IR.
    let (ir_drop_pct, pdn) = if cfg.analyze_pdn {
        let mut s = gnnmls_obs::span("pdn");
        let (spec, worst, converged) = pdn_for_design(&netlist, &placement, tech, &power, cfg);
        s.field_bool("converged", converged);
        if !converged {
            gnnmls_obs::warn(
                "gnn-mls",
                "IR solve hit its iteration cap without converging; \
                 reported drop may be optimistic",
            );
            degradation.ir_nonconverged = true;
        }
        (Some(worst), Some(spec))
    } else {
        (None, None)
    };

    degradation.pattern_fallback_nets = routes.summary.pattern_fallback_nets;
    degradation.pattern_fallback_sinks = routes.summary.pattern_fallback_sinks;
    degradation.isolated_route_failures = routes.summary.isolated_failures;
    degradation.recovered_worker_panics = gnnmls_par::recovered_panics() - panics0;

    // The flow span carries every graceful-degradation flag, so a trace
    // alone answers "did this run cut any corners?".
    flow_span.field_bool("model_fallback", degradation.model_fallback);
    flow_span.field_bool("ir_nonconverged", degradation.ir_nonconverged);
    flow_span.field_u64(
        "pattern_fallback_nets",
        degradation.pattern_fallback_nets as u64,
    );
    flow_span.field_u64(
        "isolated_route_failures",
        degradation.isolated_route_failures as u64,
    );
    flow_span.field_u64(
        "recovered_worker_panics",
        degradation.recovered_worker_panics as u64,
    );

    let fp: &Floorplan = placement.floorplan();
    let report = FlowReport {
        design: netlist.name().to_string(),
        policy: policy.name().to_string(),
        tech: tech.name.clone(),
        target_freq_mhz: cfg.target_freq_mhz,
        fp_mm2: fp.area_mm2(),
        wirelength_m: routes.summary.total_wirelength_m,
        f2f_pads: routes.summary.f2f_pads,
        wns_ps: timing.wns_ps(),
        tns_ns: timing.tns_ns(),
        violating_paths: timing.violating_endpoints(),
        endpoints: timing.endpoint_count(),
        mls_nets: routes.summary.mls_net_count,
        power_mw: power.total_mw + ls.power_mw,
        eff_freq_mhz: timing.eff_freq_mhz(),
        runtime_s,
        ir_drop_pct,
        pdn,
        ls_power_mw: if ls.count > 0 {
            Some(ls.power_mw)
        } else {
            None
        },
        level_shifters: ls.count,
        test_coverage_pct: coverage,
        faults,
        dft_cells,
        train: train_summary,
        degradation,
    };
    if let Some(dir) = &cfg.resume {
        save_stage(dir, &report_stage, &report)?;
        gnnmls_obs::event(
            "checkpoint",
            &[
                ("stage", gnnmls_obs::FieldValue::from(report_stage)),
                ("action", gnnmls_obs::FieldValue::Str("save".to_string())),
            ],
        );
    }
    Ok(report)
}

/// The learning phase: baseline route/STA, oracle labels, DGI + MLP
/// training, per-net decisions.
///
/// An unusable model — a pre-trained checkpoint that does not restore,
/// or training that diverges past its retry budget — degrades to the
/// heuristic policy (`model_fallback` in the returned checkpoint)
/// instead of failing the flow.
fn learn_decisions(
    netlist: &Netlist,
    placement: &Placement,
    tech: &gnnmls_netlist::TechConfig,
    cfg: &FlowConfig,
    sta_cfg: StaConfig,
) -> Result<DecisionsCheckpoint, FlowError> {
    learn_decisions_with_model(netlist, placement, tech, cfg, sta_cfg).map(|(d, _)| d)
}

/// [`learn_decisions`] keeping the trained (or restored) model, so a
/// warm serve session can answer inference requests without retraining.
/// The model is `None` under the heuristic fallback.
pub(crate) fn learn_decisions_with_model(
    netlist: &Netlist,
    placement: &Placement,
    tech: &gnnmls_netlist::TechConfig,
    cfg: &FlowConfig,
    sta_cfg: StaConfig,
) -> Result<(DecisionsCheckpoint, Option<GnnMls>), FlowError> {
    let fallback = |retries: u32| DecisionsCheckpoint {
        selected: Vec::new(),
        train: None,
        runtime_s: None,
        model_fallback: true,
        training_retries: retries,
    };
    let mut router = Router::new(
        netlist,
        placement,
        tech,
        MlsPolicy::Disabled,
        cfg.route_cfg(),
    )?;
    router.route_all()?;
    let routes = router.db()?;
    let baseline = analyze(netlist, &routes, sta_cfg)?;

    let total = baseline.endpoint_count();
    let infer_k = cfg.inference_paths.min(total);
    let mut infer =
        extract_path_samples_par(netlist, placement, tech, &baseline, infer_k, cfg.threads);

    // A pre-trained checkpoint skips the oracle and training entirely;
    // an unusable one falls back to the heuristic policy.
    if let Some(cp) = &cfg.pretrained {
        let restored = GnnMls::from_checkpoint(cp.clone())
            .map_err(|e| e.to_string())
            .and_then(|mut model| {
                model.set_threads(cfg.threads);
                let selected = model.decide(&infer).map_err(|e| e.to_string())?;
                Ok((selected, model))
            });
        return Ok(match restored {
            Ok((selected, model)) => (
                DecisionsCheckpoint {
                    selected,
                    train: Some(TrainSummary::default()),
                    runtime_s: None,
                    model_fallback: false,
                    training_retries: 0,
                },
                Some(model),
            ),
            Err(e) => {
                gnnmls_obs::warn(
                    "gnn-mls",
                    &format!(
                        "pretrained model unusable ({e}); \
                         falling back to the heuristic MLS policy"
                    ),
                );
                (fallback(0), None)
            }
        });
    }

    let train_k = cfg.train_paths.min(total);
    let eval_k = cfg.eval_paths.min(total.saturating_sub(train_k));

    // Training set = the worst `train_k` paths; evaluation set = the next
    // `eval_k`.
    let mut labeled: Vec<_> = infer.iter().take(train_k + eval_k).cloned().collect();
    let stats = label_paths(&mut labeled, netlist, &router, &routes, &cfg.oracle)?;
    let (train_set, eval_set) = labeled.split_at(train_k);

    let mut model = GnnMls::new(cfg.model.clone());
    model.set_threads(cfg.threads);
    let trained = model.pretrain(&infer).and_then(|pretrain_loss| {
        let train_metrics = model.finetune(train_set)?;
        Ok((pretrain_loss, train_metrics))
    });
    let (pretrain_loss, train_metrics) = match trained {
        Ok(t) => t,
        // Divergence past the retry budget is recoverable: route with
        // the heuristic policy instead. Anything else is a caller bug.
        Err(e @ ModelError::Diverged { .. }) => {
            gnnmls_obs::warn(
                "gnn-mls",
                &format!(
                    "training failed ({e}); \
                     falling back to the heuristic MLS policy"
                ),
            );
            return Ok((fallback(model.divergence_retries()), None));
        }
        Err(e) => return Err(FlowError::Model(e)),
    };
    let eval_metrics = if eval_set.is_empty() {
        Default::default()
    } else {
        model.evaluate(eval_set)?
    };
    if let Some(path) = &cfg.save_model {
        model.save_json(path)?;
    }

    // Decide over the full inference set; for the paths the oracle
    // already labeled, use the exact labels (the model's job is to extend
    // them to unlabeled paths, not to re-predict known answers).
    infer.truncate(infer_k);
    let mut selected: HashSet<NetId> = model.decide(&infer)?.into_iter().collect();
    for s in &labeled {
        if s.path.slack_ps >= 0.0 {
            continue;
        }
        if let Some(l) = &s.labels {
            for (i, &net) in s.nets.iter().enumerate() {
                if l[i] {
                    selected.insert(net);
                }
            }
        }
    }
    let mut selected: Vec<NetId> = selected.into_iter().collect();
    selected.sort();
    let retries = model.divergence_retries();
    Ok((
        DecisionsCheckpoint {
            selected,
            train: Some(TrainSummary {
                oracle: stats,
                pretrain_loss,
                train_metrics,
                eval_metrics,
            }),
            runtime_s: None,
            model_fallback: false,
            training_retries: retries,
        },
        Some(model),
    ))
}

/// Sizes the PDN per tier to the IR budget; returns the memory-die
/// top-metal summary (the paper's `M-T` row), the worst IR % across
/// tiers, and whether every tier's final solve converged.
fn pdn_for_design(
    netlist: &Netlist,
    placement: &Placement,
    tech: &gnnmls_netlist::TechConfig,
    power: &PowerReport,
    cfg: &FlowConfig,
) -> (PdnSummary, f64, bool) {
    let fp = placement.floorplan();
    let vdd_ref = tech.min_vdd();
    let mut worst = 0.0f64;
    let mut converged = true;
    let mut mem_summary = PdnSummary::default();
    for tier in Tier::BOTH {
        let (spec, rep) = size_for_budget(
            fp,
            tech,
            tier,
            netlist,
            placement,
            power,
            vdd_ref,
            cfg.ir_budget_pct,
            cfg.pdn_pitch_um,
        );
        worst = worst.max(rep.pct_of_vdd);
        converged &= rep.converged;
        if tier == Tier::Memory {
            mem_summary = PdnSummary {
                width_um: spec.width_um,
                pitch_um: spec.pitch_um,
                utilization: spec.utilization(),
            };
        }
    }
    (mem_summary, worst, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;

    fn design() -> GeneratedDesign {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap()
    }

    #[test]
    fn no_mls_flow_produces_a_report() {
        let d = design();
        let cfg = FlowConfig::fast_test(2500.0);
        let r = run_flow(&d, &cfg, FlowPolicy::NoMls).unwrap();
        assert_eq!(r.policy, "No MLS");
        assert_eq!(r.mls_nets, 0);
        assert!(r.wirelength_m > 0.0);
        assert!(r.endpoints > 0);
        assert!(r.power_mw > 0.0);
        assert!(r.level_shifters > 0, "hetero stack needs level shifters");
        assert!(r.runtime_s.is_none());
    }

    #[test]
    fn gnn_mls_flow_trains_and_decides() {
        let d = design();
        let cfg = FlowConfig::fast_test(2500.0);
        let r = run_flow(&d, &cfg, FlowPolicy::GnnMls).unwrap();
        assert_eq!(r.policy, "GNN-MLS");
        assert!(r.runtime_s.is_some());
        let t = r.train.expect("training summary present");
        assert!(t.oracle.paths > 0);
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn policy_names_match_paper_headers() {
        assert_eq!(FlowPolicy::NoMls.name(), "No MLS");
        assert_eq!(FlowPolicy::Sota.name(), "SOTA");
        assert_eq!(FlowPolicy::GnnMls.name(), "GNN-MLS");
    }
}

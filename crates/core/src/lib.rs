//! **GNN-MLS** — GNN-assisted Metal Layer Sharing for signal routing in
//! mixed-node 3D ICs (reproduction of Hu et al., DAC 2025).
//!
//! Metal Layer Sharing (MLS) lets a net whose pins all sit on one die of
//! a face-to-face-bonded 3D IC borrow the *other* die's back-end metals,
//! unlocking routing resource that sequential-2D flows leave untouched.
//! Applied indiscriminately (the region-sharing SOTA), MLS helps some
//! nets and hurts others; GNN-MLS instead makes a *per-net* decision
//! with a graph Transformer trained on timing paths:
//!
//! 1. a baseline (no-MLS) route + STA produces critical timing paths;
//! 2. each path becomes a node sequence via the hypergraph conversion —
//!    every net (hyperedge) is folded into its single source node with
//!    the Table II features ([`features`]);
//! 3. a small labeled set is produced by the *iterative-STA oracle*
//!    ([`oracle`]): what-if re-route each path net with MLS forced on,
//!    re-evaluate the path's slack, label the net by its gain — the very
//!    procedure the paper calls prohibitive at scale, run on a budget;
//! 4. the model ([`model`]) pretrains with Deep Graph Infomax on
//!    unlabeled paths, then fine-tunes a 2-layer MLP head on the labels;
//! 5. predicted per-net decisions drive targeted routing
//!    ([`gnnmls_route::MlsPolicy::PerNet`]), followed by MLS DFT
//!    insertion and mixed-node PDN design ([`flow`]).
//!
//! # Quick start
//!
//! ```no_run
//! use gnn_mls::flow::{run_flow, FlowConfig, FlowPolicy};
//! use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
//! use gnnmls_netlist::tech::TechConfig;
//!
//! # fn main() -> Result<(), gnn_mls::flow::FlowError> {
//! let tech = TechConfig::heterogeneous_16_28(6, 6);
//! let design = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
//! let cfg = FlowConfig::new(2500.0);
//! let report = run_flow(&design, &cfg, FlowPolicy::GnnMls)?;
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

// The flow hot path must degrade or return typed errors, never panic;
// tests may still unwrap freely. Diagnostics go through gnnmls-obs
// (structured warn events + counters), never straight to the process
// streams.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stdout,
        clippy::print_stderr
    )
)]

pub mod api;
pub mod audit;
pub mod checkpoint;
pub mod features;
pub mod flow;
pub mod model;
pub mod oracle;
pub mod paths;
pub mod report;
pub mod session;
pub mod store;

pub use api::{Query, QueryAnswer};
pub use audit::{check_report, check_routes};
pub use checkpoint::{CheckpointError, ModelCheckpoint, ModelVersion, ZooModelCheckpoint};
pub use features::{node_features, FeatureScaler, FEATURE_DIM};
pub use flow::{run_flow, FlowConfig, FlowConfigBuilder, FlowError, FlowPolicy};
pub use gnnmls_route::{AuditMode, AuditViolation};
pub use model::{GnnMls, ModelConfig};
pub use oracle::{label_paths, net_mls_impact, NetImpact, OracleConfig};
pub use paths::{extract_path_samples, PathSample};
pub use report::FlowReport;
pub use session::{
    design_family, DesignSession, SessionError, SessionSpec, ValidationError, FAMILIES,
};
pub use store::{
    durable_read, durable_write, scrub_dir, ArtifactClass, DurableFile, RepairAction, ScrubFinding,
    ScrubReport, StorageError, FSCK_SCHEMA_VERSION,
};

//! The GNN-MLS model: graph-Transformer encoder + 2-layer MLP head,
//! pretrained with Deep Graph Infomax, fine-tuned on oracle labels
//! (Algorithm 1 of the paper).
//!
//! Encoder and head keep *separate* parameter stores: DGI pretraining
//! updates only the encoder, fine-tuning updates only the MLP head (the
//! paper passes "DGI-pretrained node embeddings" through the MLP). Both
//! choices are ablation knobs ([`ModelConfig::use_dgi`],
//! [`ModelConfig::finetune_encoder`], [`ModelConfig::encoder`]).

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use gnnmls_netlist::NetId;
use gnnmls_nn::layers::{GcnEncoder, TransformerEncoder};
use gnnmls_nn::loss::{corrupt_features, dgi_loss};
use gnnmls_nn::{Adam, Classification, Mlp, Params, Tape, Tensor, Var};

use crate::features::{FeatureScaler, FEATURE_DIM};
use crate::paths::PathSample;

/// How many times a diverged training stage is retried (from the last
/// good epoch, with the learning rate halved each time) before the model
/// is declared unusable.
const MAX_DIVERGENCE_RETRIES: u32 = 3;

/// Typed model failures; the flow falls back to the heuristic policy on
/// [`ModelError::Diverged`] instead of shipping NaN decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Inference was requested before the feature scaler was fit (train
    /// or restore a checkpoint first).
    NotTrained,
    /// A supervised stage was handed samples without oracle labels.
    MissingLabels,
    /// Training produced non-finite losses or parameters and could not
    /// recover within `MAX_DIVERGENCE_RETRIES` LR-backoff retries.
    Diverged {
        /// Which stage diverged (`"pretrain"` or `"finetune"`).
        stage: &'static str,
        /// Epoch at which the last retry gave up.
        epoch: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotTrained => write!(f, "model is not trained (no feature scaler)"),
            ModelError::MissingLabels => write!(f, "sample lacks oracle labels"),
            ModelError::Diverged { stage, epoch } => {
                write!(
                    f,
                    "{stage} diverged at epoch {epoch} after {MAX_DIVERGENCE_RETRIES} \
                     LR-backoff retries"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Which encoder architecture to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// The paper's graph Transformer (3 layers × 3 heads by default).
    Transformer,
    /// Plain mean-aggregation GNN over the path chain (ablation baseline).
    Gcn,
}

/// Model hyperparameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Embedding width (divisible by `heads`).
    pub d_model: usize,
    /// Attention heads (the paper uses 3).
    pub heads: usize,
    /// Encoder layers (the paper uses 3).
    pub layers: usize,
    /// MLP head hidden width.
    pub head_hidden: usize,
    /// DGI pretraining epochs over the sample set.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs over the labeled set.
    pub finetune_epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Init/corruption seed.
    pub seed: u64,
    /// Keep sinusoidal positional encodings (ablation knob).
    pub use_positional: bool,
    /// Run DGI pretraining at all (ablation knob).
    pub use_dgi: bool,
    /// Also update the encoder during fine-tuning (ablation knob; the
    /// paper freezes it).
    pub finetune_encoder: bool,
    /// Encoder architecture.
    pub encoder: EncoderKind,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            d_model: 24,
            heads: 3,
            layers: 3,
            head_hidden: 16,
            pretrain_epochs: 8,
            finetune_epochs: 30,
            lr: 3e-3,
            seed: 0,
            use_positional: true,
            use_dgi: true,
            finetune_encoder: false,
            encoder: EncoderKind::Transformer,
        }
    }
}

enum Encoder {
    Transformer(TransformerEncoder),
    Gcn(GcnEncoder),
}

/// The trained (or trainable) GNN-MLS model.
pub struct GnnMls {
    cfg: ModelConfig,
    enc_params: Params,
    head_params: Params,
    encoder: Encoder,
    head: Mlp,
    scaler: Option<FeatureScaler>,
    rng: StdRng,
    /// Worker threads for inference fan-out (`0` = all cores). Runtime
    /// state, not a hyperparameter: never checkpointed, never affects
    /// results — per-path prediction is pure, so [`GnnMls::decide`] and
    /// [`GnnMls::evaluate`] are bit-identical for any value. Training
    /// (SGD) stays serial: its updates are order-dependent.
    threads: usize,
    /// Divergence recoveries performed across all training stages
    /// (reported in the flow's degradation summary).
    divergence_retries: u32,
}

impl GnnMls {
    /// A freshly initialized model.
    pub fn new(cfg: ModelConfig) -> Self {
        let mut enc_params = Params::new(cfg.seed);
        let encoder = match cfg.encoder {
            EncoderKind::Transformer => {
                let mut t = TransformerEncoder::new(
                    &mut enc_params,
                    FEATURE_DIM,
                    cfg.d_model,
                    cfg.heads,
                    cfg.layers,
                );
                t.use_positional = cfg.use_positional;
                Encoder::Transformer(t)
            }
            EncoderKind::Gcn => Encoder::Gcn(GcnEncoder::new(
                &mut enc_params,
                FEATURE_DIM,
                cfg.d_model,
                cfg.layers,
            )),
        };
        let mut head_params = Params::new(cfg.seed ^ 0x5EED);
        let head = Mlp::new(&mut head_params, cfg.d_model, cfg.head_hidden, 1);
        Self {
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(17)),
            cfg,
            enc_params,
            head_params,
            encoder,
            head,
            scaler: None,
            threads: 0,
            divergence_retries: 0,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Sets the inference thread count (`0` = all cores, `1` = serial).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Fits the feature scaler (idempotent; called by training).
    pub fn fit_scaler(&mut self, samples: &[PathSample]) {
        if self.scaler.is_some() {
            return;
        }
        let rows: Vec<[f32; FEATURE_DIM]> = samples
            .iter()
            .flat_map(|s| s.features.iter().copied())
            .collect();
        self.scaler = Some(FeatureScaler::fit(&rows));
    }

    fn features_of(&self, sample: &PathSample) -> Result<Tensor, ModelError> {
        Ok(self
            .scaler
            .as_ref()
            .ok_or(ModelError::NotTrained)?
            .apply_matrix(&sample.features))
    }

    /// Divergence recoveries performed so far (degradation reporting).
    pub fn divergence_retries(&self) -> u32 {
        self.divergence_retries
    }

    fn params_finite(params: &Params) -> bool {
        params
            .tensors()
            .iter()
            .all(|t| t.as_slice().iter().all(|v| v.is_finite()))
    }

    /// Replaces one parameter scalar with NaN — the `NanGradient` fault
    /// seam's way of simulating an exploding update.
    fn poison_params(params: &mut Params) {
        let mut snap = params.tensors().to_vec();
        if let Some(t) = snap.first_mut() {
            t.set(0, 0, f32::NAN);
        }
        // Restoring same-shaped tensors cannot fail.
        let _ = params.restore(snap);
    }

    fn encode(&self, tape: &mut Tape, pv: &gnnmls_nn::optim::ParamVars, x: Var, n: usize) -> Var {
        match &self.encoder {
            Encoder::Transformer(t) => t.forward(tape, pv, x),
            Encoder::Gcn(g) => {
                // Path chain adjacency, row-normalized.
                let mut adj = Tensor::zeros(n, n);
                for i in 0..n.saturating_sub(1) {
                    adj.set(i, i + 1, 0.5);
                    adj.set(i + 1, i, 0.5);
                }
                g.forward(tape, pv, x, &adj)
            }
        }
    }

    /// DGI self-supervised pretraining over unlabeled path samples.
    /// Returns the mean loss of the final epoch (no-op returning 0 when
    /// [`ModelConfig::use_dgi`] is off).
    ///
    /// A non-finite epoch (NaN loss or parameters — including the
    /// `gnnmls-faults` `NanGradient` seam) is rolled back to the last
    /// good epoch and retried with the learning rate halved, up to
    /// `MAX_DIVERGENCE_RETRIES` times.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Diverged`] if the retries are exhausted.
    pub fn pretrain(&mut self, samples: &[PathSample]) -> Result<f32, ModelError> {
        self.fit_scaler(samples);
        if !self.cfg.use_dgi || samples.is_empty() {
            return Ok(0.0);
        }
        let mut lr = self.cfg.lr;
        let mut adam = Adam::new(lr);
        let mut retries = 0u32;
        let mut last_epoch_loss = 0.0;
        let mut epoch = 0;
        while epoch < self.cfg.pretrain_epochs {
            let snapshot = self.enc_params.tensors().to_vec();
            let mut sum = 0.0f32;
            for s in samples {
                if s.len() < 2 {
                    continue;
                }
                let x = self.features_of(s)?;
                let xc = corrupt_features(&x, &mut self.rng);
                let mut tape = Tape::new();
                let pv = self.enc_params.bind(&mut tape);
                let xv = tape.leaf(x);
                let cv = tape.leaf(xc);
                let h = self.encode(&mut tape, &pv, xv, s.len());
                let hc = self.encode(&mut tape, &pv, cv, s.len());
                let loss = dgi_loss(&mut tape, h, hc);
                sum += tape.value(loss).get(0, 0);
                let grads = tape.backward(loss);
                let g = pv.collect_grads(&grads, &self.enc_params);
                adam.step(&mut self.enc_params, &g);
            }
            if gnnmls_faults::fire(gnnmls_faults::FaultSite::NanGradient) {
                Self::poison_params(&mut self.enc_params);
                sum = f32::NAN;
            }
            if !sum.is_finite() || !Self::params_finite(&self.enc_params) {
                if retries >= MAX_DIVERGENCE_RETRIES {
                    return Err(ModelError::Diverged {
                        stage: "pretrain",
                        epoch,
                    });
                }
                retries += 1;
                self.divergence_retries += 1;
                lr *= 0.5;
                adam = Adam::new(lr);
                let _ = self.enc_params.restore(snapshot);
                gnnmls_obs::warn(
                    "gnn-mls",
                    &format!(
                        "pretrain epoch {epoch} diverged; retrying from last good epoch \
                         at lr {lr:e}"
                    ),
                );
                continue;
            }
            last_epoch_loss = sum / samples.len().max(1) as f32;
            epoch += 1;
        }
        Ok(last_epoch_loss)
    }

    /// Supervised fine-tuning on labeled samples; returns final-epoch
    /// training metrics.
    ///
    /// Divergent epochs roll back and retry at a halved learning rate,
    /// exactly as in [`GnnMls::pretrain`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingLabels`] if any non-empty sample
    /// lacks labels, and [`ModelError::Diverged`] if the divergence
    /// retries are exhausted.
    pub fn finetune(&mut self, samples: &[PathSample]) -> Result<Classification, ModelError> {
        if samples.iter().any(|s| !s.is_empty() && s.labels.is_none()) {
            return Err(ModelError::MissingLabels);
        }
        self.fit_scaler(samples);
        let mut head_lr = self.cfg.lr;
        let mut enc_lr = self.cfg.lr * 0.3;
        let mut head_adam = Adam::new(head_lr);
        let mut enc_adam = Adam::new(enc_lr);
        let mut retries = 0u32;
        let mut metrics = Classification::default();
        // Positive labels are rare (most nets don't benefit from MLS);
        // oversample the paths that carry positives so the head does not
        // collapse to the majority class.
        let (mut pos_nodes, mut neg_nodes) = (0usize, 0usize);
        for s in samples {
            if let Some(l) = &s.labels {
                pos_nodes += l.iter().filter(|&&b| b).count();
                neg_nodes += l.iter().filter(|&&b| !b).count();
            }
        }
        let repeat = neg_nodes
            .checked_div(pos_nodes)
            .map_or(1, |r| (r / 3).clamp(1, 6));
        let order: Vec<&PathSample> = samples
            .iter()
            .flat_map(|s| {
                let has_pos = s.labels.as_ref().is_some_and(|l| l.iter().any(|&b| b));
                std::iter::repeat_n(s, if has_pos { repeat } else { 1 })
            })
            .collect();
        let mut epoch = 0;
        while epoch < self.cfg.finetune_epochs {
            let head_snap = self.head_params.tensors().to_vec();
            let enc_snap = self.enc_params.tensors().to_vec();
            metrics = Classification::default();
            let mut loss_sum = 0.0f32;
            for &s in &order {
                if s.is_empty() {
                    continue;
                }
                let Some(labels) = s.labels.as_ref() else {
                    return Err(ModelError::MissingLabels);
                };
                let targets: Vec<f32> = labels.iter().map(|&b| f32::from(b)).collect();
                let x = self.features_of(s)?;
                let mut tape = Tape::new();
                let pv_enc = self.enc_params.bind(&mut tape);
                let pv_head = self.head_params.bind(&mut tape);
                let xv = tape.leaf(x);
                let h = self.encode(&mut tape, &pv_enc, xv, s.len());
                let z = self.head.forward(&mut tape, &pv_head, h);
                let loss = tape.bce_with_logits(z, &targets);
                loss_sum += tape.value(loss).get(0, 0);
                if epoch + 1 == self.cfg.finetune_epochs {
                    metrics = metrics.merge(&Classification::from_logits(tape.value(z), labels));
                }
                let grads = tape.backward(loss);
                let gh = pv_head.collect_grads(&grads, &self.head_params);
                head_adam.step(&mut self.head_params, &gh);
                if self.cfg.finetune_encoder {
                    let ge = pv_enc.collect_grads(&grads, &self.enc_params);
                    enc_adam.step(&mut self.enc_params, &ge);
                }
            }
            if gnnmls_faults::fire(gnnmls_faults::FaultSite::NanGradient) {
                Self::poison_params(&mut self.head_params);
                loss_sum = f32::NAN;
            }
            if !loss_sum.is_finite()
                || !Self::params_finite(&self.head_params)
                || !Self::params_finite(&self.enc_params)
            {
                if retries >= MAX_DIVERGENCE_RETRIES {
                    return Err(ModelError::Diverged {
                        stage: "finetune",
                        epoch,
                    });
                }
                retries += 1;
                self.divergence_retries += 1;
                head_lr *= 0.5;
                enc_lr *= 0.5;
                head_adam = Adam::new(head_lr);
                enc_adam = Adam::new(enc_lr);
                let _ = self.head_params.restore(head_snap);
                let _ = self.enc_params.restore(enc_snap);
                gnnmls_obs::warn(
                    "gnn-mls",
                    &format!(
                        "finetune epoch {epoch} diverged; retrying from last good epoch \
                         at lr {head_lr:e}"
                    ),
                );
                continue;
            }
            epoch += 1;
        }
        Ok(metrics)
    }

    /// Per-node MLS probabilities for one path.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotTrained`] if the scaler has not been fit
    /// (train or restore a checkpoint first).
    pub fn predict_path(&self, sample: &PathSample) -> Result<Vec<f32>, ModelError> {
        let x = self.features_of(sample)?;
        let mut tape = Tape::new();
        let pv_enc = self.enc_params.bind(&mut tape);
        let pv_head = self.head_params.bind(&mut tape);
        let xv = tape.leaf(x);
        let h = self.encode(&mut tape, &pv_enc, xv, sample.len());
        let z = self.head.forward(&mut tape, &pv_head, h);
        Ok(tape
            .value(z)
            .as_slice()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect())
    }

    /// Batched forward pass: per-node MLS probabilities for every
    /// sample, fanned once across the `gnnmls-par` pool and returned in
    /// input order.
    ///
    /// This is the serve daemon's micro-batching entry point: coalescing
    /// K queued inference requests into one `predict_paths` call costs
    /// one fork-join instead of K, and because the map is ordered the
    /// results are bit-identical to K separate [`GnnMls::predict_path`]
    /// calls.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotTrained`] if the scaler has not been fit
    /// (train or restore a checkpoint first).
    pub fn predict_paths(&self, samples: &[PathSample]) -> Result<Vec<Vec<f32>>, ModelError> {
        if self.scaler.is_none() {
            return Err(ModelError::NotTrained);
        }
        let predict_one = |s: &PathSample| {
            let Ok(probs) = self.predict_path(s) else {
                unreachable!("scaler checked above");
            };
            probs
        };
        // A worker panic is retried serially; if even that fails, fall
        // back to the plain serial loop (a panic there is a real bug).
        match gnnmls_par::recovering_par_map(self.threads, samples, predict_one) {
            Ok(v) => Ok(v),
            Err(_) => Ok(samples.iter().map(predict_one).collect()),
        }
    }

    /// Evaluates classification metrics against oracle labels.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingLabels`] if any sample lacks labels
    /// and [`ModelError::NotTrained`] if the model has never been fit.
    pub fn evaluate(&self, samples: &[PathSample]) -> Result<Classification, ModelError> {
        if samples.iter().any(|s| s.labels.is_none()) {
            return Err(ModelError::MissingLabels);
        }
        if self.scaler.is_none() {
            return Err(ModelError::NotTrained);
        }
        // Per-sample prediction is pure; fan it out, fold in input order.
        let eval_one = |s: &PathSample| {
            let Some(labels) = s.labels.as_ref() else {
                unreachable!("labels checked above");
            };
            let Ok(probs) = self.predict_path(s) else {
                unreachable!("scaler checked above");
            };
            let logits =
                Tensor::from_flat(probs.len(), 1, probs.iter().map(|&p| p - 0.5).collect());
            Classification::from_logits(&logits, labels)
        };
        // A worker panic is retried serially; if even that fails, fall
        // back to the plain serial loop (a panic there is a real bug).
        let per_sample = match gnnmls_par::recovering_par_map(self.threads, samples, eval_one) {
            Ok(v) => v,
            Err(_) => samples.iter().map(eval_one).collect(),
        };
        let mut m = Classification::default();
        for c in &per_sample {
            m = m.merge(c);
        }
        Ok(m)
    }

    /// Aggregates per-path predictions into per-net MLS decisions: a net
    /// is selected if its maximum probability over all appearances (on
    /// eligible nodes of *violating* paths) exceeds 0.5. Non-violating
    /// paths carry no decision — MLS exists to fix timing, and leaving
    /// passing paths alone is what keeps GNN-MLS from the indiscriminate
    /// regressions the SOTA shows (Table I).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotTrained`] if the model has never been
    /// fit.
    pub fn decide(&self, samples: &[PathSample]) -> Result<Vec<NetId>, ModelError> {
        if self.scaler.is_none() {
            return Err(ModelError::NotTrained);
        }
        // Predict violating paths concurrently, then reduce serially in
        // input order (max-per-net is order-independent anyway).
        let predict_one = |s: &PathSample| {
            if s.path.slack_ps >= 0.0 {
                None
            } else {
                let Ok(probs) = self.predict_path(s) else {
                    unreachable!("scaler checked above");
                };
                Some(probs)
            }
        };
        let probs_per_sample =
            match gnnmls_par::recovering_par_map(self.threads, samples, predict_one) {
                Ok(v) => v,
                Err(_) => samples.iter().map(predict_one).collect(),
            };
        let mut best: HashMap<NetId, f32> = HashMap::new();
        for (s, probs) in samples.iter().zip(&probs_per_sample) {
            let Some(probs) = probs else {
                continue;
            };
            for ((&net, &eligible), &p) in s.nets.iter().zip(&s.eligible).zip(probs) {
                if !eligible {
                    continue;
                }
                let e = best.entry(net).or_insert(0.0);
                if p > *e {
                    *e = p;
                }
            }
        }
        let mut v: Vec<NetId> = best
            .into_iter()
            .filter(|&(_, p)| p > 0.5)
            .map(|(n, _)| n)
            .collect();
        v.sort();
        Ok(v)
    }

    /// Total trainable scalars (encoder + head).
    pub fn parameter_count(&self) -> usize {
        self.enc_params.scalar_count() + self.head_params.scalar_count()
    }

    // ---- checkpointing plumbing (see [`crate::checkpoint`]) ----

    /// Encoder parameter tensors in registration order.
    pub(crate) fn encoder_tensors(&self) -> &[Tensor] {
        self.enc_params.tensors()
    }

    /// Head parameter tensors in registration order.
    pub(crate) fn head_tensors(&self) -> &[Tensor] {
        self.head_params.tensors()
    }

    /// The fitted scaler, if any.
    pub(crate) fn scaler_ref(&self) -> Option<&FeatureScaler> {
        self.scaler.as_ref()
    }

    /// Overwrites the scaler (checkpoint restore).
    pub(crate) fn set_scaler(&mut self, scaler: Option<FeatureScaler>) {
        self.scaler = scaler;
    }

    /// Restores all parameters; returns the offending index on mismatch.
    pub(crate) fn restore_tensors(
        &mut self,
        enc: Vec<Tensor>,
        head: Vec<Tensor>,
    ) -> Result<(), usize> {
        self.enc_params.restore(enc)?;
        let enc_len = self.enc_params.tensors().len();
        self.head_params.restore(head).map_err(|i| enc_len + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::PinId;
    use gnnmls_sta::TimingPath;

    /// Synthetic samples: label = (wirelength feature large AND slack
    /// negative-ish) — a learnable rule in feature space.
    fn synthetic_samples(n: usize, seed: u64) -> Vec<PathSample> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let len = rng.gen_range(4..12);
                let mut features = Vec::new();
                let mut labels = Vec::new();
                let mut nets = Vec::new();
                for i in 0..len {
                    let wl: f32 = rng.gen_range(0.0..200.0);
                    let mut f = [0.0f32; FEATURE_DIM];
                    f[0] = rng.gen_range(0.0..100.0);
                    f[1] = rng.gen_range(0.0..100.0);
                    f[2] = rng.gen_range(5.0..25.0);
                    f[3] = rng.gen_range(1.0..10.0);
                    f[4] = wl;
                    f[5] = wl * 0.2;
                    f[6] = wl * 0.001;
                    f[7] = rng.gen_range(1.0..4.0);
                    f[8] = 0.0;
                    features.push(f);
                    labels.push(wl > 100.0);
                    nets.push(NetId::new((k * 100 + i) as u32));
                }
                PathSample {
                    path: TimingPath {
                        pins: vec![],
                        cells: vec![],
                        nets: nets.clone(),
                        endpoint: PinId::new(0),
                        slack_ps: -10.0,
                        clock_period_ps: 400.0,
                        setup_ps: 10.0,
                    },
                    eligible: vec![true; nets.len()],
                    nets,
                    features,
                    labels: Some(labels),
                }
            })
            .collect()
    }

    #[test]
    fn model_learns_a_feature_rule() {
        let samples = synthetic_samples(40, 1);
        let test = synthetic_samples(15, 2);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 3,
            finetune_epochs: 25,
            ..ModelConfig::default()
        });
        model.pretrain(&samples).unwrap();
        let train_m = model.finetune(&samples).unwrap();
        assert!(
            train_m.accuracy() > 0.85,
            "train accuracy {:.2}",
            train_m.accuracy()
        );
        let test_m = model.evaluate(&test).unwrap();
        assert!(
            test_m.accuracy() > 0.8,
            "test accuracy {:.2}",
            test_m.accuracy()
        );
    }

    #[test]
    fn dgi_pretraining_runs_and_returns_finite_loss() {
        let samples = synthetic_samples(10, 3);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            ..ModelConfig::default()
        });
        let loss = model.pretrain(&samples).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn decisions_come_from_eligible_high_probability_nets() {
        let mut samples = synthetic_samples(30, 4);
        // Make one node ineligible everywhere.
        for s in &mut samples {
            s.eligible[0] = false;
        }
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            finetune_epochs: 20,
            ..ModelConfig::default()
        });
        model.pretrain(&samples).unwrap();
        model.finetune(&samples).unwrap();
        let decided = model.decide(&samples).unwrap();
        for s in &samples {
            assert!(!decided.contains(&s.nets[0]), "ineligible net selected");
        }
    }

    #[test]
    fn batched_forward_matches_per_sample_calls() {
        let samples = synthetic_samples(20, 9);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            finetune_epochs: 10,
            ..ModelConfig::default()
        });
        assert!(matches!(
            model.predict_paths(&samples),
            Err(ModelError::NotTrained)
        ));
        model.pretrain(&samples).unwrap();
        model.finetune(&samples).unwrap();
        let batched = model.predict_paths(&samples).unwrap();
        let single: Vec<Vec<f32>> = samples
            .iter()
            .map(|s| model.predict_path(s).unwrap())
            .collect();
        assert_eq!(batched, single, "micro-batching must not change bits");
    }

    #[test]
    fn gcn_variant_trains_too() {
        let samples = synthetic_samples(30, 5);
        let mut model = GnnMls::new(ModelConfig {
            encoder: EncoderKind::Gcn,
            pretrain_epochs: 2,
            finetune_epochs: 20,
            ..ModelConfig::default()
        });
        model.pretrain(&samples).unwrap();
        let m = model.finetune(&samples).unwrap();
        assert!(m.accuracy() > 0.6, "gcn accuracy {:.2}", m.accuracy());
    }

    #[test]
    fn untrained_model_returns_typed_errors_not_panics() {
        let model = GnnMls::new(ModelConfig::default());
        let samples = synthetic_samples(2, 6);
        assert!(matches!(
            model.predict_path(&samples[0]),
            Err(ModelError::NotTrained)
        ));
        assert!(matches!(
            model.decide(&samples),
            Err(ModelError::NotTrained)
        ));
        assert!(matches!(
            model.evaluate(&samples),
            Err(ModelError::NotTrained)
        ));
    }

    #[test]
    fn missing_labels_are_a_typed_error() {
        let mut samples = synthetic_samples(4, 7);
        samples[2].labels = None;
        let mut model = GnnMls::new(ModelConfig::default());
        assert!(matches!(
            model.finetune(&samples),
            Err(ModelError::MissingLabels)
        ));
    }

    #[test]
    fn injected_nan_gradient_recovers_with_lr_backoff() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let samples = synthetic_samples(10, 8);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            finetune_epochs: 3,
            ..ModelConfig::default()
        });
        let _g = install(&FaultPlan::single(FaultSite::NanGradient, 1));
        let loss = model.pretrain(&samples).unwrap();
        assert!(loss.is_finite() && loss > 0.0, "recovered loss {loss}");
        assert_eq!(model.divergence_retries(), 1);
        assert!(GnnMls::params_finite(&model.enc_params));
        let m = model.finetune(&samples).unwrap();
        assert!(m.accuracy() > 0.0);
    }

    #[test]
    fn unrecoverable_divergence_is_a_typed_error() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let samples = synthetic_samples(6, 9);
        let mut model = GnnMls::new(ModelConfig {
            pretrain_epochs: 2,
            ..ModelConfig::default()
        });
        // Every epoch diverges: retries must exhaust into a typed error.
        let _g = install(&FaultPlan::single(FaultSite::NanGradient, u32::MAX));
        assert!(matches!(
            model.pretrain(&samples),
            Err(ModelError::Diverged {
                stage: "pretrain",
                ..
            })
        ));
    }

    #[test]
    fn parameter_count_is_plausible() {
        let model = GnnMls::new(ModelConfig::default());
        let n = model.parameter_count();
        // 3-layer, d=24 transformer + head: thousands, not millions.
        assert!((1_000..100_000).contains(&n), "params {n}");
    }
}

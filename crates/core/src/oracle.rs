//! The iterative-STA label oracle.
//!
//! Ground truth for "does MLS help this net?" requires the procedure the
//! paper calls computationally prohibitive at scale: disconnect the net,
//! re-route it with MLS allowed, re-extract RC, and re-evaluate the
//! path's slack (Section II-B). The oracle runs exactly that — via
//! [`gnnmls_route::Router::what_if`] (detached re-route) and
//! [`gnnmls_sta::TimingPath::slack_with`] (path-local slack, eq. (1)) —
//! on a *budgeted* sample of paths, which is what makes training labels
//! affordable while the learned model generalizes to the rest.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use gnnmls_netlist::{NetId, Netlist};
use gnnmls_route::router::MlsOverride;
use gnnmls_route::{NetRoute, RouteDb, RouteError, Router};

use crate::flow::FlowError;
use crate::paths::PathSample;

/// Oracle parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Minimum path-slack gain (ps) for a positive MLS label.
    pub gain_threshold_ps: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            gain_threshold_ps: 0.5,
        }
    }
}

/// Labeling statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Paths labeled.
    pub paths: usize,
    /// Positive (MLS helps) node labels.
    pub positive: usize,
    /// Negative node labels.
    pub negative: usize,
    /// Detached what-if re-routes performed (cache misses).
    pub what_ifs: usize,
}

/// Labels each sample's nodes with the iterative-STA ground truth.
///
/// What-if routes are cached per net, so a net shared by several paths is
/// re-routed once.
///
/// The what-if fan-out is the oracle's hot loop and runs on
/// [`gnnmls_route::RouteConfig::threads`] workers (read from the
/// router's config): every distinct eligible net is what-if routed
/// concurrently against the same committed state, then each sample's
/// slack deltas are evaluated concurrently from the shared cache. Both
/// stages are pure per item, so labels, counts, and cache contents are
/// bit-identical to the serial pass for any thread count.
///
/// # Errors
///
/// Returns [`FlowError::Route`] if a what-if re-route fails,
/// [`FlowError::InconsistentPath`] if a sample's path disagrees with the
/// route database, and [`FlowError::Par`] only if a worker panic
/// reproduces on the serial retry.
pub fn label_paths(
    samples: &mut [PathSample],
    netlist: &Netlist,
    router: &Router<'_>,
    routes: &RouteDb,
    cfg: &OracleConfig,
) -> Result<OracleStats, FlowError> {
    let threads = router.config().threads;

    // Distinct eligible nets in first-occurrence order (the serial
    // cache-miss order), each detached-re-routed exactly once.
    let mut order: Vec<NetId> = Vec::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    for sample in samples.iter() {
        for (i, &net) in sample.nets.iter().enumerate() {
            if sample.eligible[i] && seen.insert(net) {
                order.push(net);
            }
        }
    }
    let cands: Vec<Result<NetRoute, RouteError>> = gnnmls_par::recovering_par_map_with(
        threads,
        order.len(),
        || router.scratch(),
        |scratch, i| router.what_if(scratch, order[i], MlsOverride::Allow),
    )?;
    let mut cache: HashMap<NetId, NetRoute> = HashMap::with_capacity(order.len());
    for (net, cand) in order.iter().copied().zip(cands) {
        cache.insert(net, cand?);
    }

    // Per-sample label evaluation is pure given the cache.
    let samples_ro: &[PathSample] = samples;
    let eval_one = |s: usize| -> Option<(Vec<bool>, usize, usize)> {
        let sample = &samples_ro[s];
        let base_slack = sample.path.slack_with(netlist, routes, &HashMap::new())?;
        let mut labels = Vec::with_capacity(sample.len());
        let (mut positive, mut negative) = (0usize, 0usize);
        for (i, &net) in sample.nets.iter().enumerate() {
            if !sample.eligible[i] {
                labels.push(false);
                continue;
            }
            let cand = &cache[&net];
            let mut subs: HashMap<NetId, &NetRoute> = HashMap::new();
            subs.insert(net, cand);
            let gain = sample.path.slack_with(netlist, routes, &subs)? - base_slack;
            let is_pos = cand.is_mls && gain > cfg.gain_threshold_ps;
            if is_pos {
                positive += 1;
            } else {
                negative += 1;
            }
            labels.push(is_pos);
        }
        Some((labels, positive, negative))
    };
    let per_sample: Vec<Option<(Vec<bool>, usize, usize)>> =
        gnnmls_par::recovering_par_map_with(threads, samples_ro.len(), || (), |(), s| eval_one(s))?;

    let mut stats = OracleStats {
        what_ifs: order.len(),
        ..OracleStats::default()
    };
    for (sample, labeled) in samples.iter_mut().zip(per_sample) {
        let (labels, positive, negative) = labeled.ok_or(FlowError::InconsistentPath)?;
        sample.labels = Some(labels);
        stats.positive += positive;
        stats.negative += negative;
        stats.paths += 1;
    }
    Ok(stats)
}

/// Single-net MLS impact (the Table I experiment): before/after slack and
/// metal usage when one net is re-routed with MLS forced on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetImpact {
    /// The net.
    pub net: NetId,
    /// Its instance name.
    pub name: String,
    /// Worst path slack through it before MLS, ps.
    pub slack_before_ps: f64,
    /// The same path's slack with the net re-routed under MLS, ps.
    pub slack_after_ps: f64,
    /// Die-local metal bitmasks used before: (logic, memory).
    pub metals_before: (u16, u16),
    /// Metal bitmasks used after.
    pub metals_after: (u16, u16),
}

impl NetImpact {
    /// Slack gain (positive = MLS helps).
    pub fn gain_ps(&self) -> f64 {
        self.slack_after_ps - self.slack_before_ps
    }

    /// Formats a metal mask pair like the paper ("M1-6(bot)+M5-6(top)").
    pub fn metals_str(masks: (u16, u16)) -> String {
        fn span(mask: u16) -> Option<(u8, u8)> {
            if mask == 0 {
                return None;
            }
            let lo = mask.trailing_zeros() as u8 + 1;
            let hi = 16 - mask.leading_zeros() as u8;
            Some((lo, hi))
        }
        let mut parts = Vec::new();
        if let Some((lo, hi)) = span(masks.0) {
            parts.push(if lo == hi {
                format!("M{lo}(bot)")
            } else {
                format!("M{lo}-{hi}(bot)")
            });
        }
        if let Some((lo, hi)) = span(masks.1) {
            parts.push(if lo == hi {
                format!("M{lo}(top)")
            } else {
                format!("M{lo}-{hi}(top)")
            });
        }
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join("+")
        }
    }
}

/// Evaluates single-net MLS impact for every eligible net on the given
/// paths, sorted by gain (most-helped first).
///
/// # Errors
///
/// Returns [`FlowError::Route`] if a what-if re-route fails and
/// [`FlowError::InconsistentPath`] if a sample's path disagrees with
/// the route database.
pub fn net_mls_impact(
    samples: &[PathSample],
    netlist: &Netlist,
    router: &Router<'_>,
    routes: &RouteDb,
    grid: &gnnmls_route::RoutingGrid,
) -> Result<Vec<NetImpact>, FlowError> {
    // Each distinct eligible net is evaluated against the first sample
    // that mentions it; the pairs are independent, so fan them out.
    let mut order: Vec<(NetId, usize)> = Vec::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    for (s, sample) in samples.iter().enumerate() {
        for (i, &net) in sample.nets.iter().enumerate() {
            if sample.eligible[i] && seen.insert(net) {
                order.push((net, s));
            }
        }
    }
    let evaluated = gnnmls_par::recovering_par_map_with(
        router.config().threads,
        order.len(),
        || router.scratch(),
        |scratch, k| -> Result<NetImpact, FlowError> {
            let (net, s) = order[k];
            let sample = &samples[s];
            let base_slack = sample
                .path
                .slack_with(netlist, routes, &HashMap::new())
                .ok_or(FlowError::InconsistentPath)?;
            let cand = router.what_if(scratch, net, MlsOverride::Allow)?;
            let mut subs: HashMap<NetId, &NetRoute> = HashMap::new();
            subs.insert(net, &cand);
            let after = sample
                .path
                .slack_with(netlist, routes, &subs)
                .ok_or(FlowError::InconsistentPath)?;
            Ok(NetImpact {
                net,
                name: netlist.net(net).name.clone(),
                slack_before_ps: base_slack,
                slack_after_ps: after,
                metals_before: routes.route(net).tree.used_layers(grid),
                metals_after: cand.tree.used_layers(grid),
            })
        },
    )?;
    let mut v = Vec::with_capacity(evaluated.len());
    for r in evaluated {
        v.push(r?);
    }
    v.sort_by(|a, b| b.gain_ps().total_cmp(&a.gain_ps()).then(a.net.cmp(&b.net)));
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_path_samples;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig, Placement};
    use gnnmls_route::{MlsPolicy, RouteConfig};
    use gnnmls_sta::{analyze, StaConfig};

    fn setup() -> (gnnmls_netlist::Netlist, Placement, TechConfig) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        (d.netlist, p, tech)
    }

    #[test]
    fn oracle_labels_every_node_and_state_is_preserved() {
        let (netlist, placement, tech) = setup();
        let mut router = Router::new(
            &netlist,
            &placement,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        router.route_all().unwrap();
        let routes = router.db().unwrap();
        let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
        let mut samples = extract_path_samples(&netlist, &placement, &tech, &rep, 30);
        let stats = label_paths(
            &mut samples,
            &netlist,
            &router,
            &routes,
            &OracleConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.paths, 30);
        assert!(stats.positive + stats.negative > 0);
        for s in &samples {
            let l = s.labels.as_ref().unwrap();
            assert_eq!(l.len(), s.len());
            // Ineligible nodes are always negative.
            for (i, &e) in s.eligible.iter().enumerate() {
                if !e {
                    assert!(!l[i]);
                }
            }
        }
        // What-if caching: no more what-ifs than distinct eligible nets.
        let distinct: std::collections::HashSet<_> = samples
            .iter()
            .flat_map(|s| {
                s.nets
                    .iter()
                    .zip(&s.eligible)
                    .filter(|(_, &e)| e)
                    .map(|(&n, _)| n)
            })
            .collect();
        assert!(stats.what_ifs <= distinct.len());
        // Router state unchanged by the oracle.
        let routes2 = router.db().unwrap();
        assert_eq!(routes.summary, routes2.summary);
    }

    #[test]
    fn net_impact_reports_both_helped_and_hurt_nets() {
        let (netlist, placement, tech) = setup();
        let mut router = Router::new(
            &netlist,
            &placement,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        router.route_all().unwrap();
        let routes = router.db().unwrap();
        let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
        let samples = extract_path_samples(&netlist, &placement, &tech, &rep, 20);
        let grid = router.grid().clone();
        let impacts = net_mls_impact(&samples, &netlist, &router, &routes, &grid).unwrap();
        assert!(!impacts.is_empty());
        // Sorted descending by gain.
        for w in impacts.windows(2) {
            assert!(w[0].gain_ps() >= w[1].gain_ps() - 1e-9);
        }
        // Every impact row has valid metal strings.
        for i in impacts.iter().take(5) {
            assert!(!NetImpact::metals_str(i.metals_before).is_empty());
        }
    }

    #[test]
    fn labels_identical_across_thread_counts() {
        let (netlist, placement, tech) = setup();
        let run = |threads: usize| {
            let mut router = Router::new(
                &netlist,
                &placement,
                &tech,
                MlsPolicy::Disabled,
                RouteConfig::default().with_threads(threads),
            )
            .unwrap();
            router.route_all().unwrap();
            let routes = router.db().unwrap();
            let rep = analyze(&netlist, &routes, StaConfig::from_freq_mhz(2500.0)).unwrap();
            let mut samples = extract_path_samples(&netlist, &placement, &tech, &rep, 25);
            let stats = label_paths(
                &mut samples,
                &netlist,
                &router,
                &routes,
                &OracleConfig::default(),
            )
            .unwrap();
            let labels: Vec<Vec<bool>> =
                samples.iter().map(|s| s.labels.clone().unwrap()).collect();
            (stats, labels, routes.summary)
        };
        let serial = run(1);
        for threads in [2, 4, 0] {
            let par = run(threads);
            assert_eq!(serial.0, par.0, "OracleStats differ at threads={threads}");
            assert_eq!(serial.1, par.1, "labels differ at threads={threads}");
            assert_eq!(
                serial.2, par.2,
                "RouteDb summary differs at threads={threads}"
            );
        }
    }

    #[test]
    fn metals_str_formats_like_the_paper() {
        assert_eq!(
            NetImpact::metals_str((0b0011_1111, 0b0011_0000)),
            "M1-6(bot)+M5-6(top)"
        );
        assert_eq!(NetImpact::metals_str((0b0000_1111, 0)), "M1-4(bot)");
        assert_eq!(
            NetImpact::metals_str((0b0011_1111, 0b0010_0000)),
            "M1-6(bot)+M6(top)"
        );
        assert_eq!(NetImpact::metals_str((0, 0)), "-");
    }
}

//! Timing-path samples: the unit of GNN-MLS training and inference data.
//!
//! A [`PathSample`] is one extracted critical path with its per-node
//! (per-net) feature rows. Samples are unlabeled until the oracle runs
//! (Deep Graph Infomax pretraining uses them as-is; fine-tuning needs
//! [`PathSample::labels`]).

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{NetId, Netlist, Tier};
use gnnmls_phys::Placement;
use gnnmls_sta::path::worst_paths_par;
use gnnmls_sta::{TimingPath, TimingReport};

use crate::features::{node_features, FEATURE_DIM};

/// One timing path converted to a node sequence with features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathSample {
    /// The underlying timing path.
    pub path: TimingPath,
    /// Nets along the path, in order (one per node).
    pub nets: Vec<NetId>,
    /// Raw feature rows, one per node.
    pub features: Vec<[f32; FEATURE_DIM]>,
    /// Which nodes are eligible for MLS at all (single-die nets; 3D nets
    /// cross the bond regardless and carry no decision).
    pub eligible: Vec<bool>,
    /// Oracle labels (`Some` after labeling): `true` = MLS improves the
    /// path's slack beyond the threshold.
    pub labels: Option<Vec<bool>>,
}

impl PathSample {
    /// Number of nodes (nets) on the path.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether the path has no nets (never true for extracted paths).
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }
}

/// Extracts the `k` worst paths as unlabeled samples.
pub fn extract_path_samples(
    netlist: &Netlist,
    placement: &Placement,
    tech: &TechConfig,
    report: &TimingReport,
    k: usize,
) -> Vec<PathSample> {
    extract_path_samples_par(netlist, placement, tech, report, k, 1)
}

/// [`extract_path_samples`] with extraction and featurization fanned
/// out over `threads` workers (`0` = all cores). Both stages are pure
/// per path, so the samples are identical for every thread count.
pub fn extract_path_samples_par(
    netlist: &Netlist,
    placement: &Placement,
    tech: &TechConfig,
    report: &TimingReport,
    k: usize,
    threads: usize,
) -> Vec<PathSample> {
    let paths = worst_paths_par(netlist, report, k, threads);
    let featurize = |i: usize| sample_from_path(netlist, placement, tech, paths[i].clone());
    // A worker panic is retried serially; if even that fails, fall back
    // to the plain serial loop (a panic there is a genuine bug).
    match gnnmls_par::recovering_par_map_with(threads, paths.len(), || (), |(), i| featurize(i)) {
        Ok(v) => v,
        Err(_) => (0..paths.len()).map(featurize).collect(),
    }
}

/// Converts one timing path into a sample.
pub fn sample_from_path(
    netlist: &Netlist,
    placement: &Placement,
    tech: &TechConfig,
    path: TimingPath,
) -> PathSample {
    let nets = path.nets.clone();
    let features = nets
        .iter()
        .map(|&n| node_features(netlist, placement, tech, n))
        .collect();
    let eligible = nets
        .iter()
        .map(|&n| matches!(netlist.net_tier(n), Some(Tier::Logic) | Some(Tier::Memory)))
        .collect();
    PathSample {
        path,
        nets,
        features,
        eligible,
        labels: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};
    use gnnmls_sta::{analyze, StaConfig};

    #[test]
    fn samples_match_their_paths() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        let rep = analyze(&d.netlist, &db, StaConfig::from_freq_mhz(2500.0)).unwrap();
        let samples = extract_path_samples(&d.netlist, &p, &tech, &rep, 25);
        assert_eq!(samples.len(), 25);
        for s in &samples {
            assert!(!s.is_empty());
            assert_eq!(s.features.len(), s.len());
            assert_eq!(s.eligible.len(), s.len());
            assert_eq!(s.nets, s.path.nets);
            assert!(s.labels.is_none());
            // Eligibility matches net tier.
            for (i, &n) in s.nets.iter().enumerate() {
                assert_eq!(s.eligible[i], d.netlist.net_tier(n).is_some());
            }
        }
        // Worst first.
        assert!(samples[0].path.slack_ps <= samples[24].path.slack_ps + 1e-9);
    }
}

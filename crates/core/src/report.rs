//! The flow's PPA report — one column of Tables IV–VI.

use serde::{Deserialize, Serialize};
use std::fmt;

use gnnmls_nn::Classification;

use crate::oracle::OracleStats;

/// PDN geometry summary (Table IV's `M-T:W/P/U` row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PdnSummary {
    /// Stripe width, µm.
    pub width_um: f64,
    /// Stripe pitch, µm.
    pub pitch_um: f64,
    /// Top-metal utilization (0..1).
    pub utilization: f64,
}

/// Training diagnostics for the GNN-MLS policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainSummary {
    /// Oracle labeling statistics.
    pub oracle: OracleStats,
    /// Final DGI pretraining loss.
    pub pretrain_loss: f32,
    /// Final-epoch training metrics.
    pub train_metrics: Classification,
    /// Held-out evaluation metrics (on labeled paths not used for
    /// fine-tuning).
    pub eval_metrics: Classification,
}

/// What the flow degraded gracefully on instead of failing.
///
/// All-zero / all-false means the run was clean; anything else is a
/// recovery the flow performed (pattern-route fallback, isolated net
/// failure, retried training epoch, worker-panic retry, heuristic model
/// fallback, or a non-converged IR solve) that the caller should see.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationSummary {
    /// Nets that fell back from maze to pattern routing for at least one
    /// sink after the A* expansion budget ran out.
    pub pattern_fallback_nets: usize,
    /// Individual sinks routed by the pattern fallback.
    pub pattern_fallback_sinks: usize,
    /// Rip-up victims whose reroute failed and whose previous route was
    /// restored instead of failing the flow.
    pub isolated_route_failures: usize,
    /// Worker panics that were caught and retried serially.
    pub recovered_worker_panics: u32,
    /// The GNN policy fell back to the heuristic (SOTA) policy because
    /// the model or its checkpoint was unusable.
    pub model_fallback: bool,
    /// Training epochs retried after a divergence (NaN) rollback.
    pub training_retries: u32,
    /// The final IR solve hit its iteration cap without converging.
    pub ir_nonconverged: bool,
}

impl DegradationSummary {
    /// `true` when nothing degraded.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

impl fmt::Display for DegradationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.pattern_fallback_nets > 0 {
            parts.push(format!(
                "pattern fallback on {} nets ({} sinks)",
                self.pattern_fallback_nets, self.pattern_fallback_sinks
            ));
        }
        if self.isolated_route_failures > 0 {
            parts.push(format!(
                "{} isolated route failures",
                self.isolated_route_failures
            ));
        }
        if self.recovered_worker_panics > 0 {
            parts.push(format!(
                "{} recovered worker panics",
                self.recovered_worker_panics
            ));
        }
        if self.model_fallback {
            parts.push("model fell back to heuristic policy".into());
        }
        if self.training_retries > 0 {
            parts.push(format!("{} training retries", self.training_retries));
        }
        if self.ir_nonconverged {
            parts.push("IR solve did not converge".into());
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// One full flow run's results.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Design name (e.g. `maeri128pe_32bw`).
    pub design: String,
    /// Policy name (`No MLS`, `SOTA`, `GNN-MLS`).
    pub policy: String,
    /// Technology name (e.g. `hetero-16-28-6+6`).
    pub tech: String,
    /// Target frequency, MHz.
    pub target_freq_mhz: f64,
    /// Floorplan area, mm².
    pub fp_mm2: f64,
    /// Total routed wirelength, m.
    pub wirelength_m: f64,
    /// F2F bond pads consumed by signal routing.
    pub f2f_pads: usize,
    /// Worst negative slack, ps.
    pub wns_ps: f64,
    /// Total negative slack, ns.
    pub tns_ns: f64,
    /// Violating endpoints (the paper's `#Vio. Paths` / Fig. 2 points).
    pub violating_paths: usize,
    /// Total timing endpoints.
    pub endpoints: usize,
    /// Nets routed with metal-layer sharing.
    pub mls_nets: usize,
    /// Total power, mW.
    pub power_mw: f64,
    /// Effective frequency `1/(T − WNS)`, MHz.
    pub eff_freq_mhz: f64,
    /// Model runtime (oracle + training + inference), s; `None` for the
    /// baselines (the paper lists `-`).
    pub runtime_s: Option<f64>,
    /// Worst IR-drop as % of the lowest VDD.
    pub ir_drop_pct: Option<f64>,
    /// Memory-die top-metal PDN geometry.
    pub pdn: Option<PdnSummary>,
    /// Level-shifter power, mW (heterogeneous designs).
    pub ls_power_mw: Option<f64>,
    /// Level shifters inserted.
    pub level_shifters: usize,
    /// Stuck-at test coverage (with the configured DFT), %.
    pub test_coverage_pct: Option<f64>,
    /// Total / detected fault counts behind the coverage number.
    pub faults: Option<(usize, usize)>,
    /// DFT cells added by the MLS DFT ECO.
    pub dft_cells: usize,
    /// Training diagnostics (GNN-MLS only).
    pub train: Option<TrainSummary>,
    /// Graceful degradations the flow performed instead of failing.
    pub degradation: DegradationSummary,
}

impl FlowReport {
    /// The report with runtime scrubbed — every remaining field is a
    /// deterministic function of the inputs, so two runs of the same
    /// flow (including a checkpoint-resumed rerun) must compare equal.
    pub fn comparable(&self) -> Self {
        Self {
            runtime_s: None,
            ..self.clone()
        }
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}] @ {:.0} MHz ({})",
            self.design, self.policy, self.target_freq_mhz, self.tech
        )?;
        writeln!(
            f,
            "  FP {:.2} mm2 | WL {:.3} m | WNS {:.1} ps | TNS {:.2} ns | vio {} / {}",
            self.fp_mm2,
            self.wirelength_m,
            self.wns_ps,
            self.tns_ns,
            self.violating_paths,
            self.endpoints
        )?;
        writeln!(
            f,
            "  MLS nets {} | F2F pads {} | power {:.1} mW | eff freq {:.0} MHz",
            self.mls_nets, self.f2f_pads, self.power_mw, self.eff_freq_mhz
        )?;
        if let Some(ir) = self.ir_drop_pct {
            let pdn = self.pdn.unwrap_or_default();
            writeln!(
                f,
                "  IR {ir:.2}% | PDN {:.1}um/{:.0}um/{:.0}% | LS {} ({} mW)",
                pdn.width_um,
                pdn.pitch_um,
                pdn.utilization * 100.0,
                self.level_shifters,
                self.ls_power_mw
                    .map(|p| format!("{p:.1}"))
                    .unwrap_or_else(|| "-".into()),
            )?;
        }
        if let Some(cov) = self.test_coverage_pct {
            let (total, det) = self.faults.unwrap_or((0, 0));
            writeln!(
                f,
                "  test coverage {cov:.2}% ({det}/{total} faults, {} DFT cells)",
                self.dft_cells
            )?;
        }
        if let Some(rt) = self.runtime_s {
            writeln!(f, "  model runtime {rt:.1} s")?;
        }
        if let Some(t) = &self.train {
            writeln!(
                f,
                "  train: {} paths, {}+/{}- labels, acc {:.2}, f1 {:.2} (eval acc {:.2})",
                t.oracle.paths,
                t.oracle.positive,
                t.oracle.negative,
                t.train_metrics.accuracy(),
                t.train_metrics.f1(),
                t.eval_metrics.accuracy()
            )?;
        }
        if !self.degradation.is_clean() {
            writeln!(f, "  degraded: {}", self.degradation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_displays_all_sections() {
        let r = FlowReport {
            design: "maeri16pe_4bw".into(),
            policy: "GNN-MLS".into(),
            tech: "hetero-16-28-6+6".into(),
            target_freq_mhz: 2500.0,
            fp_mm2: 0.38,
            wirelength_m: 5.16,
            f2f_pads: 812,
            wns_ps: -23.0,
            tns_ns: -11.0,
            violating_paths: 2800,
            endpoints: 14000,
            mls_nets: 2370,
            power_mw: 1389.0,
            eff_freq_mhz: 2363.0,
            runtime_s: Some(20.0 * 60.0),
            ir_drop_pct: Some(9.4),
            pdn: Some(PdnSummary {
                width_um: 2.0,
                pitch_um: 7.0,
                utilization: 0.14,
            }),
            ls_power_mw: Some(46.0),
            level_shifters: 120,
            test_coverage_pct: Some(98.38),
            faults: Some((444_346, 438_276)),
            dft_cells: 32,
            train: Some(TrainSummary::default()),
            degradation: DegradationSummary {
                pattern_fallback_nets: 3,
                pattern_fallback_sinks: 7,
                isolated_route_failures: 1,
                recovered_worker_panics: 2,
                model_fallback: false,
                training_retries: 1,
                ir_nonconverged: false,
            },
        };
        let s = format!("{r}");
        for needle in [
            "GNN-MLS",
            "WNS -23.0",
            "MLS nets 2370",
            "F2F pads 812",
            "IR 9.40%",
            "coverage 98.38%",
            "train:",
            "degraded: pattern fallback on 3 nets (7 sinks)",
            "1 isolated route failures",
            "2 recovered worker panics",
            "1 training retries",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }

    #[test]
    fn clean_degradation_is_silent_and_comparable_scrubs_runtime() {
        let r = FlowReport {
            design: "x".into(),
            runtime_s: Some(12.0),
            ..Default::default()
        };
        assert!(r.degradation.is_clean());
        assert!(!format!("{r}").contains("degraded"));
        let c = r.comparable();
        assert!(c.runtime_s.is_none());
        assert_eq!(c.design, r.design);
    }

    #[test]
    fn minimal_report_displays() {
        let r = FlowReport {
            design: "x".into(),
            policy: "No MLS".into(),
            ..Default::default()
        };
        let s = format!("{r}");
        assert!(s.contains("No MLS"));
        assert!(!s.contains("coverage"));
        assert!(!s.contains("IR "));
    }
}

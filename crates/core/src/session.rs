//! Warm design sessions — the serve-facing API.
//!
//! A [`DesignSession`] is everything a long-lived server needs to answer
//! what-if and inference queries without re-paying the cold start: the
//! prepared netlist and placement, the routed DB plus the congestion
//! scale it settled at, the extracted inference path samples, and (for
//! the GNN-MLS policy) the trained model. Building one costs a full
//! place + route + STA; answering a query against it only costs a
//! usage-map restore plus one detached search, which is what makes the
//! `gnnmls-serve` warm cache ≥10× cheaper than a one-shot CLI run.
//!
//! Determinism contract: a warm session's [`DesignSession::what_if`] is
//! bit-identical to a cold one-shot run of the same spec, because
//! [`gnnmls_route::Router::restore_routes`] replays both the usage maps
//! and the final congestion scale.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use gnnmls_netlist::generators::{
    generate_a7, generate_maeri, generate_noc, A7Config, GeneratedDesign, MaeriConfig, NocConfig,
};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{NetId, Netlist};
use gnnmls_phys::Placement;
use gnnmls_route::{AuditMode, MlsOverride, MlsPolicy, RouteConfig, RouteDb, Router, RoutingGrid};
use gnnmls_sta::{analyze, StaConfig};

use crate::checkpoint::fnv1a64;
use crate::flow::{learn_decisions_with_model, prepare, FlowConfig, FlowError, FlowPolicy};
use crate::model::GnnMls;
use crate::paths::{extract_path_samples_par, PathSample};

/// The named designs the CLI and the serve daemon can build.
pub const DESIGNS: &[(&str, &str)] = &[
    ("maeri16", "MAERI 16PE 4BW (Table III scale)"),
    ("maeri64", "MAERI 64PE 16BW (suite mid-scale)"),
    ("maeri128", "MAERI 128PE 32BW (Table IV)"),
    ("maeri256", "MAERI 256PE 64BW (Table V)"),
    ("a7", "Cortex-A7-style dual-core (Tables IV/V)"),
    (
        "a7mini",
        "Cortex-A7-style single core, reduced stages (suite scale)",
    ),
    ("noc4x4", "4x4 mesh NoC with registered links (suite scale)"),
    (
        "noc8x8",
        "8x8 mesh NoC with registered links (suite full scale)",
    ),
];

/// Builds a named design against a technology; `None` for an unknown
/// name.
pub fn build_design(name: &str, tech: &TechConfig) -> Option<GeneratedDesign> {
    let d = match name {
        "maeri16" => generate_maeri(&MaeriConfig::pe16_bw4(), tech),
        "maeri64" => generate_maeri(&MaeriConfig::new(64, 16), tech),
        "maeri128" => generate_maeri(&MaeriConfig::pe128_bw32(), tech),
        "maeri256" => generate_maeri(&MaeriConfig::pe256_bw64(), tech),
        "a7" => generate_a7(&A7Config::dual_core(), tech),
        "a7mini" => generate_a7(&A7Config::new(1).with_gates_per_stage(300), tech),
        "noc4x4" => generate_noc(&NocConfig::mesh4x4(), tech),
        "noc8x8" => generate_noc(&NocConfig::mesh8x8(), tech),
        _ => return None,
    };
    // Generators are infallible for the known configs above.
    d.ok()
}

/// The design families the model zoo trains and serves per-family
/// models for. Every name in [`DESIGNS`] maps to exactly one family.
pub const FAMILIES: &[&str] = &["maeri", "a7", "noc"];

/// Maps a design name onto its zoo family (`maeri16` → `maeri`,
/// `a7mini` → `a7`, `noc8x8` → `noc`); `None` for an unknown design.
pub fn design_family(design: &str) -> Option<&'static str> {
    if !DESIGNS.iter().any(|&(name, _)| name == design) {
        return None;
    }
    FAMILIES
        .iter()
        .copied()
        .filter(|fam| design.starts_with(fam))
        // `a7` vs a hypothetical `a` prefix: the longest match wins.
        .max_by_key(|fam| fam.len())
}

/// Resolves a technology name (`hetero` | `homo`) for a design; `None`
/// for an unknown name. The a7 designs use 8 metal layers per die, the
/// MAERI and NoC designs 6 (matching the paper's stacks).
pub fn build_tech(tech: &str, design: &str) -> Option<TechConfig> {
    let layers = if design.starts_with("a7") { 8 } else { 6 };
    match tech {
        "hetero" => Some(TechConfig::heterogeneous_16_28(layers, layers)),
        "homo" => Some(TechConfig::homogeneous_28_28(layers, layers)),
        _ => None,
    }
}

/// Upper bound on a plausible target frequency, MHz. Anything above
/// this is a garbled request, not an aggressive design.
pub const MAX_FREQ_MHZ: f64 = 100_000.0;

/// Why a spec or request was refused at admission, before any build
/// work (or queue slot) was spent on it. This is the typed taxonomy a
/// serve client sees for a bad request: deterministic, permanent
/// (retrying the same request cannot succeed), and never a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// The design name is not in [`DESIGNS`].
    UnknownDesign(String),
    /// The technology name is not `hetero` or `homo`.
    UnknownTech(String),
    /// The target frequency is not a finite positive number within
    /// [`MAX_FREQ_MHZ`].
    BadFrequency(f64),
    /// A what-if request without a net id.
    MissingNet,
    /// A request deadline of zero expansions (nothing can route) or
    /// beyond any configured budget.
    BadDeadline(u64),
    /// An inference path count of zero or beyond the server's limit.
    BadPaths {
        /// Requested count.
        got: u64,
        /// The server's limit.
        max: u64,
    },
    /// A config-builder field outside its valid domain (see
    /// [`crate::flow::FlowConfigBuilder::build`] and the route/serve
    /// builders, which all funnel here).
    BadConfig {
        /// The offending field.
        field: &'static str,
        /// The value as given.
        got: String,
        /// What the field requires.
        want: &'static str,
    },
    /// A `LoadModel` checkpoint refused before it could reach any
    /// session: corrupt envelope, wrong architecture, or a family tag
    /// that does not match the targeted design family.
    BadModel {
        /// The family the request targeted.
        family: String,
        /// Why the checkpoint was refused.
        why: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownDesign(d) => write!(f, "unknown design `{d}`"),
            ValidationError::UnknownTech(t) => write!(f, "unknown tech `{t}` (hetero|homo)"),
            ValidationError::BadFrequency(v) => write!(
                f,
                "target frequency {v} MHz is not a finite positive value <= {MAX_FREQ_MHZ}"
            ),
            ValidationError::MissingNet => write!(f, "what-if request carries no net id"),
            ValidationError::BadDeadline(d) => {
                write!(f, "deadline of {d} expansions is outside 1..=10000000")
            }
            ValidationError::BadPaths { got, max } => {
                write!(f, "paths {got} outside 1..={max}")
            }
            ValidationError::BadConfig { field, got, want } => {
                write!(f, "config field `{field}` = {got} (want {want})")
            }
            ValidationError::BadModel { family, why } => {
                write!(f, "model checkpoint refused for family `{family}`: {why}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Everything that identifies a warm session: the same spec always
/// builds the same session, so it doubles as the cache key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Design name (see [`DESIGNS`]).
    pub design: String,
    /// Technology name (`hetero` | `homo`).
    pub tech: String,
    /// MLS policy the session routes under.
    pub policy: FlowPolicy,
    /// Target clock frequency, MHz.
    pub target_freq_mhz: f64,
    /// Use the down-scaled [`FlowConfig::fast_test`] configuration.
    pub fast: bool,
}

impl SessionSpec {
    /// Paper-scale spec for a named design (hetero stack, No-MLS
    /// policy, default frequency).
    pub fn new(design: &str) -> Self {
        let freq = if design.starts_with("a7") {
            2000.0
        } else {
            2500.0
        };
        Self {
            design: design.to_string(),
            tech: "hetero".to_string(),
            policy: FlowPolicy::NoMls,
            target_freq_mhz: freq,
            fast: false,
        }
    }

    /// [`SessionSpec::new`] with the fast-test flow configuration.
    pub fn fast(design: &str) -> Self {
        Self {
            fast: true,
            ..Self::new(design)
        }
    }

    /// Sets the policy (builder-style).
    pub fn with_policy(mut self, policy: FlowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Deep-validates the spec without doing any build work: the design
    /// and tech names must resolve, and the frequency must be a sane
    /// finite positive value. This is the admission check the serve
    /// daemon runs *before* taking a queue slot or the build lock.
    ///
    /// # Errors
    ///
    /// Returns the first failing [`ValidationError`].
    pub fn validate(&self) -> Result<(), ValidationError> {
        if !self.target_freq_mhz.is_finite()
            || self.target_freq_mhz <= 0.0
            || self.target_freq_mhz > MAX_FREQ_MHZ
        {
            return Err(ValidationError::BadFrequency(self.target_freq_mhz));
        }
        if build_tech(&self.tech, &self.design).is_none() {
            return Err(ValidationError::UnknownTech(self.tech.clone()));
        }
        // Existence only — don't generate the design, just check the name
        // (generation is the expensive part admission must not pay).
        if !DESIGNS.iter().any(|&(name, _)| name == self.design) {
            return Err(ValidationError::UnknownDesign(self.design.clone()));
        }
        Ok(())
    }

    /// The flow configuration this spec builds with.
    pub fn flow_config(&self) -> FlowConfig {
        if self.fast {
            FlowConfig::fast_test(self.target_freq_mhz)
        } else {
            FlowConfig::new(self.target_freq_mhz)
        }
    }

    /// Stable cache key: FNV-1a over the canonical field encoding.
    pub fn cache_key(&self) -> u64 {
        let canon = format!(
            "{}|{}|{}|{}|{}",
            self.design,
            self.tech,
            self.policy.name(),
            self.target_freq_mhz,
            self.fast
        );
        fnv1a64(canon.as_bytes())
    }
}

/// Errors raised building or querying a session.
#[derive(Debug)]
pub enum SessionError {
    /// The design name is not in [`DESIGNS`].
    UnknownDesign(String),
    /// The technology name is not `hetero` or `homo`.
    UnknownTech(String),
    /// The requested net id is out of range for the design.
    UnknownNet {
        /// Requested net id.
        net: u32,
        /// Nets in the design.
        nets: usize,
    },
    /// Inference was requested on a session without a trained model
    /// (only `GnnMls`-policy sessions carry one).
    NoModel,
    /// The spec or request failed admission validation (permanent —
    /// retrying the same request cannot succeed).
    Invalid(ValidationError),
    /// The `build-fail` fault seam fired (deterministic build bomb used
    /// to exercise the serve quarantine circuit breaker).
    InjectedBuildFailure,
    /// A flow stage failed while building or querying.
    Flow(FlowError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownDesign(d) => write!(f, "unknown design `{d}`"),
            SessionError::UnknownTech(t) => write!(f, "unknown tech `{t}` (hetero|homo)"),
            SessionError::UnknownNet { net, nets } => {
                write!(f, "net {net} out of range (design has {nets} nets)")
            }
            SessionError::NoModel => {
                write!(f, "session has no trained model (policy is not gnn-mls)")
            }
            SessionError::Invalid(e) => write!(f, "invalid request: {e}"),
            SessionError::InjectedBuildFailure => {
                write!(f, "session build failed (injected build-fail fault)")
            }
            SessionError::Flow(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<FlowError> for SessionError {
    fn from(e: FlowError) -> Self {
        SessionError::Flow(e)
    }
}
impl From<ValidationError> for SessionError {
    fn from(e: ValidationError) -> Self {
        // Keep the long-standing variants for the two name failures so
        // callers matching on them keep working.
        match e {
            ValidationError::UnknownDesign(d) => SessionError::UnknownDesign(d),
            ValidationError::UnknownTech(t) => SessionError::UnknownTech(t),
            other => SessionError::Invalid(other),
        }
    }
}
impl From<gnnmls_route::RouteError> for SessionError {
    fn from(e: gnnmls_route::RouteError) -> Self {
        SessionError::Flow(FlowError::Route(e))
    }
}
impl From<gnnmls_sta::StaError> for SessionError {
    fn from(e: gnnmls_sta::StaError) -> Self {
        SessionError::Flow(FlowError::Sta(e))
    }
}

/// The answer to a what-if query: the route this net would get under
/// the requested MLS override, summarized. Deterministic — a warm and
/// a cold session produce bit-identical results for the same spec.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WhatIfResult {
    /// The queried net.
    pub net: u32,
    /// Detached-route wirelength, µm.
    pub wirelength_um: f64,
    /// F2F bond crossings the route would consume.
    pub f2f_crossings: u32,
    /// Whether the route borrows the other die's metals.
    pub is_mls: bool,
    /// Sinks that fell back maze → pattern (non-zero when the expansion
    /// budget ran out, e.g. under a tight request deadline).
    pub pattern_sinks: u32,
    /// Total load the driver would see, fF.
    pub total_cap_ff: f64,
    /// Wire Elmore delay to each sink, ps.
    pub sink_elmore_ps: Vec<f64>,
}

/// The answer to an inference query over the session's worst paths.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferResult {
    /// Paths actually inferred (requested count clamped to the sample
    /// set).
    pub paths: u64,
    /// Nets the model selects for MLS (max probability over eligible
    /// nodes of violating paths > 0.5), sorted.
    pub selected_nets: Vec<u32>,
    /// Highest per-node probability seen.
    pub max_prob: f64,
}

/// Small timing summary captured at session build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionTiming {
    /// Worst negative slack, ps.
    pub wns_ps: f64,
    /// Total endpoints analyzed.
    pub endpoints: u64,
    /// Violating endpoints.
    pub violating: u64,
}

/// Stats snapshot for one warm session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// The spec this session was built from.
    pub spec: SessionSpec,
    /// Nets in the prepared (post-ECO) netlist.
    pub nets: u64,
    /// Inference path samples held warm.
    pub samples: u64,
    /// Timing at build.
    pub timing: SessionTiming,
    /// Whether the session carries a trained model.
    pub has_model: bool,
    /// Wall time the cold build took, seconds.
    pub build_seconds: f64,
}

/// A warm design session (see the module docs).
pub struct DesignSession {
    spec: SessionSpec,
    tech: TechConfig,
    netlist: Netlist,
    placement: Placement,
    route_policy: MlsPolicy,
    route_cfg: RouteConfig,
    routes: RouteDb,
    grid: RoutingGrid,
    congestion_scale: f64,
    timing: SessionTiming,
    samples: Vec<PathSample>,
    model: Option<GnnMls>,
    build_seconds: f64,
}

impl DesignSession {
    /// Cold build: generate, prepare, (for GNN-MLS: label + train),
    /// route, run STA, and extract the inference sample set.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] for unknown names or any failing flow
    /// stage.
    pub fn build(spec: &SessionSpec) -> Result<Self, SessionError> {
        let t0 = Instant::now();
        spec.validate().map_err(SessionError::from)?;
        // Fault seam: a spec that validates but whose build bombs —
        // the input the quarantine circuit breaker exists for.
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::SessionBuildFail) {
            return Err(SessionError::InjectedBuildFailure);
        }
        let tech = build_tech(&spec.tech, &spec.design)
            .ok_or_else(|| SessionError::UnknownTech(spec.tech.clone()))?;
        let design = build_design(&spec.design, &tech)
            .ok_or_else(|| SessionError::UnknownDesign(spec.design.clone()))?;
        let cfg = spec.flow_config();
        let (netlist, placement) = prepare(&design, &cfg)?;
        let sta_cfg = StaConfig::from_freq_mhz(spec.target_freq_mhz);

        let (route_policy, model) = match spec.policy {
            FlowPolicy::NoMls => (MlsPolicy::Disabled, None),
            FlowPolicy::Sota => (MlsPolicy::sota(), None),
            FlowPolicy::GnnMls => {
                let (d, model) =
                    learn_decisions_with_model(&netlist, &placement, &tech, &cfg, sta_cfg)?;
                let policy = if d.model_fallback {
                    MlsPolicy::sota()
                } else {
                    MlsPolicy::per_net_from(&netlist, d.selected)
                };
                (policy, model)
            }
        };

        let route_cfg = cfg.route_cfg();
        let mut router = Router::new(
            &netlist,
            &placement,
            &tech,
            route_policy.clone(),
            route_cfg.clone(),
        )?;
        router.route_all()?;
        let routes = router.db()?;
        let congestion_scale = router.congestion_scale();
        let grid = router.grid().clone();
        drop(router);

        // Prove the freshly routed DB before anything downstream —
        // STA here, and every warm query later — consumes it.
        crate::audit::check_routes(
            &netlist,
            &grid,
            &route_policy,
            &routes,
            gnnmls_route::AuditMode::Full,
            "session-build",
        )?;

        let report = analyze(&netlist, &routes, sta_cfg)?;
        let timing = SessionTiming {
            wns_ps: report.wns_ps(),
            endpoints: report.endpoint_count() as u64,
            violating: report.violating_endpoints() as u64,
        };
        let k = cfg.inference_paths.min(report.endpoint_count());
        let samples =
            extract_path_samples_par(&netlist, &placement, &tech, &report, k, cfg.threads);

        Ok(Self {
            spec: spec.clone(),
            tech,
            netlist,
            placement,
            route_policy,
            route_cfg,
            routes,
            grid,
            congestion_scale,
            timing,
            samples,
            model,
            build_seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// The spec this session was built from.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Re-audits the session's route DB. [`AuditMode::Cheap`] is what
    /// the serve daemon runs on every warm cache hit — O(nets) recount
    /// consistency, no global usage replay — so a session corrupted in
    /// memory surfaces as a typed error instead of a wrong answer.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Flow`] wrapping
    /// [`FlowError::AuditFailed`] when an invariant is violated.
    pub fn audit(&self, mode: AuditMode) -> Result<(), SessionError> {
        crate::audit::check_routes(
            &self.netlist,
            &self.grid,
            &self.route_policy,
            &self.routes,
            mode,
            "warm-session",
        )
        .map_err(SessionError::Flow)
    }

    /// The inference path samples held warm (worst paths first).
    pub fn samples(&self) -> &[PathSample] {
        &self.samples
    }

    /// The trained model, when the policy carries one.
    pub fn model(&self) -> Option<&GnnMls> {
        self.model.as_ref()
    }

    /// A router view over the committed routes: grid rebuilt, usage maps
    /// and congestion scale restored, **no search re-run**. What-if
    /// answers from this view are bit-identical to the cold router's.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Flow`] if the restore fails (never for a
    /// session built by [`DesignSession::build`]).
    pub fn router(&self) -> Result<Router<'_>, SessionError> {
        let mut r = Router::new(
            &self.netlist,
            &self.placement,
            &self.tech,
            self.route_policy.clone(),
            self.route_cfg.clone(),
        )?;
        r.restore_routes(&self.routes, self.congestion_scale)?;
        Ok(r)
    }

    /// Answers a what-if query: the route `net` would get with MLS
    /// forced on (`allow_mls`) or off, optionally under a reduced A*
    /// expansion budget (the serve daemon's deadline hook; clamped to
    /// the session's configured budget).
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownNet`] for an out-of-range id and
    /// [`SessionError::Flow`] when the detached route fails.
    pub fn what_if(
        &self,
        net: u32,
        allow_mls: bool,
        max_expansions: Option<usize>,
    ) -> Result<WhatIfResult, SessionError> {
        if net as usize >= self.netlist.net_count() {
            return Err(SessionError::UnknownNet {
                net,
                nets: self.netlist.net_count(),
            });
        }
        let router = self.router()?;
        let budget = max_expansions
            .unwrap_or(self.route_cfg.max_expansions)
            .min(self.route_cfg.max_expansions)
            .max(1);
        let ov = if allow_mls {
            MlsOverride::Allow
        } else {
            MlsOverride::Deny
        };
        let mut scratch = router.scratch();
        let r = router.what_if_budgeted(&mut scratch, NetId::new(net), ov, budget)?;
        Ok(WhatIfResult {
            net,
            wirelength_um: r.wirelength_um,
            f2f_crossings: r.f2f_crossings,
            is_mls: r.is_mls,
            pattern_sinks: r.pattern_sinks,
            total_cap_ff: r.total_cap_ff,
            sink_elmore_ps: r.sink_elmore_ps,
        })
    }

    /// Runs MLS inference over the worst `k` warm samples in one model
    /// forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::NoModel`] unless the session's policy is
    /// `GnnMls` with a usable model.
    pub fn infer(&self, k: usize) -> Result<InferResult, SessionError> {
        let model = self.model.as_ref().ok_or(SessionError::NoModel)?;
        let k = k.min(self.samples.len());
        let probs = model
            .predict_paths(&self.samples[..k])
            .map_err(FlowError::Model)?;
        Ok(self.infer_from_probs(k, &probs))
    }

    /// [`DesignSession::infer`], but through an externally supplied
    /// model instead of the session's own — the hot-swap path: a zoo
    /// model loaded after this session was built answers over the
    /// session's warm samples without rebuilding or mutating it.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Flow`] if the model rejects the samples
    /// (e.g. it was never trained).
    pub fn infer_with_model(&self, model: &GnnMls, k: usize) -> Result<InferResult, SessionError> {
        let k = k.min(self.samples.len());
        let probs = model
            .predict_paths(&self.samples[..k])
            .map_err(FlowError::Model)?;
        Ok(self.infer_from_probs(k, &probs))
    }

    /// Aggregates precomputed per-node probabilities for the worst `k`
    /// samples into an [`InferResult`] — the same rule as
    /// [`GnnMls::decide`] (max probability per net over eligible nodes
    /// of violating paths, threshold 0.5). The serve daemon coalesces
    /// several queued inference requests into a single
    /// [`GnnMls::predict_paths`] call and splits the probabilities back
    /// through here, so batched and unbatched answers are bit-identical.
    pub fn infer_from_probs(&self, k: usize, probs: &[Vec<f32>]) -> InferResult {
        let k = k.min(self.samples.len()).min(probs.len());
        let mut best: HashMap<NetId, f32> = HashMap::new();
        let mut max_prob = 0.0f32;
        for (s, p) in self.samples[..k].iter().zip(probs) {
            for &v in p {
                max_prob = max_prob.max(v);
            }
            if s.path.slack_ps >= 0.0 {
                continue;
            }
            for ((&net, &eligible), &v) in s.nets.iter().zip(&s.eligible).zip(p) {
                if !eligible {
                    continue;
                }
                let e = best.entry(net).or_insert(0.0);
                if v > *e {
                    *e = v;
                }
            }
        }
        let mut selected: Vec<u32> = best
            .into_iter()
            .filter(|&(_, p)| p > 0.5)
            .map(|(n, _)| n.index() as u32)
            .collect();
        selected.sort_unstable();
        InferResult {
            paths: k as u64,
            selected_nets: selected,
            max_prob: f64::from(max_prob),
        }
    }

    /// Stats snapshot.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            spec: self.spec.clone(),
            nets: self.netlist.net_count() as u64,
            samples: self.samples.len() as u64,
            timing: self.timing,
            has_model: self.model.is_some(),
            build_seconds: self.build_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_spec() -> SessionSpec {
        SessionSpec::fast("maeri16")
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let mut spec = fast_spec();
        spec.design = "nope".into();
        assert!(matches!(
            DesignSession::build(&spec),
            Err(SessionError::UnknownDesign(_))
        ));
        let mut spec = fast_spec();
        spec.tech = "nope".into();
        assert!(matches!(
            DesignSession::build(&spec),
            Err(SessionError::UnknownTech(_))
        ));
    }

    #[test]
    fn validation_catches_boundary_frequencies() {
        for freq in [0.0, -5.0, f64::NAN, f64::INFINITY, MAX_FREQ_MHZ * 10.0] {
            let mut spec = fast_spec();
            spec.target_freq_mhz = freq;
            assert!(
                matches!(spec.validate(), Err(ValidationError::BadFrequency(_))),
                "freq {freq} must be refused"
            );
            assert!(
                matches!(
                    DesignSession::build(&spec),
                    Err(SessionError::Invalid(ValidationError::BadFrequency(_)))
                ),
                "build must refuse freq {freq} before any work"
            );
        }
        fast_spec().validate().unwrap();
        for (design, _) in DESIGNS {
            SessionSpec::fast(design).validate().unwrap();
        }
    }

    #[test]
    fn every_design_maps_to_exactly_one_family() {
        for (design, _) in DESIGNS {
            let fam = design_family(design)
                .unwrap_or_else(|| panic!("design `{design}` must belong to a family"));
            assert!(FAMILIES.contains(&fam));
            assert!(design.starts_with(fam));
        }
        assert_eq!(design_family("maeri256"), Some("maeri"));
        assert_eq!(design_family("a7mini"), Some("a7"));
        assert_eq!(design_family("noc8x8"), Some("noc"));
        assert_eq!(design_family("nope"), None);
    }

    #[test]
    fn bad_model_validation_error_displays_family_and_reason() {
        let e = ValidationError::BadModel {
            family: "maeri".into(),
            why: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("maeri") && msg.contains("checksum mismatch"),
            "{msg}"
        );
    }

    #[test]
    fn injected_build_failure_is_typed() {
        let guard = gnnmls_faults::install(&gnnmls_faults::FaultPlan::single(
            gnnmls_faults::FaultSite::SessionBuildFail,
            1,
        ));
        assert!(matches!(
            DesignSession::build(&fast_spec()),
            Err(SessionError::InjectedBuildFailure)
        ));
        drop(guard);
    }

    #[test]
    fn fresh_session_audits_clean_and_catches_corruption() {
        let mut session = DesignSession::build(&fast_spec()).unwrap();
        session.audit(AuditMode::Cheap).unwrap();
        session.audit(AuditMode::Full).unwrap();
        // Corrupt one edge count in memory: the cheap (warm-hit) audit
        // must catch it.
        let idx = session
            .routes
            .nets
            .iter()
            .position(|r| r.tree.nodes.len() > 1)
            .unwrap();
        session.routes.nets[idx].f2f_crossings += 1;
        match session.audit(AuditMode::Cheap) {
            Err(SessionError::Flow(FlowError::AuditFailed { stage, .. })) => {
                assert_eq!(stage, "warm-session");
            }
            other => panic!("expected AuditFailed, got {other:?}"),
        }
    }

    #[test]
    fn cache_key_separates_specs() {
        let a = fast_spec();
        let mut b = fast_spec();
        assert_eq!(a.cache_key(), b.cache_key());
        b.policy = FlowPolicy::Sota;
        assert_ne!(a.cache_key(), b.cache_key());
        let mut c = fast_spec();
        c.fast = false;
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = fast_spec().with_policy(FlowPolicy::GnnMls);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SessionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn warm_what_if_is_bit_identical_to_cold() {
        let spec = fast_spec();
        let session = DesignSession::build(&spec).unwrap();
        // "Cold" = an independently built session of the same spec; its
        // first what-if is exactly what a one-shot CLI run computes.
        let cold = DesignSession::build(&spec).unwrap();
        let mut nets_checked = 0;
        for net in 0..64u32 {
            let a = session.what_if(net, true, None);
            let b = cold.what_if(net, true, None);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "warm/cold diverged on net {net}");
                    nets_checked += 1;
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("outcome diverged on net {net}: {a:?} vs {b:?}"),
            }
        }
        assert!(nets_checked > 0, "no nets compared");
        // Out-of-range nets are typed errors.
        assert!(matches!(
            session.what_if(u32::MAX, true, None),
            Err(SessionError::UnknownNet { .. })
        ));
    }

    #[test]
    fn no_model_session_refuses_inference() {
        let session = DesignSession::build(&fast_spec()).unwrap();
        assert!(matches!(session.infer(5), Err(SessionError::NoModel)));
        let stats = session.stats();
        assert!(!stats.has_model);
        assert!(stats.nets > 0);
        assert!(stats.samples > 0);
        assert!(stats.build_seconds >= 0.0);
        // Stats round-trip through the wire encoding.
        let json = serde_json::to_string(&stats).unwrap();
        let back: SessionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }

    #[test]
    fn gnnmls_session_batched_inference_matches_unbatched() {
        let spec = fast_spec().with_policy(FlowPolicy::GnnMls);
        let session = DesignSession::build(&spec).unwrap();
        let model = session.model().expect("gnn-mls session keeps its model");
        let k = session.samples().len().min(20);
        let unbatched = session.infer(k).unwrap();
        // Simulate the serve micro-batch: one forward pass, then the
        // shared aggregation.
        let probs = model.predict_paths(&session.samples()[..k]).unwrap();
        let batched = session.infer_from_probs(k, &probs);
        assert_eq!(unbatched, batched);
    }

    #[test]
    fn deadline_budget_degrades_gracefully() {
        let session = DesignSession::build(&fast_spec()).unwrap();
        let net = (0..u32::try_from(session.stats().nets).unwrap())
            .find(|&n| session.what_if(n, false, None).is_ok())
            .expect("some net answers");
        let starved = session.what_if(net, false, Some(1)).unwrap();
        assert!(starved.pattern_sinks > 0, "starved budget must degrade");
    }
}

//! Crash-consistent durable storage.
//!
//! Every persistent artifact the flow writes — stage checkpoints, zoo
//! registry files, bench ledgers, drain-stats envelopes — funnels
//! through [`durable_write`], which follows the classic
//! crash-consistency protocol:
//!
//! 1. write the full payload to a temp file **in the same directory**
//!    (`<file>.tmp`, so the rename below cannot cross filesystems);
//! 2. `fsync` the temp file (the bytes are on the platter before any
//!    name points at them);
//! 3. atomically `rename` the temp file over the destination;
//! 4. `fsync` the parent directory (the rename itself is durable).
//!
//! A crash at any point leaves either the complete old file or the
//! complete new file — never a torn hybrid. What a crash *can* leave is
//! an orphaned `*.tmp` beside the intact destination; [`scrub_dir`]
//! (and the `gnnmls fsck` CLI verb on top of it) cleans those up,
//! quarantines detectably-damaged artifacts to `*.damaged`, and emits a
//! versioned [`ScrubReport`].
//!
//! Failures are a typed [`StorageError`] taxonomy, and four
//! deterministic `gnnmls-faults` seams ([`gnnmls_faults::FaultSite::DiskFull`],
//! [`gnnmls_faults::FaultSite::TornWrite`],
//! [`gnnmls_faults::FaultSite::RenameCrash`],
//! [`gnnmls_faults::FaultSite::ReadEio`]) simulate the disk misbehaving
//! at each protocol step so the recovery path is tested, not assumed.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::checkpoint::{inspect_envelope, EnvelopeStatus};

/// Schema version of the [`ScrubReport`] JSON emitted by `gnnmls fsck`.
pub const FSCK_SCHEMA_VERSION: u32 = 1;

/// Suffix of the in-same-directory temp file a durable write stages
/// its bytes in before the atomic rename.
pub const TMP_SUFFIX: &str = ".tmp";

/// Suffix damaged artifacts are quarantined under by [`scrub_dir`].
pub const DAMAGED_SUFFIX: &str = ".damaged";

/// Typed failures of the durable-storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// The device ran out of space mid-write (real ENOSPC, or the
    /// `disk-full` fault seam); the destination file is untouched.
    DiskFull {
        /// Destination the write was headed for.
        path: PathBuf,
    },
    /// Any other filesystem failure.
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A write was cut short (simulated power loss): only a truncated
    /// temp file survives; the destination file is untouched.
    TornWrite {
        /// Destination the write was headed for.
        path: PathBuf,
    },
    /// The write crashed between fsync(tmp) and the rename: the
    /// complete new bytes sit orphaned in `<path>.tmp` beside the
    /// intact old file.
    OrphanTmp {
        /// Destination the write was headed for.
        path: PathBuf,
    },
    /// An artifact's bytes no longer match their recorded checksum.
    HashMismatch {
        /// The damaged file.
        path: PathBuf,
    },
    /// An artifact declares a format version newer than this build.
    UnknownVersion {
        /// The future-format file.
        path: PathBuf,
        /// Version the file declares.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DiskFull { path } => {
                write!(f, "disk full writing {}", path.display())
            }
            StorageError::Io { path, error } => {
                write!(f, "storage io on {}: {error}", path.display())
            }
            StorageError::TornWrite { path } => {
                write!(f, "torn write to {} (truncated temp file)", path.display())
            }
            StorageError::OrphanTmp { path } => write!(
                f,
                "write to {} crashed before rename (orphan temp file)",
                path.display()
            ),
            StorageError::HashMismatch { path } => {
                write!(f, "{} does not match its checksum", path.display())
            }
            StorageError::UnknownVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{} declares format version {found}, newer than this \
                 build supports (max {supported})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StorageError {}

/// ENOSPC on every unix libc.
#[cfg(unix)]
const ENOSPC: i32 = 28;

fn io_err(path: &Path, error: std::io::Error) -> StorageError {
    #[cfg(unix)]
    if error.raw_os_error() == Some(ENOSPC) {
        return StorageError::DiskFull {
            path: path.to_path_buf(),
        };
    }
    StorageError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// The temp-file path a durable write of `path` stages into:
/// `<path>.tmp`, always in the same directory as `path`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// The quarantine path [`scrub_dir`] moves a damaged `path` to:
/// `<path>.damaged`.
pub fn damaged_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(DAMAGED_SUFFIX);
    PathBuf::from(name)
}

/// A crash-consistent writer for one destination file.
///
/// [`DurableFile::write`] runs the full tmp → write → fsync → rename →
/// fsync(dir) protocol; the free function [`durable_write`] is the
/// one-shot convenience most callers use.
#[derive(Clone, Debug)]
pub struct DurableFile {
    path: PathBuf,
}

impl DurableFile {
    /// A writer targeting `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The destination file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically and durably replaces the destination with `bytes`.
    ///
    /// Parent directories are created as needed. On any error the
    /// destination file still holds its complete previous contents
    /// (or is still absent); at worst a `*.tmp` file is left beside it
    /// for [`scrub_dir`] to collect.
    ///
    /// # Errors
    ///
    /// Returns the [`StorageError`] variant matching the failed
    /// protocol step; real ENOSPC maps to [`StorageError::DiskFull`].
    pub fn write(&self, bytes: &[u8]) -> Result<(), StorageError> {
        let path = &self.path;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| io_err(path, e))?;
            }
        }
        let tmp = tmp_path(path);
        // Fault seams model the disk failing at each protocol step.
        // Each leaves exactly the residue a real crash would: a partial
        // or complete tmp file, and an untouched destination.
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::DiskFull) {
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return Err(StorageError::DiskFull { path: path.clone() });
        }
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::TornWrite) {
            let _ = fs::write(&tmp, &bytes[..bytes.len() * 2 / 3]);
            return Err(StorageError::TornWrite { path: path.clone() });
        }
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        if gnnmls_faults::fire(gnnmls_faults::FaultSite::RenameCrash) {
            // The new bytes are complete and fsynced but never renamed:
            // a valid orphan beside the intact old file.
            return Err(StorageError::OrphanTmp { path: path.clone() });
        }
        fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        sync_parent_dir(path)?;
        Ok(())
    }
}

/// Makes the rename itself durable by fsyncing the parent directory
/// (on unix; elsewhere the rename is as durable as the platform makes
/// it).
fn sync_parent_dir(path: &Path) -> Result<(), StorageError> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        let d = fs::File::open(dir).map_err(|e| io_err(dir, e))?;
        d.sync_all().map_err(|e| io_err(dir, e))?;
    }
    Ok(())
}

/// One-shot crash-consistent write: see [`DurableFile::write`].
///
/// # Errors
///
/// Returns [`StorageError`] on any protocol-step failure.
pub fn durable_write(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    DurableFile::new(path).write(bytes)
}

/// Reads a persistent artifact back, with the
/// [`gnnmls_faults::FaultSite::ReadEio`] seam standing in for a
/// transient device error (the on-disk bytes are untouched; a retry
/// succeeds).
///
/// # Errors
///
/// Returns [`StorageError::Io`] for any read failure, including the
/// injected EIO.
pub fn durable_read(path: &Path) -> Result<Vec<u8>, StorageError> {
    if gnnmls_faults::fire(gnnmls_faults::FaultSite::ReadEio) {
        return Err(StorageError::Io {
            path: path.to_path_buf(),
            error: std::io::Error::from_raw_os_error(5),
        });
    }
    fs::read(path).map_err(|e| io_err(path, e))
}

/// What [`scrub_dir`] decided one artifact is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactClass {
    /// Intact: envelope (or JSON) validates.
    Valid,
    /// A `*.tmp` file left by a crashed durable write.
    OrphanTmp,
    /// Framing damage: truncated payload, malformed or non-UTF-8
    /// header — the shape a torn write leaves.
    Torn,
    /// Well-formed framing but the payload no longer matches its
    /// checksum (bit rot or a swapped file).
    HashMismatch,
    /// A well-formed envelope from a format version newer than this
    /// build; left intact for the newer build that wrote it.
    UnknownVersion,
}

impl fmt::Display for ArtifactClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactClass::Valid => "valid",
            ArtifactClass::OrphanTmp => "orphan-tmp",
            ArtifactClass::Torn => "torn",
            ArtifactClass::HashMismatch => "hash-mismatch",
            ArtifactClass::UnknownVersion => "unknown-version",
        })
    }
}

/// What [`scrub_dir`] (or `Registry::scrub`) did about a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairAction {
    /// Nothing needed (valid) or nothing safe to do (unknown-version
    /// files are left for the newer build that wrote them).
    None,
    /// Deleted an orphan temp file (the destination holds the complete
    /// old state).
    DeletedTmp,
    /// Renamed the damaged file to `*.damaged` so readers see a clean
    /// absence instead of garbage.
    Quarantined,
    /// Dropped a registry manifest entry so `latest()` falls back to
    /// the previous good version.
    RolledBack,
    /// Indexed a complete, valid checkpoint the manifest had not yet
    /// recorded (crash landed after the data write, before the index
    /// write).
    Adopted,
    /// Rewrote a damaged or stale `MANIFEST.json` from the surviving
    /// valid checkpoints.
    RebuiltManifest,
    /// A repair was attempted and itself failed; the artifact is left
    /// as found.
    Failed,
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepairAction::None => "none",
            RepairAction::DeletedTmp => "deleted-tmp",
            RepairAction::Quarantined => "quarantined",
            RepairAction::RolledBack => "rolled-back",
            RepairAction::Adopted => "adopted",
            RepairAction::RebuiltManifest => "rebuilt-manifest",
            RepairAction::Failed => "repair-failed",
        })
    }
}

/// One artifact's scrub verdict.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScrubFinding {
    /// File name relative to the scrubbed directory.
    pub file: String,
    /// What the artifact is.
    pub class: ArtifactClass,
    /// What was done about it.
    pub action: RepairAction,
    /// Human-readable specifics.
    pub detail: String,
}

/// The versioned report `gnnmls fsck` emits: every anomalous artifact,
/// plus counts. Valid artifacts are counted but not listed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScrubReport {
    /// [`FSCK_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Directory scrubbed.
    pub dir: String,
    /// Artifacts examined (valid ones included).
    pub scanned: u64,
    /// Artifacts that validated clean.
    pub valid: u64,
    /// Anomalies repaired (tmp deleted, quarantined, rolled back,
    /// adopted, manifest rebuilt).
    pub repaired: u64,
    /// Anomalies a repair attempt could not fix, left as found.
    pub unrepairable: u64,
    /// Every non-valid artifact, in directory order.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// A fresh report for `dir`.
    pub fn new(dir: &Path) -> Self {
        Self {
            schema_version: FSCK_SCHEMA_VERSION,
            dir: dir.display().to_string(),
            scanned: 0,
            valid: 0,
            repaired: 0,
            unrepairable: 0,
            findings: Vec::new(),
        }
    }

    /// True when nothing needed repair.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when every anomaly found was repaired (the directory is in
    /// a consistent state, even if degraded).
    pub fn consistent(&self) -> bool {
        self.unrepairable == 0
    }

    /// Records a finding and bumps the matching counters.
    pub fn push(
        &mut self,
        file: String,
        class: ArtifactClass,
        action: RepairAction,
        detail: String,
    ) {
        match action {
            RepairAction::Failed => self.unrepairable += 1,
            RepairAction::None => {}
            _ => self.repaired += 1,
        }
        self.findings.push(ScrubFinding {
            file,
            class,
            action,
            detail,
        });
    }

    /// Folds another report (e.g. a per-subdir pass) into this one.
    pub fn merge(&mut self, other: ScrubReport) {
        self.scanned += other.scanned;
        self.valid += other.valid;
        self.repaired += other.repaired;
        self.unrepairable += other.unrepairable;
        self.findings.extend(other.findings);
    }
}

/// Quarantines `path` to `<path>.damaged`, recording the outcome in
/// `report`.
pub(crate) fn quarantine(
    report: &mut ScrubReport,
    path: &Path,
    name: &str,
    class: ArtifactClass,
    detail: String,
) {
    let dest = damaged_path(path);
    match fs::rename(path, &dest) {
        Ok(()) => report.push(name.to_string(), class, RepairAction::Quarantined, detail),
        Err(e) => report.push(
            name.to_string(),
            class,
            RepairAction::Failed,
            format!("{detail}; quarantine failed: {e}"),
        ),
    }
}

/// Classifies one envelope (`*.ckpt`) file's bytes.
pub fn classify_envelope(bytes: &[u8]) -> (ArtifactClass, String) {
    match inspect_envelope(bytes) {
        EnvelopeStatus::Valid { stage, version } => (
            ArtifactClass::Valid,
            format!("stage `{stage}` format v{version}"),
        ),
        EnvelopeStatus::FutureVersion { found, supported } => (
            ArtifactClass::UnknownVersion,
            format!("format v{found}, newer than supported v{supported}"),
        ),
        EnvelopeStatus::ChecksumMismatch => (
            ArtifactClass::HashMismatch,
            "payload does not match its checksum".to_string(),
        ),
        EnvelopeStatus::Malformed(why) => (ArtifactClass::Torn, why),
    }
}

/// Scans `dir` (non-recursively) and repairs what the rules allow:
///
/// - `*.tmp` — orphan of a crashed durable write; **deleted** (the
///   destination holds the complete old state; a flow rerun recreates
///   the new one deterministically).
/// - `*.ckpt` — envelope-checked; torn or hash-mismatched files are
///   **quarantined** to `*.damaged`, future-version files are left
///   intact and reported.
/// - `*.json` — must parse as JSON; damaged ones are **quarantined**.
/// - `*.damaged` — already quarantined, skipped.
/// - anything else — not a storage artifact, skipped.
///
/// A missing directory is an empty (clean) report. The scan is in
/// sorted name order so reports are deterministic.
///
/// # Errors
///
/// Returns [`StorageError::Io`] only if the directory itself cannot be
/// listed; per-file damage lands in the report.
pub fn scrub_dir(dir: &Path) -> Result<ScrubReport, StorageError> {
    let mut report = ScrubReport::new(dir);
    let entries = match fs::read_dir(dir) {
        Ok(it) => it,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(io_err(dir, e)),
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        let path = dir.join(&name);
        if name.ends_with(DAMAGED_SUFFIX) {
            continue;
        }
        if name.ends_with(TMP_SUFFIX) {
            report.scanned += 1;
            match fs::remove_file(&path) {
                Ok(()) => report.push(
                    name,
                    ArtifactClass::OrphanTmp,
                    RepairAction::DeletedTmp,
                    "orphan temp file from a crashed write".to_string(),
                ),
                Err(e) => report.push(
                    name,
                    ArtifactClass::OrphanTmp,
                    RepairAction::Failed,
                    format!("orphan temp file; delete failed: {e}"),
                ),
            }
            continue;
        }
        if name.ends_with(".ckpt") {
            report.scanned += 1;
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    report.push(
                        name,
                        ArtifactClass::Torn,
                        RepairAction::Failed,
                        format!("cannot read: {e}"),
                    );
                    continue;
                }
            };
            let (class, detail) = classify_envelope(&bytes);
            match class {
                ArtifactClass::Valid => report.valid += 1,
                ArtifactClass::UnknownVersion => {
                    report.push(name, class, RepairAction::None, detail)
                }
                _ => quarantine(&mut report, &path, &name, class, detail),
            }
            continue;
        }
        if name.ends_with(".json") {
            report.scanned += 1;
            let ok = fs::read_to_string(&path)
                .ok()
                .and_then(|t| serde_json::from_str::<serde_json::Value>(&t).ok())
                .is_some();
            if ok {
                report.valid += 1;
            } else {
                quarantine(
                    &mut report,
                    &path,
                    &name,
                    ArtifactClass::Torn,
                    "not valid JSON".to_string(),
                );
            }
        }
    }
    if !report.clean() {
        gnnmls_obs::warn(
            "store",
            &format!(
                "scrub of {} repaired {} artifact(s), {} unrepairable",
                dir.display(),
                report.repaired,
                report.unrepairable
            ),
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_faults::{install, FaultPlan, FaultSite};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gnnmls_store_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_write_replaces_and_leaves_no_tmp() {
        let dir = scratch("basic");
        let path = dir.join("a.json");
        durable_write(&path, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}");
        durable_write(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}");
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn durable_write_creates_parents() {
        let dir = scratch("parents");
        let path = dir.join("x").join("y").join("z.ckpt");
        durable_write(&path, b"data").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"data");
    }

    #[test]
    fn disk_full_seam_leaves_old_state_and_partial_tmp() {
        let dir = scratch("diskfull");
        let path = dir.join("f.json");
        durable_write(&path, b"old-contents").unwrap();
        let _g = install(&FaultPlan::single(FaultSite::DiskFull, 1));
        match durable_write(&path, b"new-contents-longer") {
            Err(StorageError::DiskFull { .. }) => {}
            other => panic!("expected DiskFull, got {other:?}"),
        }
        assert_eq!(fs::read(&path).unwrap(), b"old-contents");
        let tmp = fs::read(tmp_path(&path)).unwrap();
        assert!(tmp.len() < b"new-contents-longer".len());
    }

    #[test]
    fn torn_write_seam_leaves_old_state_and_truncated_tmp() {
        let dir = scratch("torn");
        let path = dir.join("f.json");
        durable_write(&path, b"old-contents").unwrap();
        let _g = install(&FaultPlan::single(FaultSite::TornWrite, 1));
        match durable_write(&path, b"the-new-contents") {
            Err(StorageError::TornWrite { .. }) => {}
            other => panic!("expected TornWrite, got {other:?}"),
        }
        assert_eq!(fs::read(&path).unwrap(), b"old-contents");
        assert!(tmp_path(&path).exists());
    }

    #[test]
    fn rename_crash_seam_orphans_complete_new_bytes() {
        let dir = scratch("renamecrash");
        let path = dir.join("f.json");
        durable_write(&path, b"old-contents").unwrap();
        let _g = install(&FaultPlan::single(FaultSite::RenameCrash, 1));
        match durable_write(&path, b"new-contents") {
            Err(StorageError::OrphanTmp { .. }) => {}
            other => panic!("expected OrphanTmp, got {other:?}"),
        }
        assert_eq!(fs::read(&path).unwrap(), b"old-contents");
        assert_eq!(fs::read(tmp_path(&path)).unwrap(), b"new-contents");
    }

    #[test]
    fn read_eio_seam_is_typed_and_transient() {
        let dir = scratch("eio");
        let path = dir.join("f.json");
        durable_write(&path, b"payload").unwrap();
        let g = install(&FaultPlan::single(FaultSite::ReadEio, 1));
        assert!(matches!(durable_read(&path), Err(StorageError::Io { .. })));
        // The shot is consumed; a retry sees the untouched bytes.
        assert_eq!(durable_read(&path).unwrap(), b"payload");
        drop(g);
    }

    #[test]
    fn scrub_deletes_orphan_tmps_and_quarantines_damage() {
        let dir = scratch("scrub");
        durable_write(&dir.join("good.json"), b"{\"ok\":true}").unwrap();
        fs::write(dir.join("stale.ckpt.tmp"), b"partial").unwrap();
        fs::write(dir.join("bad.json"), b"{not json").unwrap();
        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.schema_version, FSCK_SCHEMA_VERSION);
        assert_eq!(report.valid, 1);
        assert_eq!(report.repaired, 2);
        assert_eq!(report.unrepairable, 0);
        assert!(!dir.join("stale.ckpt.tmp").exists());
        assert!(!dir.join("bad.json").exists());
        assert!(dir.join("bad.json.damaged").exists());
        // A second pass is clean: scrub is idempotent.
        let again = scrub_dir(&dir).unwrap();
        assert!(again.clean(), "{:?}", again.findings);
    }

    #[test]
    fn scrub_of_missing_dir_is_clean() {
        let dir = scratch("missing");
        fs::remove_dir_all(&dir).unwrap();
        let report = scrub_dir(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(report.scanned, 0);
    }

    #[test]
    fn scrub_report_roundtrips_as_json() {
        let dir = scratch("reportjson");
        fs::write(dir.join("junk.ckpt"), b"not an envelope").unwrap();
        let report = scrub_dir(&dir).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ScrubReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, report.schema_version);
        assert_eq!(back.findings.len(), report.findings.len());
        assert_eq!(back.findings[0].class, ArtifactClass::Torn);
        assert_eq!(back.findings[0].action, RepairAction::Quarantined);
    }

    #[test]
    fn storage_errors_display() {
        let e = StorageError::DiskFull {
            path: PathBuf::from("/x/y"),
        };
        assert!(e.to_string().contains("disk full"));
        let e = StorageError::UnknownVersion {
            path: PathBuf::from("/x/y"),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}

//! The invariant auditor must pass clean on the bench designs: a
//! freshly built session (which already survived the Full post-build
//! audit) re-audits clean in both modes, and its report envelope
//! checks out against its own run.

use gnn_mls::session::{DesignSession, SessionSpec, DESIGNS};
use gnn_mls::AuditMode;

fn audit_design(name: &str) {
    let spec = SessionSpec::fast(name);
    // `build` itself runs a Full audit post-route; re-run both modes on
    // the warm session the way the serve daemon does on cache hits.
    let session = DesignSession::build(&spec).unwrap_or_else(|e| panic!("{name}: build: {e}"));
    session
        .audit(AuditMode::Cheap)
        .unwrap_or_else(|e| panic!("{name}: cheap audit: {e}"));
    session
        .audit(AuditMode::Full)
        .unwrap_or_else(|e| panic!("{name}: full audit: {e}"));
}

#[test]
fn auditor_is_clean_on_the_small_bench_designs() {
    audit_design("maeri16");
}

#[test]
#[ignore = "builds every bench design; run explicitly or via the CI soak job"]
fn auditor_is_clean_on_every_bench_design() {
    for (name, _) in DESIGNS {
        audit_design(name);
    }
}

//! Crash-point property harness for the durable-storage layer.
//!
//! The property: for every migrated write site (stage checkpoints,
//! JSON ledgers/manifests, zoo model checkpoints, trained-model saves)
//! and every disk seam (`disk-full`, `torn-write`, `rename-crash`), a
//! simulated crash mid-write followed by restart + `scrub()` always
//! lands on either the **complete old** or the **complete new** state —
//! never a torn read, never a leftover temp file. `read-eio` must be a
//! typed, transient error that leaves the on-disk bytes untouched.

use std::fs;
use std::path::{Path, PathBuf};

use gnn_mls::checkpoint::{
    load_stage, save_stage, write_json_file, CheckpointError, ModelVersion, ZooModelCheckpoint,
};
use gnn_mls::model::ModelConfig;
use gnn_mls::store::{durable_read, scrub_dir, StorageError};
use gnn_mls::GnnMls;
use gnnmls_faults::{install, FaultPlan, FaultSite};

/// The three write-side disk seams; `read-eio` is read-side and tested
/// separately.
const WRITE_SEAMS: [FaultSite; 3] = [
    FaultSite::DiskFull,
    FaultSite::TornWrite,
    FaultSite::RenameCrash,
];

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("crash_{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn no_tmp_left(dir: &Path) -> bool {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .all(|e| !e.file_name().to_string_lossy().ends_with(".tmp"))
}

#[test]
fn stage_checkpoint_survives_crash_at_every_seam() {
    let old = vec![1u32; 8];
    let new = vec![2u32; 16];
    for site in WRITE_SEAMS {
        let dir = scratch(&format!("stage_{site}"));
        save_stage(&dir, "labels", &old).unwrap();
        let guard = install(&FaultPlan::single(site, 1));
        let err = save_stage(&dir, "labels", &new).unwrap_err();
        drop(guard);
        assert!(
            matches!(err, CheckpointError::Storage(_)),
            "{site}: expected a typed storage error, got {err:?}"
        );
        // Restart + fsck.
        let report = scrub_dir(&dir).unwrap();
        assert!(report.consistent(), "{site}: {:?}", report.findings);
        assert!(no_tmp_left(&dir), "{site}: orphan tmp survived fsck");
        // The surviving checkpoint is complete old or complete new —
        // never torn.
        let back: Vec<u32> = load_stage(&dir, "labels").unwrap().unwrap();
        assert!(back == old || back == new, "{site}: torn read: {back:?}");
    }
}

#[test]
fn first_stage_write_crash_recovers_to_clean_absence() {
    for site in WRITE_SEAMS {
        let dir = scratch(&format!("stage_first_{site}"));
        let guard = install(&FaultPlan::single(site, 1));
        assert!(save_stage(&dir, "labels", &vec![3u32; 4]).is_err());
        drop(guard);
        scrub_dir(&dir).unwrap();
        assert!(no_tmp_left(&dir), "{site}");
        // The stage was never durably written: a resumed flow sees a
        // clean "never checkpointed", not garbage.
        let back = load_stage::<Vec<u32>>(&dir, "labels").unwrap();
        assert!(back.is_none(), "{site}: phantom checkpoint {back:?}");
    }
}

#[test]
fn json_ledger_survives_crash_at_every_seam() {
    for site in WRITE_SEAMS {
        let dir = scratch(&format!("ledger_{site}"));
        let path = dir.join("BENCH_suite.json");
        write_json_file(&path, &vec![10u32, 20]).unwrap();
        let guard = install(&FaultPlan::single(site, 1));
        let err = write_json_file(&path, &vec![30u32, 40, 50]).unwrap_err();
        drop(guard);
        assert!(
            matches!(err, CheckpointError::Storage(_)),
            "{site}: {err:?}"
        );
        let report = scrub_dir(&dir).unwrap();
        assert!(report.consistent(), "{site}: {:?}", report.findings);
        assert!(no_tmp_left(&dir), "{site}");
        let back: Vec<u32> = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        assert!(
            back == vec![10, 20] || back == vec![30, 40, 50],
            "{site}: torn ledger {back:?}"
        );
    }
}

fn zoo_checkpoint(version: ModelVersion, hashes: Vec<u64>) -> ZooModelCheckpoint {
    ZooModelCheckpoint {
        family: "maeri".into(),
        version,
        corpus_hashes: hashes,
        pretrain_epochs: 1,
        finetune_epochs: 1,
        model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
    }
}

#[test]
fn zoo_checkpoint_survives_crash_at_every_seam() {
    let old = zoo_checkpoint(ModelVersion::new(1, 0, 0), vec![1, 2]);
    let new = zoo_checkpoint(ModelVersion::new(1, 1, 0), vec![1, 2, 3]);
    for site in WRITE_SEAMS {
        let dir = scratch(&format!("zoo_{site}"));
        let path = dir.join("maeri.ckpt");
        old.save(&path).unwrap();
        let guard = install(&FaultPlan::single(site, 1));
        assert!(new.save(&path).is_err(), "{site}");
        drop(guard);
        let report = scrub_dir(&dir).unwrap();
        assert!(report.consistent(), "{site}: {:?}", report.findings);
        assert!(no_tmp_left(&dir), "{site}");
        let back = ZooModelCheckpoint::load(&path).unwrap();
        assert!(
            back.corpus_hashes == old.corpus_hashes || back.corpus_hashes == new.corpus_hashes,
            "{site}: torn zoo checkpoint"
        );
    }
}

#[test]
fn model_save_survives_crash_at_every_seam() {
    let model = GnnMls::new(ModelConfig::default());
    for site in WRITE_SEAMS {
        let dir = scratch(&format!("model_{site}"));
        let path = dir.join("model.ckpt");
        model.save_json(&path).unwrap();
        let guard = install(&FaultPlan::single(site, 1));
        assert!(model.save_json(&path).is_err(), "{site}");
        drop(guard);
        let report = scrub_dir(&dir).unwrap();
        assert!(report.consistent(), "{site}: {:?}", report.findings);
        assert!(no_tmp_left(&dir), "{site}");
        // Old and new are the same model here; the property is simply
        // that the file still restores cleanly after the crash.
        GnnMls::load_json(&path).unwrap();
    }
}

#[test]
fn read_eio_is_typed_and_transient_at_every_read_site() {
    let dir = scratch("eio");
    save_stage(&dir, "labels", &vec![5u32; 3]).unwrap();
    let model = GnnMls::new(ModelConfig::default());
    let model_path = dir.join("model.ckpt");
    model.save_json(&model_path).unwrap();
    let zoo = zoo_checkpoint(ModelVersion::new(1, 0, 0), vec![9]);
    let zoo_path = dir.join("zoo.ckpt");
    zoo.save(&zoo_path).unwrap();

    // Each read site: one injected EIO is a typed error; the retry
    // reads the untouched bytes.
    {
        let _g = install(&FaultPlan::single(FaultSite::ReadEio, 1));
        assert!(matches!(
            load_stage::<Vec<u32>>(&dir, "labels"),
            Err(CheckpointError::Io(_))
        ));
    }
    assert_eq!(
        load_stage::<Vec<u32>>(&dir, "labels").unwrap().unwrap(),
        vec![5u32; 3]
    );
    {
        let _g = install(&FaultPlan::single(FaultSite::ReadEio, 1));
        assert!(matches!(
            GnnMls::load_json(&model_path),
            Err(CheckpointError::Io(_))
        ));
    }
    GnnMls::load_json(&model_path).unwrap();
    {
        let _g = install(&FaultPlan::single(FaultSite::ReadEio, 1));
        assert!(matches!(
            ZooModelCheckpoint::load(&zoo_path),
            Err(CheckpointError::Io(_))
        ));
    }
    ZooModelCheckpoint::load(&zoo_path).unwrap();
    {
        let _g = install(&FaultPlan::single(FaultSite::ReadEio, 1));
        assert!(matches!(
            durable_read(&zoo_path),
            Err(StorageError::Io { .. })
        ));
    }
    durable_read(&zoo_path).unwrap();
}

#[test]
fn scrub_quarantines_bitrot_but_keeps_the_flow_resumable() {
    // Bit rot (not a crash) on a stage checkpoint: fsck quarantines it
    // to *.damaged so the next resume recomputes instead of failing.
    let dir = scratch("bitrot");
    save_stage(&dir, "labels", &vec![7u32; 6]).unwrap();
    let path = dir.join("labels.ckpt");
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    fs::write(&path, &bytes).unwrap();
    let report = scrub_dir(&dir).unwrap();
    assert_eq!(report.repaired, 1);
    assert!(report.consistent());
    assert!(!path.exists());
    assert!(dir.join("labels.ckpt.damaged").exists());
    assert!(load_stage::<Vec<u32>>(&dir, "labels").unwrap().is_none());
}

//! Stuck-at fault universe and structural detectability under MLS opens.
//!
//! Detectability is analyzed structurally (SCOAP-flavored):
//!
//! - every connected pin contributes two faults (SA0/SA1);
//! - a fault is detected iff its site is *controllable* (reachable forward
//!   from a scan/PI control point without traversing an open) and
//!   *observable* (reaches a scan/PO observe point likewise), and is not
//!   in the small deterministic "ATPG-hard" residue that models the
//!   96–98 % practical ceiling of pattern generation;
//! - an **open** is any route-tree branch of an *MLS net* that crosses
//!   the F2F bond: at die-level test the far-side segment is missing, so
//!   those sinks are uncontrollable and (if all sinks are cut) the driver
//!   cone unobservable. True 3D nets are boundary-tested by the base flow
//!   and stay intact here.
//! - each bond crossing also contributes two *pad faults*; the DFT mode
//!   determines how many are detectable (none / outgoing only /
//!   both — Figure 6).

use serde::{Deserialize, Serialize};

use gnnmls_netlist::graph::CircuitDag;
use gnnmls_netlist::{Netlist, PinDir};
use gnnmls_route::{NetRoute, RouteDb};

/// Which MLS DFT strategy is assumed active during die-level test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DftMode {
    /// No MLS DFT: opens cut controllability/observability.
    None,
    /// Net-based DFT (Figure 6a): a test MUX at each crossing restores
    /// control and observation; one of the two pad faults per crossing is
    /// detected.
    NetBased,
    /// Wire-based DFT (Figure 6b): a shadow scan FF registers the
    /// upstream signal and drives downstream; both pad faults per
    /// crossing are detected.
    WireBased,
}

/// Fraction of otherwise-detectable faults left undetected by pattern
/// generation limits (deterministic pseudo-random residue).
const ATPG_HARD_PER_MILLE: u64 = 17;

/// Coverage analysis result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Total stuck-at faults (pin faults + bond-pad faults).
    pub total_faults: usize,
    /// Detected faults.
    pub detected_faults: usize,
    /// Faults undetected because an MLS open cut their cone.
    pub undetected_open: usize,
    /// Faults undetected as ATPG-hard residue.
    pub undetected_hard: usize,
    /// Undetected bond-pad faults.
    pub undetected_pad: usize,
}

impl FaultReport {
    /// Test coverage in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.total_faults == 0 {
            return 100.0;
        }
        100.0 * self.detected_faults as f64 / self.total_faults as f64
    }
}

/// Per-sink flags: does the route branch to this sink cross the bond?
pub fn cut_sinks(route: &NetRoute) -> Vec<bool> {
    let t = &route.tree;
    // Propagate "crossed" root-down; parents precede children by
    // construction.
    let mut crossed = vec![false; t.nodes.len()];
    for i in 1..t.nodes.len() {
        crossed[i] = crossed[t.parent[i] as usize] || t.edge_f2f[i];
    }
    t.sink_node.iter().map(|&s| crossed[s as usize]).collect()
}

/// Deterministic ATPG-hard residue decision for fault `(pin, sa)`.
fn atpg_hard(pin_raw: u32, sa: u8) -> bool {
    let x = (u64::from(pin_raw) * 2 + u64::from(sa)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (x >> 33) % 1000 < ATPG_HARD_PER_MILLE
}

/// Analyzes stuck-at coverage of a routed design under a DFT mode.
///
/// The analysis models the DFT strategies *logically* (what their test
/// structures make reachable); use [`crate::insert_mls_dft`] for the
/// physical netlist ECO whose timing effect Tables III/VI report.
///
/// # Panics
///
/// Panics if `routes` does not cover the netlist or the netlist has a
/// combinational loop.
pub fn analyze_coverage(netlist: &Netlist, routes: &RouteDb, mode: DftMode) -> FaultReport {
    assert_eq!(
        routes.nets.len(),
        netlist.net_count(),
        "route db must cover every net"
    );
    let dag = CircuitDag::build(netlist).expect("acyclic design");
    let dft_bridges = mode != DftMode::None;

    // Per-sink open flags (MLS nets only; 3D nets are boundary-tested).
    let mut sink_cut: Vec<Vec<bool>> = Vec::with_capacity(netlist.net_count());
    for net in netlist.net_ids() {
        let r = routes.route(net);
        if r.is_mls && r.f2f_crossings > 0 && !dft_bridges {
            sink_cut.push(cut_sinks(r));
        } else {
            sink_cut.push(vec![false; netlist.sinks(net).len()]);
        }
    }

    // Controllability: forward pass in topo order.
    let mut ctl = vec![false; netlist.pin_count()];
    for &cell in dag.topo_order() {
        let class = netlist.class(cell);
        for out in netlist.output_pins(cell) {
            let v = if class.is_startpoint() {
                true
            } else {
                // All connected inputs controllable (conservative).
                netlist
                    .input_pins(cell)
                    .filter(|&p| netlist.pin(p).net.is_some())
                    .all(|p| ctl[p.index()])
            };
            ctl[out.index()] = v;
            if let Some(net) = netlist.pin(out).net {
                for (i, &s) in netlist.sinks(net).iter().enumerate() {
                    ctl[s.index()] = v && !sink_cut[net.index()][i];
                }
            }
        }
    }

    // Observability: reverse pass.
    let mut obs = vec![false; netlist.pin_count()];
    for cell in netlist.cell_ids() {
        if netlist.class(cell).is_endpoint() {
            for p in netlist.input_pins(cell) {
                if netlist.pin(p).net.is_some() {
                    obs[p.index()] = true;
                }
            }
        }
    }
    for &cell in dag.topo_order().iter().rev() {
        let class = netlist.class(cell);
        if class.is_startpoint() && !class.is_combinational() {
            // Launch-only processing happens via its sinks below; Q pins
            // get observability from their net like any driver.
        }
        // Driver pins: observable if any un-cut sink is observable.
        for out in netlist.output_pins(cell) {
            if let Some(net) = netlist.pin(out).net {
                let any = netlist
                    .sinks(net)
                    .iter()
                    .enumerate()
                    .any(|(i, &s)| obs[s.index()] && !sink_cut[net.index()][i]);
                obs[out.index()] = obs[out.index()] || any;
            }
        }
        // Combinational cells propagate observability from output to
        // inputs (sensitization side-conditions folded into the ATPG-hard
        // residue).
        if class.is_combinational() {
            let out_obs = netlist.output_pins(cell).any(|p| obs[p.index()]);
            if out_obs {
                for p in netlist.input_pins(cell) {
                    if netlist.pin(p).net.is_some() {
                        obs[p.index()] = true;
                    }
                }
            }
        }
    }

    // Tally pin faults.
    let mut rep = FaultReport::default();
    for pin in netlist.pin_ids() {
        let p = netlist.pin(pin);
        if p.net.is_none() {
            continue;
        }
        // Output pins need controllability of the cone driving them; for
        // input pins both labels are direct.
        let reachable = match p.dir {
            PinDir::Output => ctl[pin.index()] && obs[pin.index()],
            PinDir::Input => ctl[pin.index()] && obs[pin.index()],
        };
        for sa in 0..2u8 {
            rep.total_faults += 1;
            if !reachable {
                rep.undetected_open += 1;
            } else if atpg_hard(pin.raw(), sa) {
                rep.undetected_hard += 1;
            } else {
                rep.detected_faults += 1;
            }
        }
    }

    // Bond-pad faults on MLS crossings.
    let detected_per_crossing = match mode {
        DftMode::None => 0usize,
        DftMode::NetBased => 1,
        DftMode::WireBased => 2,
    };
    for net in netlist.net_ids() {
        let r = routes.route(net);
        if r.is_mls {
            let crossings = r.f2f_crossings as usize;
            rep.total_faults += 2 * crossings;
            rep.detected_faults += detected_per_crossing * crossings;
            rep.undetected_pad += (2 - detected_per_crossing) * crossings;
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    fn routed(policy: MlsPolicy) -> (gnnmls_netlist::Netlist, RouteDb) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(&d.netlist, &p, &tech, policy, RouteConfig::default()).unwrap();
        (d.netlist, db)
    }

    #[test]
    fn no_mls_design_has_high_coverage() {
        let (netlist, db) = routed(MlsPolicy::Disabled);
        let rep = analyze_coverage(&netlist, &db, DftMode::None);
        assert!(rep.total_faults > 1000);
        let cov = rep.coverage_pct();
        assert!(
            (95.0..100.0).contains(&cov),
            "baseline coverage should sit in the ATPG-limited 95-100% band, got {cov:.2}"
        );
        assert_eq!(rep.undetected_pad, 0, "no MLS nets, no exposed pads");
    }

    #[test]
    fn mls_without_dft_hurts_coverage_and_dft_restores_it() {
        let (netlist, db) = routed(MlsPolicy::sota());
        assert!(db.summary.mls_net_count > 0, "need MLS nets for this test");
        let none = analyze_coverage(&netlist, &db, DftMode::None);
        let net_based = analyze_coverage(&netlist, &db, DftMode::NetBased);
        let wire_based = analyze_coverage(&netlist, &db, DftMode::WireBased);
        assert!(
            none.coverage_pct() < net_based.coverage_pct(),
            "opens must cost coverage: {} vs {}",
            none.coverage_pct(),
            net_based.coverage_pct()
        );
        // Wire-based detects strictly more (both pad faults).
        assert!(wire_based.detected_faults > net_based.detected_faults);
        assert_eq!(wire_based.undetected_pad, 0);
        assert!(net_based.undetected_pad > 0);
        assert!(none.undetected_open > 0);
        assert_eq!(net_based.undetected_open, 0, "DFT bridges the opens");
    }

    #[test]
    fn cut_sinks_flags_far_side_branches() {
        use gnnmls_netlist::tech::{F2fParams, TechConfig};
        use gnnmls_phys::Floorplan;
        use gnnmls_route::grid::RoutingGrid;
        use gnnmls_route::tree::RouteTreeBuilder;

        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 80.0,
            height_um: 80.0,
        };
        let grid = RoutingGrid::build(&fp, &tech, 16, 0.0, 0.0);
        let f2f = F2fParams::default();
        let bond = grid.logic_layers - 1;
        let root = grid.node(0, 0, bond);
        let mut b = RouteTreeBuilder::new(&grid, &f2f, root);
        // Sink A stays on the logic die; sink B crosses the bond.
        b.add_path(&[root, grid.node(1, 0, bond)]);
        b.add_path(&[root, grid.node(0, 0, bond + 1)]);
        assert!(b.mark_sink(grid.node(1, 0, bond)));
        assert!(b.mark_sink(grid.node(0, 0, bond + 1)));
        let tree = b.finish();
        let route = gnnmls_route::NetRoute {
            net: gnnmls_netlist::NetId::new(0),
            wirelength_um: 0.0,
            f2f_crossings: tree.f2f_crossings(),
            is_mls: true,
            total_cap_ff: 0.0,
            sink_elmore_ps: vec![0.0, 0.0],
            overflowed: false,
            pattern_sinks: 0,
            tree,
        };
        assert_eq!(cut_sinks(&route), vec![false, true]);
    }

    #[test]
    fn atpg_hard_residue_is_deterministic_and_small() {
        let mut hard = 0;
        let n = 100_000;
        for pin in 0..n {
            for sa in 0..2 {
                if atpg_hard(pin, sa) {
                    hard += 1;
                }
            }
        }
        let rate = hard as f64 / (2 * n) as f64;
        assert!(
            (0.010..0.025).contains(&rate),
            "residue rate {rate} should be ~1.7%"
        );
        assert_eq!(atpg_hard(42, 0), atpg_hard(42, 0));
    }

    #[test]
    fn coverage_pct_handles_empty_report() {
        assert_eq!(FaultReport::default().coverage_pct(), 100.0);
    }
}

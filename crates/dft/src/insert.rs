//! Physical insertion of MLS DFT structures (post-route ECO).
//!
//! Both strategies are inserted *at the bond crossing* of each MLS net —
//! the paper stresses that the insertion is post-routing so it can align
//! with the pads' exact locations:
//!
//! - **net-based** (Figure 6a): a `SCANMUX` is spliced into the crossing
//!   path; in test mode the scan chain redirects signal flow across the
//!   open, restoring observability upstream and controllability
//!   downstream. One extra cell in the functional path.
//! - **wire-based** (Figure 6b): the net-based MUX *plus* a shadow
//!   `SCANDFF` that registers the upstream signal (extra load → the
//!   slightly worse WNS the paper measures) and can drive the downstream
//!   side during test; its Q is observed at a dedicated test port.
//!
//! The ECO mutates the netlist and appends locations to the placement;
//! the caller re-routes the modified nets (granting them their previous
//! MLS permission via [`DftInsertion::mls_nets`]) and re-runs STA.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{CellId, CellLibrary, NetId, Netlist, NetlistError};
use gnnmls_phys::place::Point;
use gnnmls_phys::Placement;
use gnnmls_route::grid::RoutingGrid;
use gnnmls_route::RouteDb;

use crate::faults::{cut_sinks, DftMode};

/// Record of an MLS DFT insertion ECO.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DftInsertion {
    /// Strategy inserted.
    pub mode: Option<DftMode>,
    /// All cells added by the ECO.
    pub added_cells: Vec<CellId>,
    /// Nets whose connectivity changed and must be re-routed.
    pub modified_nets: Vec<NetId>,
    /// Nets created by the ECO.
    pub new_nets: Vec<NetId>,
    /// MLS crossing sites processed.
    pub sites: usize,
    /// Pairs `(parent, child)` of split MLS nets: the child should
    /// inherit the parent's MLS routing permission.
    pub mls_nets: Vec<(NetId, NetId)>,
}

/// Inserts MLS DFT into a routed design.
///
/// Appends cells to `netlist`/`placement` (locations at the first bond
/// crossing of each MLS net) and returns the ECO record. With
/// [`DftMode::None`] this is a no-op.
///
/// # Errors
///
/// Propagates [`NetlistError`] on internal wiring failures (name
/// collisions would indicate the ECO ran twice).
pub fn insert_mls_dft(
    netlist: &mut Netlist,
    placement: &mut Placement,
    routes: &RouteDb,
    grid: &RoutingGrid,
    tech: &TechConfig,
    mode: DftMode,
) -> Result<DftInsertion, NetlistError> {
    let mut rec = DftInsertion {
        mode: Some(mode),
        ..Default::default()
    };
    if mode == DftMode::None {
        return Ok(rec);
    }

    // Gather sites first (netlist mutation invalidates nothing in routes,
    // but we only consult pre-ECO routes).
    struct Site {
        net: NetId,
        cut_pins: Vec<gnnmls_netlist::PinId>,
        loc: Point,
        tier: gnnmls_netlist::Tier,
    }
    let mut sites = Vec::new();
    for net in netlist.net_ids() {
        // Nets added after `routes` was captured (e.g. by another ECO)
        // have no route yet and cannot carry an MLS crossing.
        if net.index() >= routes.nets.len() {
            continue;
        }
        let r = routes.route(net);
        if !r.is_mls || r.f2f_crossings == 0 {
            continue;
        }
        let cut = cut_sinks(r);
        let cut_pins: Vec<_> = netlist
            .sinks(net)
            .iter()
            .zip(&cut)
            .filter(|(_, &c)| c)
            .map(|(&p, _)| p)
            .collect();
        // First bond-crossing edge gives the pad location.
        let t = &r.tree;
        let Some(i) = (1..t.nodes.len()).find(|&i| t.edge_f2f[i]) else {
            continue;
        };
        let (gx, gy, _) = grid.coords(t.nodes[i]);
        let loc = Point::new(
            (gx as f64 + 0.5) * grid.gcell_um,
            (gy as f64 + 0.5) * grid.gcell_um,
        );
        let tier = netlist
            .net_tier(net)
            .expect("MLS nets are single-die by definition");
        sites.push(Site {
            net,
            cut_pins,
            loc,
            tier,
        });
    }
    if sites.is_empty() {
        return Ok(rec);
    }

    // One shared test-enable port drives every inserted MUX select.
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let memory_lib = CellLibrary::for_node(&tech.memory_node);
    let lib_of = |tier: gnnmls_netlist::Tier| match tier {
        gnnmls_netlist::Tier::Logic => &logic_lib,
        gnnmls_netlist::Tier::Memory => &memory_lib,
    };
    let te_cell = netlist.add_cell(
        "dft_test_en",
        logic_lib.expect("PI"),
        gnnmls_netlist::Tier::Logic,
    )?;
    push_loc(placement, te_cell, Point::new(0.0, 0.0));
    rec.added_cells.push(te_cell);
    // The PI's output net is created on first use below.
    let mut te_net: Option<NetId> = None;

    for (k, site) in sites.iter().enumerate() {
        rec.sites += 1;
        let lib = lib_of(site.tier);
        let netname = netlist.net(site.net).name.clone();

        // --- Net-based portion (both modes): MUX spliced at the pad.
        if !site.cut_pins.is_empty() {
            let mux = netlist.add_cell(format!("dftmux_{k}"), lib.expect("SCANMUX"), site.tier)?;
            push_loc(placement, mux, site.loc);
            rec.added_cells.push(mux);
            let child =
                netlist.split_net(site.net, &site.cut_pins, mux, format!("{netname}_dft"))?;
            rec.modified_nets.push(site.net);
            rec.new_nets.push(child);
            rec.mls_nets.push((site.net, child));
            // Select pin (input ordinal 1) from the shared test-enable
            // net. The signal is static in functional mode; the timer
            // treats this arc as a false path.
            let te = match te_net {
                Some(n) => n,
                None => {
                    let n = splice_te_net(netlist, te_cell)?;
                    te_net = Some(n);
                    n
                }
            };
            netlist.connect_sink(te, mux, 1)?;
        }

        // --- Wire-based extra: shadow scan FF + observe port.
        if mode == DftMode::WireBased {
            let ff = netlist.add_cell(format!("dftff_{k}"), lib.expect("SCANDFF"), site.tier)?;
            push_loc(placement, ff, site.loc);
            rec.added_cells.push(ff);
            // D taps the (driver-side) net: extra load on the MLS net.
            netlist.connect_sink(site.net, ff, 0)?;
            rec.modified_nets.push(site.net);
            // Q observed at a test port.
            let po = netlist.add_cell(format!("dftobs_{k}"), lib.expect("PO"), site.tier)?;
            push_loc(placement, po, site.loc);
            rec.added_cells.push(po);
            let qnet = netlist.connect_new_net(format!("{netname}_dftq"), ff, po)?;
            rec.new_nets.push(qnet);
        }
    }

    rec.modified_nets.sort();
    rec.modified_nets.dedup();
    Ok(rec)
}

fn push_loc(placement: &mut Placement, cell: CellId, loc: Point) {
    let idx = placement.push_location(loc);
    debug_assert_eq!(idx, cell.index(), "placement and netlist stay aligned");
}

/// Creates the test-enable net driven by the TE port cell with a dummy
/// keeper sink so validation holds even before any MUX connects.
fn splice_te_net(netlist: &mut Netlist, te_cell: CellId) -> Result<NetId, NetlistError> {
    netlist.new_driven_net("dft_test_en_net", te_cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    fn setup() -> (
        gnnmls_netlist::Netlist,
        Placement,
        RouteDb,
        RoutingGrid,
        TechConfig,
    ) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, grid) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::sota(),
            RouteConfig::default(),
        )
        .unwrap();
        (d.netlist, p, db, grid, tech)
    }

    #[test]
    fn none_mode_is_a_noop() {
        let (mut n, mut p, db, grid, tech) = setup();
        let cells = n.cell_count();
        let rec = insert_mls_dft(&mut n, &mut p, &db, &grid, &tech, DftMode::None).unwrap();
        assert_eq!(rec.sites, 0);
        assert!(rec.added_cells.is_empty());
        assert_eq!(n.cell_count(), cells);
    }

    #[test]
    fn net_based_insertion_splits_mls_nets() {
        let (mut n, mut p, db, grid, tech) = setup();
        assert!(db.summary.mls_net_count > 0);
        let cells_before = n.cell_count();
        let rec = insert_mls_dft(&mut n, &mut p, &db, &grid, &tech, DftMode::NetBased).unwrap();
        assert!(rec.sites > 0);
        assert!(n.cell_count() > cells_before);
        assert_eq!(p.locations().len(), n.cell_count(), "placement tracks ECO");
        // Every split child is driven by a scan mux.
        for &(parent, child) in &rec.mls_nets {
            let drv = n.driver_cell(child);
            assert_eq!(n.class(drv), gnnmls_netlist::CellClass::ScanMux);
            assert_ne!(parent, child);
        }
        // Netlist still validates structurally: every net driver + sinks.
        for net in n.net_ids() {
            assert!(n.net(net).pins.len() >= 2, "net {net} lost its sinks");
        }
    }

    #[test]
    fn wire_based_adds_shadow_ffs_and_observation_ports() {
        let (mut n, mut p, db, grid, tech) = setup();
        let rec = insert_mls_dft(&mut n, &mut p, &db, &grid, &tech, DftMode::WireBased).unwrap();

        let (mut n2, mut p2, db2, grid2, tech2) = setup();
        let net_rec =
            insert_mls_dft(&mut n2, &mut p2, &db2, &grid2, &tech2, DftMode::NetBased).unwrap();

        assert!(
            rec.added_cells.len() > net_rec.added_cells.len(),
            "wire-based adds more logic ({} vs {})",
            rec.added_cells.len(),
            net_rec.added_cells.len()
        );
        let ffs = rec
            .added_cells
            .iter()
            .filter(|&&c| n.class(c) == gnnmls_netlist::CellClass::ScanRegister)
            .count();
        assert_eq!(ffs, rec.sites);
        // Each shadow FF's Q is observed at a PO.
        let pos = rec
            .added_cells
            .iter()
            .filter(|&&c| n.class(c) == gnnmls_netlist::CellClass::Output)
            .count();
        assert_eq!(pos, rec.sites);
        // The extra D-taps load the parent nets (recorded for re-route).
        assert!(!rec.modified_nets.is_empty());
    }
}

//! Design-for-test for MLS-enabled hybrid-bonded 3D ICs.
//!
//! Hybrid bonding tests each die *before* bonding, so any signal that
//! crosses the F2F interface is an **open connection** at die-level test
//! time: the upstream cone becomes unobservable and the downstream cone
//! uncontrollable (Figure 3 of the paper). True 3D nets are covered by
//! the base flow's boundary test structures; *MLS nets* — single-die nets
//! that borrowed the other die's metals — are not, which is the paper's
//! testability problem.
//!
//! This crate provides:
//!
//! - [`scan`] — placement-aware scan-chain stitching (full-scan model).
//! - [`faults`] — the stuck-at fault universe and structural
//!   detectability analysis under MLS opens (Table III / Table VI's
//!   coverage numbers).
//! - [`insert`] — physical insertion of the two MLS DFT strategies:
//!   net-based (a test MUX in the crossing path, Figure 6a) and
//!   wire-based (a shadow scan FF observing/driving the crossing,
//!   Figure 6b), as post-route ECOs.
//! - [`simulate`] — a pattern-based fault simulator that cross-validates
//!   the structural coverage model (faults behind opens are provably
//!   silent; bridging them with DFT makes them fall to random patterns).

pub mod faults;
pub mod insert;
pub mod scan;
pub mod simulate;

pub use faults::{analyze_coverage, DftMode, FaultReport};
pub use insert::{insert_mls_dft, DftInsertion};
pub use scan::ScanChain;
pub use simulate::{Fault, FaultSimulator, SimReport};

//! Scan-chain stitching.
//!
//! The flow assumes full scan: every sequential element is part of a scan
//! chain and is therefore a test control point (at Q) and observe point
//! (at D). The chain order matters for test wirelength, so the stitcher
//! snakes through the placement row by row, per tier.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::{CellId, Netlist, Tier};
use gnnmls_phys::Placement;

/// A stitched scan chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanChain {
    /// Sequential cells in scan-shift order.
    pub order: Vec<CellId>,
    /// Estimated scan-routing wirelength (manhattan between consecutive
    /// elements), µm.
    pub wirelength_um: f64,
}

impl ScanChain {
    /// Stitches all sequential cells into one chain, snaking row-by-row
    /// (by g-row of height `row_um`) with alternating direction, logic
    /// tier first.
    pub fn build(netlist: &Netlist, placement: &Placement, row_um: f64) -> Self {
        let row_um = row_um.max(1.0);
        let mut cells: Vec<(CellId, Tier, i64, f64)> = netlist
            .cell_ids()
            .filter(|&c| netlist.class(c).is_sequential())
            .map(|c| {
                let l = placement.loc(c);
                (c, netlist.cell(c).tier, (l.y / row_um) as i64, l.x)
            })
            .collect();
        cells.sort_by(|a, b| {
            a.1.cmp(&b.1).then(a.2.cmp(&b.2)).then_with(|| {
                // Snake: even rows left-to-right, odd rows right-to-left.
                if a.2 % 2 == 0 {
                    a.3.total_cmp(&b.3)
                } else {
                    b.3.total_cmp(&a.3)
                }
            })
        });
        let order: Vec<CellId> = cells.iter().map(|&(c, ..)| c).collect();
        let wirelength_um = order
            .windows(2)
            .map(|w| placement.loc(w[0]).manhattan(&placement.loc(w[1])))
            .sum();
        Self {
            order,
            wirelength_um,
        }
    }

    /// Number of scan elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the design has no sequential cells.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_netlist::CellClass;
    use gnnmls_phys::{place, PlaceConfig};

    #[test]
    fn chain_covers_all_sequential_cells_exactly_once() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let chain = ScanChain::build(&d.netlist, &p, 5.0);
        let seq = d
            .netlist
            .cell_ids()
            .filter(|&c| d.netlist.class(c).is_sequential())
            .count();
        assert_eq!(chain.len(), seq);
        let unique: std::collections::HashSet<_> = chain.order.iter().collect();
        assert_eq!(unique.len(), seq);
        assert!(chain.wirelength_um > 0.0);
        assert!(!chain.is_empty());
        for &c in &chain.order {
            assert_ne!(d.netlist.class(c), CellClass::Combinational);
        }
    }

    #[test]
    fn snake_order_beats_id_order_on_wirelength() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let chain = ScanChain::build(&d.netlist, &p, 5.0);
        // Baseline: id order.
        let ids: Vec<CellId> = d
            .netlist
            .cell_ids()
            .filter(|&c| d.netlist.class(c).is_sequential())
            .collect();
        let id_wl: f64 = ids
            .windows(2)
            .map(|w| p.loc(w[0]).manhattan(&p.loc(w[1])))
            .sum();
        assert!(
            chain.wirelength_um < id_wl,
            "snake {:.0} vs id order {:.0}",
            chain.wirelength_um,
            id_wl
        );
    }
}

//! Pattern-based stuck-at fault simulation.
//!
//! The structural analysis in [`crate::faults`] answers "is this fault
//! *reachable*"; this module answers "does a random pattern set actually
//! *detect* it", by simulating the good circuit and a faulty circuit per
//! sampled fault and comparing observe points. It exists to cross-check
//! the structural model: faults the structure calls unreachable (cut by
//! an MLS open) must never be detected by simulation, and most
//! structurally-reachable faults should fall to a modest random pattern
//! set — the classic random-testability profile.
//!
//! Gate semantics come from the template names of the generator library
//! (INV/BUF/NAND2/NOR2/XOR2/AOI22/MUX2/FA…); registers and macros behave
//! as scan cells: pattern-controllable at their outputs, observable at
//! their inputs (full-scan assumption).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gnnmls_netlist::graph::CircuitDag;
use gnnmls_netlist::{Netlist, PinId};
use gnnmls_route::RouteDb;

use crate::faults::cut_sinks;

/// One stuck-at fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The faulty pin.
    pub pin: PinId,
    /// Stuck-at value (false = SA0, true = SA1).
    pub stuck_at: bool,
}

/// Result of simulating a sampled fault list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Faults simulated.
    pub simulated: usize,
    /// Faults detected by at least one pattern.
    pub detected: usize,
}

impl SimReport {
    /// Detection rate over the sample.
    pub fn rate(&self) -> f64 {
        if self.simulated == 0 {
            return 0.0;
        }
        self.detected as f64 / self.simulated as f64
    }
}

/// The fault simulator.
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
    dag: CircuitDag,
    /// Per sink pin: disconnected by an MLS open at die-level test.
    cut: Vec<bool>,
}

impl<'a> FaultSimulator<'a> {
    /// Builds a simulator; `routes` (with `bridge_opens = false`) defines
    /// which MLS sinks are open at die-level test. Pass
    /// `bridge_opens = true` to model an active DFT mode that restores
    /// the connections.
    ///
    /// # Panics
    ///
    /// Panics if the design has a combinational loop or `routes` does not
    /// cover it.
    pub fn new(netlist: &'a Netlist, routes: &RouteDb, bridge_opens: bool) -> Self {
        assert_eq!(routes.nets.len(), netlist.net_count());
        let dag = CircuitDag::build(netlist).expect("acyclic design");
        let mut cut = vec![false; netlist.pin_count()];
        if !bridge_opens {
            for net in netlist.net_ids() {
                let r = routes.route(net);
                if r.is_mls && r.f2f_crossings > 0 {
                    for (i, &s) in netlist.sinks(net).iter().enumerate() {
                        if cut_sinks(r)[i] {
                            cut[s.index()] = true;
                        }
                    }
                }
            }
        }
        Self { netlist, dag, cut }
    }

    /// Evaluates the circuit for one input pattern, with an optional
    /// injected fault; returns the observe-point values (inputs of
    /// endpoints, in pin order).
    fn evaluate(&self, seed: u64, fault: Option<Fault>) -> Vec<bool> {
        let n = self.netlist;
        let mut value = vec![false; n.pin_count()];
        // Deterministic pattern per seed: launch points get hashed values.
        let val_of = |pin: PinId| -> bool {
            let x = (u64::from(pin.raw()) ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x >> 61) & 1 == 1
        };
        let inject = |pin: PinId, v: bool| -> bool {
            match fault {
                Some(f) if f.pin == pin => f.stuck_at,
                _ => v,
            }
        };

        for &cell in self.dag.topo_order() {
            let class = n.class(cell);
            let tpl = n.template(cell);
            // Gather (possibly faulty, possibly cut) input values.
            let ins: Vec<bool> = n
                .input_pins(cell)
                .map(|p| {
                    if n.pin(p).net.is_none() || self.cut[p.index()] {
                        false // opens float; model as 0
                    } else {
                        inject(p, value[p.index()])
                    }
                })
                .collect();

            let outs: Vec<bool> = if class.is_startpoint() {
                n.output_pins(cell).map(val_of).collect()
            } else {
                eval_gate(tpl.name, &ins, n.output_pins(cell).count())
            };

            for (k, out) in n.output_pins(cell).enumerate() {
                let v = inject(out, outs[k]);
                value[out.index()] = v;
                if let Some(net) = n.pin(out).net {
                    for &s in n.sinks(net) {
                        value[s.index()] = v;
                    }
                }
            }
        }

        // Observe points: connected inputs of endpoint cells.
        let mut obs = Vec::new();
        for cell in n.cell_ids() {
            if !n.class(cell).is_endpoint() {
                continue;
            }
            for p in n.input_pins(cell) {
                if n.pin(p).net.is_some() {
                    obs.push(if self.cut[p.index()] {
                        false
                    } else {
                        inject(p, value[p.index()])
                    });
                }
            }
        }
        obs
    }

    /// Simulates `faults` against `patterns` random patterns; a fault is
    /// detected if any pattern makes an observe point differ from the
    /// good circuit.
    pub fn run(&self, faults: &[Fault], patterns: usize, seed: u64) -> SimReport {
        let mut rep = SimReport::default();
        let seeds: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..patterns).map(|_| rng.gen()).collect()
        };
        let golden: Vec<Vec<bool>> = seeds.iter().map(|&s| self.evaluate(s, None)).collect();
        for &f in faults {
            rep.simulated += 1;
            let hit = seeds
                .iter()
                .zip(&golden)
                .any(|(&s, g)| &self.evaluate(s, Some(f)) != g);
            if hit {
                rep.detected += 1;
            }
        }
        rep
    }

    /// Samples `k` faults uniformly over connected pins.
    pub fn sample_faults(&self, k: usize, seed: u64) -> Vec<Fault> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pins: Vec<PinId> = self
            .netlist
            .pin_ids()
            .filter(|&p| self.netlist.pin(p).net.is_some())
            .collect();
        (0..k)
            .map(|_| Fault {
                pin: pins[rng.gen_range(0..pins.len())],
                stuck_at: rng.gen(),
            })
            .collect()
    }
}

/// Boolean semantics of the generator library's gates.
///
/// Unknown templates behave as buffers of their first input (conservative
/// for DFT purposes).
fn eval_gate(name: &str, ins: &[bool], outputs: usize) -> Vec<bool> {
    let i = |k: usize| ins.get(k).copied().unwrap_or(false);
    match name {
        "INV" => vec![!i(0)],
        "BUF" | "BUFX4" | "LVLSHIFT" => vec![i(0)],
        "NAND2" => vec![!(i(0) && i(1))],
        "NOR2" => vec![!(i(0) || i(1))],
        "XOR2" => vec![i(0) ^ i(1)],
        "AOI22" => vec![!((i(0) && i(1)) || (i(2) && i(3)))],
        // MUX2 / SCANMUX: sel ? b : a  (inputs: a, b... our DFT wiring
        // uses ordinal 1 as select, so treat input 1 as sel, 2 as b).
        "MUX2" | "SCANMUX" => vec![if i(1) { i(2) } else { i(0) }],
        "FA" => {
            let (a, b, c) = (i(0), i(1), i(2));
            vec![a ^ b ^ c, (a && b) || (c && (a ^ b))]
        }
        "PO" => vec![],
        _ => (0..outputs).map(|k| i(k % ins.len().max(1))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    fn routed(policy: MlsPolicy) -> (gnnmls_netlist::Netlist, RouteDb) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(8, 2), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(&d.netlist, &p, &tech, policy, RouteConfig::default()).unwrap();
        (d.netlist, db)
    }

    #[test]
    fn gate_semantics_are_correct() {
        assert_eq!(eval_gate("INV", &[true], 1), vec![false]);
        assert_eq!(eval_gate("NAND2", &[true, true], 1), vec![false]);
        assert_eq!(eval_gate("NAND2", &[true, false], 1), vec![true]);
        assert_eq!(eval_gate("NOR2", &[false, false], 1), vec![true]);
        assert_eq!(eval_gate("XOR2", &[true, false], 1), vec![true]);
        assert_eq!(
            eval_gate("AOI22", &[true, true, false, false], 1),
            vec![false]
        );
        assert_eq!(eval_gate("MUX2", &[true, false, false], 1), vec![true]);
        assert_eq!(eval_gate("MUX2", &[true, true, false], 1), vec![false]);
        // Full adder truth row: 1+1+1 = sum 1, carry 1.
        assert_eq!(eval_gate("FA", &[true, true, true], 2), vec![true, true]);
        assert_eq!(eval_gate("FA", &[true, true, false], 2), vec![false, true]);
    }

    #[test]
    fn random_patterns_detect_most_faults_without_opens() {
        let (netlist, db) = routed(MlsPolicy::Disabled);
        let sim = FaultSimulator::new(&netlist, &db, false);
        let faults = sim.sample_faults(60, 7);
        let rep = sim.run(&faults, 24, 11);
        assert_eq!(rep.simulated, 60);
        assert!(
            rep.rate() > 0.6,
            "random-pattern coverage should be substantial: {:.2}",
            rep.rate()
        );
    }

    #[test]
    fn faults_behind_opens_are_never_detected() {
        let (netlist, db) = routed(MlsPolicy::sota());
        let sim_open = FaultSimulator::new(&netlist, &db, false);
        // Collect faults on sinks that the opens cut.
        let mut cut_faults = Vec::new();
        for net in netlist.net_ids() {
            let r = db.route(net);
            if r.is_mls && r.f2f_crossings > 0 {
                for (i, &s) in netlist.sinks(net).iter().enumerate() {
                    if cut_sinks(r)[i] {
                        cut_faults.push(Fault {
                            pin: s,
                            stuck_at: true,
                        });
                    }
                }
            }
        }
        if cut_faults.is_empty() {
            return; // no MLS nets at this size; nothing to check
        }
        cut_faults.truncate(20);
        // A stuck-at-0 on a cut pin is indistinguishable from the open
        // itself; SA1 may flip downstream logic. Check the strict case:
        // in the open circuit, SA0 faults on cut pins are silent.
        let sa0: Vec<Fault> = cut_faults
            .iter()
            .map(|f| Fault {
                pin: f.pin,
                stuck_at: false,
            })
            .collect();
        let rep = sim_open.run(&sa0, 16, 3);
        assert_eq!(
            rep.detected, 0,
            "SA0 behind an open must be undetectable at die-level test"
        );
        // Bridged (DFT active), the very same faults become detectable.
        let sim_bridged = FaultSimulator::new(&netlist, &db, true);
        let rep2 = sim_bridged.run(&sa0, 16, 3);
        assert!(
            rep2.detected > 0,
            "DFT bridging must expose at least some of them"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let (netlist, db) = routed(MlsPolicy::Disabled);
        let sim = FaultSimulator::new(&netlist, &db, false);
        let faults = sim.sample_faults(20, 5);
        let a = sim.run(&faults, 8, 9);
        let b = sim.run(&faults, 8, 9);
        assert_eq!(a, b);
    }
}

//! DFT-crate integration: the insertion ECO composed with re-routing and
//! re-analysis — the full post-route DFT pipeline at crate granularity.

use gnnmls_dft::{analyze_coverage, insert_mls_dft, DftMode, ScanChain};
use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{CellClass, NetId};
use gnnmls_phys::{place, PlaceConfig, Placement};
use gnnmls_route::{route_design, MlsPolicy, RouteConfig, RouteDb, RoutingGrid};

fn routed_with_mls() -> (
    gnnmls_netlist::Netlist,
    Placement,
    RouteDb,
    RoutingGrid,
    TechConfig,
) {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let d = generate_maeri(&MaeriConfig::new(32, 4), &tech).unwrap();
    let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
    let (db, grid) = route_design(
        &d.netlist,
        &p,
        &tech,
        MlsPolicy::sota(),
        RouteConfig::default(),
    )
    .unwrap();
    (d.netlist, p, db, grid, tech)
}

#[test]
fn insertion_then_reroute_keeps_the_design_routable() {
    let (mut netlist, mut placement, db, grid, tech) = routed_with_mls();
    assert!(db.summary.mls_net_count > 0);
    let rec = insert_mls_dft(
        &mut netlist,
        &mut placement,
        &db,
        &grid,
        &tech,
        DftMode::WireBased,
    )
    .unwrap();
    assert!(rec.sites > 0);

    // Grant split nets their MLS permission and re-route the whole thing.
    let allowed: Vec<NetId> = rec.mls_nets.iter().flat_map(|&(p, c)| [p, c]).collect();
    let policy = MlsPolicy::per_net_from(&netlist, allowed);
    let (db2, _) =
        route_design(&netlist, &placement, &tech, policy, RouteConfig::default()).unwrap();
    assert_eq!(db2.nets.len(), netlist.net_count());
    // Post-ECO coverage with the mode active is high again.
    let cov = analyze_coverage(&netlist, &db2, DftMode::WireBased);
    assert!(cov.coverage_pct() > 90.0, "{:.2}%", cov.coverage_pct());
}

#[test]
fn inserted_cells_sit_near_their_crossings() {
    let (mut netlist, mut placement, db, grid, tech) = routed_with_mls();
    let fp = *placement.floorplan();
    let rec = insert_mls_dft(
        &mut netlist,
        &mut placement,
        &db,
        &grid,
        &tech,
        DftMode::NetBased,
    )
    .unwrap();
    for &c in &rec.added_cells {
        let l = placement.loc(c);
        assert!(
            fp.contains(l.x, l.y),
            "DFT cell {} placed off-die",
            netlist.cell(c).name
        );
    }
    // Exactly one test-enable port among the added cells.
    let te = rec
        .added_cells
        .iter()
        .filter(|&&c| netlist.class(c) == CellClass::Input)
        .count();
    assert_eq!(te, 1);
}

#[test]
fn repeated_insertion_fails_cleanly() {
    let (mut netlist, mut placement, db, grid, tech) = routed_with_mls();
    insert_mls_dft(
        &mut netlist,
        &mut placement,
        &db,
        &grid,
        &tech,
        DftMode::NetBased,
    )
    .unwrap();
    // Running the ECO again collides on the deterministic names.
    let again = insert_mls_dft(
        &mut netlist,
        &mut placement,
        &db,
        &grid,
        &tech,
        DftMode::NetBased,
    );
    assert!(again.is_err(), "double insertion must be rejected");
}

#[test]
fn scan_chain_spans_both_tiers_in_order() {
    let (netlist, placement, _, _, _) = routed_with_mls();
    let chain = ScanChain::build(&netlist, &placement, 5.0);
    // Logic-tier elements come before memory-tier ones (per-tier stitch).
    let first_mem = chain
        .order
        .iter()
        .position(|&c| netlist.cell(c).tier == gnnmls_netlist::Tier::Memory);
    if let Some(k) = first_mem {
        assert!(chain.order[k..]
            .iter()
            .all(|&c| netlist.cell(c).tier == gnnmls_netlist::Tier::Memory));
    }
}

#[test]
fn coverage_is_monotone_in_dft_strength_across_seeds() {
    for seed in [1u64, 7, 42] {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(16, 4).with_seed(seed), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::sota(),
            RouteConfig::default(),
        )
        .unwrap();
        let none = analyze_coverage(&d.netlist, &db, DftMode::None);
        let net = analyze_coverage(&d.netlist, &db, DftMode::NetBased);
        let wire = analyze_coverage(&d.netlist, &db, DftMode::WireBased);
        assert!(none.detected_faults <= net.detected_faults, "seed {seed}");
        assert!(net.detected_faults <= wire.detected_faults, "seed {seed}");
    }
}

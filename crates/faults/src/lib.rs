//! Deterministic, seed-driven fault injection for the GNN-MLS flow.
//!
//! Library crates call [`fire`] at their stage seams ("would a fault
//! happen here?"). With no [`FaultPlan`] installed the call is a single
//! relaxed atomic load — effectively free — so the seams stay in
//! release builds. Tests (and the `GNNMLS_FAULTS` env knob) install a
//! plan with [`install`]; the returned [`FaultGuard`] holds a global
//! lock so concurrent fault tests serialize, and disarms on drop.
//!
//! Every fault is deterministic: a plan is a set of `(site, shots)`
//! pairs, and `fire(site)` returns `true` exactly `shots` times for
//! that site, in call order. Seed-driven plans ([`FaultPlan::from_seed`])
//! derive the site set from a splitmix64 stream so a single integer
//! reproduces an injected-fault run exactly.

// Diagnostics flow through gnnmls-obs, never straight to the
// process streams.
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(test, allow(clippy::print_stdout, clippy::print_stderr))]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A seam in the flow where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Flip a byte in a checkpoint payload as it is written.
    CheckpointCorrupt,
    /// Truncate a checkpoint payload as it is written.
    CheckpointTruncate,
    /// Make a net fail to route during rip-up (no path to any sink).
    UnroutableNet,
    /// Exhaust the A* node-expansion budget for a sink.
    RouteBudgetExhausted,
    /// Poison a training step's gradients with NaN.
    NanGradient,
    /// Cap the CG solver so the IR solve cannot converge.
    IrNonConvergence,
    /// Panic inside a `gnnmls-par` worker.
    WorkerPanic,
    /// Flip a byte in a serve wire frame as it is written to a socket.
    FrameCorrupt,
    /// Stall a serve connection mid-frame (slow or wedged client).
    SlowClientStall,
    /// Force the serve job queue to report itself full.
    QueueOverflow,
    /// Bomb a `DesignSession` build with a typed failure (drives the
    /// serve quarantine circuit breaker).
    SessionBuildFail,
    /// Corrupt one route-DB edge count as the DB is assembled (proves
    /// the cross-stage invariant auditor fires).
    RouteAuditCorrupt,
    /// Crash the backend shard a cluster front is about to forward to
    /// (a managed child is killed; an external shard is marked dead).
    ShardCrash,
    /// Make a forwarded cluster request appear over-deadline: the shard
    /// never answers within the forward timeout.
    ShardStall,
    /// Tear the front↔shard connection mid-exchange (reset after the
    /// request frame is written, before the response is read).
    ConnReset,
    /// Damage a model-zoo checkpoint on its way into a `LoadModel`
    /// swap (bit-flip or truncation after the read, before the envelope
    /// check) — the swap must refuse with a typed error, never poison
    /// the model registry or the session cache.
    ModelSwapCorrupt,
    /// ENOSPC mid-write inside a durable write: half the payload lands
    /// in the temp file, then the device refuses — the destination must
    /// stay the complete old state.
    DiskFull,
    /// Power cut mid-write: a truncated temp file is all that survives
    /// the crash; the destination must stay the complete old state.
    TornWrite,
    /// Crash between fsync(tmp) and the atomic rename: the complete new
    /// bytes are orphaned in a temp file beside the intact old file.
    RenameCrash,
    /// Transient I/O error (EIO) reading a persistent artifact back —
    /// must surface typed and leave the on-disk bytes untouched.
    ReadEio,
}

/// All sites, in the order used by seed-driven plans.
pub const ALL_SITES: [FaultSite; 20] = [
    FaultSite::CheckpointCorrupt,
    FaultSite::CheckpointTruncate,
    FaultSite::UnroutableNet,
    FaultSite::RouteBudgetExhausted,
    FaultSite::NanGradient,
    FaultSite::IrNonConvergence,
    FaultSite::WorkerPanic,
    FaultSite::FrameCorrupt,
    FaultSite::SlowClientStall,
    FaultSite::QueueOverflow,
    FaultSite::SessionBuildFail,
    FaultSite::RouteAuditCorrupt,
    FaultSite::ShardCrash,
    FaultSite::ShardStall,
    FaultSite::ConnReset,
    FaultSite::ModelSwapCorrupt,
    FaultSite::DiskFull,
    FaultSite::TornWrite,
    FaultSite::RenameCrash,
    FaultSite::ReadEio,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::CheckpointCorrupt => 0,
            FaultSite::CheckpointTruncate => 1,
            FaultSite::UnroutableNet => 2,
            FaultSite::RouteBudgetExhausted => 3,
            FaultSite::NanGradient => 4,
            FaultSite::IrNonConvergence => 5,
            FaultSite::WorkerPanic => 6,
            FaultSite::FrameCorrupt => 7,
            FaultSite::SlowClientStall => 8,
            FaultSite::QueueOverflow => 9,
            FaultSite::SessionBuildFail => 10,
            FaultSite::RouteAuditCorrupt => 11,
            FaultSite::ShardCrash => 12,
            FaultSite::ShardStall => 13,
            FaultSite::ConnReset => 14,
            FaultSite::ModelSwapCorrupt => 15,
            FaultSite::DiskFull => 16,
            FaultSite::TornWrite => 17,
            FaultSite::RenameCrash => 18,
            FaultSite::ReadEio => 19,
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "checkpoint-corrupt" => Some(FaultSite::CheckpointCorrupt),
            "checkpoint-truncate" => Some(FaultSite::CheckpointTruncate),
            "unroutable-net" => Some(FaultSite::UnroutableNet),
            "route-budget" => Some(FaultSite::RouteBudgetExhausted),
            "nan-gradient" => Some(FaultSite::NanGradient),
            "ir-nonconvergence" => Some(FaultSite::IrNonConvergence),
            "worker-panic" => Some(FaultSite::WorkerPanic),
            "frame-corrupt" => Some(FaultSite::FrameCorrupt),
            "slow-client" => Some(FaultSite::SlowClientStall),
            "queue-overflow" => Some(FaultSite::QueueOverflow),
            "build-fail" => Some(FaultSite::SessionBuildFail),
            "audit-violation" => Some(FaultSite::RouteAuditCorrupt),
            "shard-crash" => Some(FaultSite::ShardCrash),
            "shard-stall" => Some(FaultSite::ShardStall),
            "conn-reset" => Some(FaultSite::ConnReset),
            "model-swap-corrupt" => Some(FaultSite::ModelSwapCorrupt),
            "disk-full" => Some(FaultSite::DiskFull),
            "torn-write" => Some(FaultSite::TornWrite),
            "rename-crash" => Some(FaultSite::RenameCrash),
            "read-eio" => Some(FaultSite::ReadEio),
            _ => None,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::CheckpointCorrupt => "checkpoint-corrupt",
            FaultSite::CheckpointTruncate => "checkpoint-truncate",
            FaultSite::UnroutableNet => "unroutable-net",
            FaultSite::RouteBudgetExhausted => "route-budget",
            FaultSite::NanGradient => "nan-gradient",
            FaultSite::IrNonConvergence => "ir-nonconvergence",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::FrameCorrupt => "frame-corrupt",
            FaultSite::SlowClientStall => "slow-client",
            FaultSite::QueueOverflow => "queue-overflow",
            FaultSite::SessionBuildFail => "build-fail",
            FaultSite::RouteAuditCorrupt => "audit-violation",
            FaultSite::ShardCrash => "shard-crash",
            FaultSite::ShardStall => "shard-stall",
            FaultSite::ConnReset => "conn-reset",
            FaultSite::ModelSwapCorrupt => "model-swap-corrupt",
            FaultSite::DiskFull => "disk-full",
            FaultSite::TornWrite => "torn-write",
            FaultSite::RenameCrash => "rename-crash",
            FaultSite::ReadEio => "read-eio",
        };
        f.write_str(s)
    }
}

/// A deterministic fault schedule: how many times each site fires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    shots: [u32; ALL_SITES.len()],
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan that fires one site a fixed number of times.
    pub fn single(site: FaultSite, shots: u32) -> Self {
        let mut p = Self::default();
        p.shots[site.index()] = shots;
        p
    }

    /// Adds shots for a site (builder-style).
    pub fn with(mut self, site: FaultSite, shots: u32) -> Self {
        self.shots[site.index()] += shots;
        self
    }

    /// Derives a plan from a seed: each site independently gets 0–2
    /// shots from a splitmix64 stream. The same seed always produces
    /// the same plan, so `GNNMLS_FAULTS=<seed>` reproduces a run.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut p = Self::default();
        for slot in p.shots.iter_mut() {
            *slot = (next() % 3) as u32;
        }
        p
    }

    /// Parses the `GNNMLS_FAULTS` env convention:
    /// either a bare integer seed (`GNNMLS_FAULTS=42`) or an explicit
    /// site list (`GNNMLS_FAULTS=route-budget:2,nan-gradient:1`; a bare
    /// site name means one shot). Returns `None` when the variable is
    /// unset, empty, or unparseable (unparseable values get a one-line
    /// stderr warning rather than a panic).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("GNNMLS_FAULTS").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        if let Ok(seed) = raw.parse::<u64>() {
            return Some(Self::from_seed(seed));
        }
        let mut p = Self::default();
        for part in raw.split(',') {
            let part = part.trim();
            let (name, shots) = match part.split_once(':') {
                Some((n, s)) => match s.trim().parse::<u32>() {
                    Ok(k) => (n.trim(), k),
                    Err(_) => {
                        gnnmls_obs::warn(
                            "gnnmls-faults",
                            &format!("ignoring GNNMLS_FAULTS entry {part:?} (bad shot count)"),
                        );
                        return None;
                    }
                },
                None => (part, 1),
            };
            match FaultSite::from_name(name) {
                Some(site) => p.shots[site.index()] += shots,
                None => {
                    gnnmls_obs::warn(
                        "gnnmls-faults",
                        &format!("ignoring GNNMLS_FAULTS entry {part:?} (unknown site)"),
                    );
                    return None;
                }
            }
        }
        Some(p)
    }

    /// Shots scheduled for a site.
    pub fn shots(&self, site: FaultSite) -> u32 {
        self.shots[site.index()]
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.shots.iter().all(|&s| s == 0)
    }
}

/// Fast armed check + per-site remaining-shot counters.
static ARMED: AtomicBool = AtomicBool::new(false);
static REMAINING: [AtomicU32; ALL_SITES.len()] = [
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
];

fn install_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// RAII guard returned by [`install`]; disarms all faults on drop and
/// serializes concurrent fault tests via a global lock.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        for slot in REMAINING.iter() {
            slot.store(0, Ordering::SeqCst);
        }
    }
}

/// Installs a plan; faults stay armed until the guard drops.
///
/// Only one plan can be active at a time — a second `install` blocks
/// until the first guard drops, so `cargo test`'s default parallel
/// test threads cannot interleave two fault schedules.
pub fn install(plan: &FaultPlan) -> FaultGuard {
    let lock = install_lock()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for (slot, &shots) in REMAINING.iter().zip(plan.shots.iter()) {
        slot.store(shots, Ordering::SeqCst);
    }
    ARMED.store(!plan.is_empty(), Ordering::SeqCst);
    FaultGuard { _lock: lock }
}

/// Installs the plan from `GNNMLS_FAULTS`, if any.
pub fn install_from_env() -> Option<FaultGuard> {
    FaultPlan::from_env().map(|p| install(&p))
}

/// Should a fault fire at this seam? Consumes one shot when it does.
///
/// With nothing installed this is one relaxed atomic load. An actual
/// activation (rare by construction) is counted into the
/// `gnnmls_faults_fired_total{site=...}` metric and, when a trace sink
/// is installed, emitted as a `fault` event.
#[inline]
pub fn fire(site: FaultSite) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let slot = &REMAINING[site.index()];
    let fired = slot
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok();
    if fired {
        let name = site.to_string();
        gnnmls_obs::counter_add("gnnmls_faults_fired_total", &[("site", &name)], 1);
        gnnmls_obs::event("fault", &[("site", gnnmls_obs::FieldValue::Str(name))]);
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_fire_is_false() {
        assert!(!fire(FaultSite::UnroutableNet));
    }

    #[test]
    fn shots_are_consumed_exactly() {
        let guard = install(&FaultPlan::single(FaultSite::NanGradient, 2));
        assert!(fire(FaultSite::NanGradient));
        assert!(fire(FaultSite::NanGradient));
        assert!(!fire(FaultSite::NanGradient));
        assert!(!fire(FaultSite::IrNonConvergence), "other sites unarmed");
        drop(guard);
        assert!(!fire(FaultSite::NanGradient), "disarmed after drop");
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(FaultPlan::from_seed(42), FaultPlan::from_seed(42));
        // Some seed in 0..16 must differ from seed 42 (sanity: the seed
        // actually reaches the schedule).
        assert!((0..16).any(|s| FaultPlan::from_seed(s) != FaultPlan::from_seed(42)));
    }

    #[test]
    fn builder_and_single_agree() {
        let a = FaultPlan::single(FaultSite::WorkerPanic, 3);
        let b = FaultPlan::none().with(FaultSite::WorkerPanic, 3);
        assert_eq!(a, b);
        assert_eq!(a.shots(FaultSite::WorkerPanic), 3);
        assert!(!a.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn new_robustness_sites_are_registered() {
        assert_eq!(ALL_SITES.len(), 20);
        assert_eq!(ALL_SITES[10], FaultSite::SessionBuildFail);
        assert_eq!(ALL_SITES[11], FaultSite::RouteAuditCorrupt);
        assert_eq!(FaultSite::SessionBuildFail.to_string(), "build-fail");
        assert_eq!(FaultSite::RouteAuditCorrupt.to_string(), "audit-violation");
    }

    #[test]
    fn cluster_sites_are_registered() {
        assert_eq!(ALL_SITES[12], FaultSite::ShardCrash);
        assert_eq!(ALL_SITES[13], FaultSite::ShardStall);
        assert_eq!(ALL_SITES[14], FaultSite::ConnReset);
        assert_eq!(FaultSite::ShardCrash.to_string(), "shard-crash");
        assert_eq!(FaultSite::ShardStall.to_string(), "shard-stall");
        assert_eq!(FaultSite::ConnReset.to_string(), "conn-reset");
        assert_eq!(
            FaultSite::from_name("conn-reset"),
            Some(FaultSite::ConnReset)
        );
    }

    #[test]
    fn model_swap_site_is_registered() {
        assert_eq!(ALL_SITES[15], FaultSite::ModelSwapCorrupt);
        assert_eq!(
            FaultSite::ModelSwapCorrupt.to_string(),
            "model-swap-corrupt"
        );
        assert_eq!(
            FaultSite::from_name("model-swap-corrupt"),
            Some(FaultSite::ModelSwapCorrupt)
        );
        // Appending the 16th site must not reshuffle seeded plans for
        // the first 15 (CI storms pin their seeds).
        let p = FaultPlan::from_seed(42);
        for site in ALL_SITES {
            assert!(p.shots(site) <= 2);
        }
    }

    #[test]
    fn disk_sites_are_registered() {
        assert_eq!(ALL_SITES[16], FaultSite::DiskFull);
        assert_eq!(ALL_SITES[17], FaultSite::TornWrite);
        assert_eq!(ALL_SITES[18], FaultSite::RenameCrash);
        assert_eq!(ALL_SITES[19], FaultSite::ReadEio);
        for (site, name) in [
            (FaultSite::DiskFull, "disk-full"),
            (FaultSite::TornWrite, "torn-write"),
            (FaultSite::RenameCrash, "rename-crash"),
            (FaultSite::ReadEio, "read-eio"),
        ] {
            assert_eq!(site.to_string(), name);
            assert_eq!(FaultSite::from_name(name), Some(site));
        }
        // The splitmix64 stream is consumed per-slot in site order, so
        // appending the four disk seams leaves every pinned seed's
        // schedule for the first 16 sites untouched.
        let p = FaultPlan::from_seed(42);
        assert_eq!(p.shots(FaultSite::CheckpointCorrupt), 1);
        assert_eq!(p.shots(FaultSite::ModelSwapCorrupt), 2);
    }

    #[test]
    fn activations_are_counted_events() {
        let site = FaultSite::FrameCorrupt;
        let labels = [("site", "frame-corrupt")];
        let before = gnnmls_obs::dyn_counter_value("gnnmls_faults_fired_total", &labels);
        let guard = install(&FaultPlan::single(site, 2));
        assert!(fire(site));
        assert!(fire(site));
        assert!(!fire(site), "shots exhausted");
        drop(guard);
        assert_eq!(
            gnnmls_obs::dyn_counter_value("gnnmls_faults_fired_total", &labels),
            before + 2,
            "only actual activations are counted"
        );
    }

    #[test]
    fn site_names_round_trip() {
        for site in ALL_SITES {
            assert_eq!(FaultSite::from_name(&site.to_string()), Some(site));
        }
        assert_eq!(FaultSite::from_name("no-such-site"), None);
    }
}

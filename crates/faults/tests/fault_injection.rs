//! Integration suite: every fault class the harness can inject either
//! recovers (and the recovery is recorded in the [`FlowReport`]'s
//! degradation summary) or surfaces as a typed [`FlowError`] — the flow
//! never panics, serial or parallel.
//!
//! The suite drives the real end-to-end flow on the MAERI 16PE design
//! at test scale; the rip-up-isolation fault additionally uses a
//! deliberately congested two-pin design because the benchmark designs
//! never overflow (so rip-up has no victims to fail).

use std::path::PathBuf;

use gnn_mls::flow::{run_flow, FlowConfig, FlowError, FlowPolicy};
use gnn_mls::report::FlowReport;
use gnn_mls::CheckpointError;
use gnnmls_faults::{install, FaultPlan, FaultSite};
use gnnmls_netlist::generators::{generate_maeri, GeneratedDesign, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;

fn design() -> GeneratedDesign {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap()
}

fn fast_cfg() -> FlowConfig {
    FlowConfig::fast_test(2500.0)
}

/// A fresh scratch directory under the target dir (no tempfile crate in
/// the offline workspace). Unique per tag; wiped before use.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fault-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn corrupted_stage_checkpoint_is_scrubbed_and_recomputed_on_resume() {
    // A clean reference run (no resume dir) to compare the degraded
    // resume against.
    let d = design();
    let reference = run_flow(&d, &fast_cfg(), FlowPolicy::NoMls).unwrap();

    let mut cfg = fast_cfg();
    let dir = scratch_dir("corrupt");
    cfg.resume = Some(dir.clone());
    // NoMls writes exactly two stages (routes, report); corrupt both so
    // the resumed run faces damage on its very first load.
    let guard = install(&FaultPlan::single(FaultSite::CheckpointCorrupt, 2));
    let first = run_flow(&d, &cfg, FlowPolicy::NoMls);
    assert!(first.is_ok(), "the corrupting run itself must succeed");
    let resumed = run_flow(&d, &cfg, FlowPolicy::NoMls);
    drop(guard);
    // The resume scrub quarantines the damaged checkpoints and the run
    // degrades to recomputation — same result as a clean run, never a
    // torn read, never an opaque failure.
    let resumed = resumed.expect("resume must degrade to recompute, not fail");
    assert_eq!(comparable_json(&resumed), comparable_json(&reference));
    let damaged: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".damaged"))
        .collect();
    assert!(
        !damaged.is_empty(),
        "scrub must quarantine the corrupt checkpoints"
    );
}

#[test]
fn truncated_stage_checkpoint_is_scrubbed_and_recomputed_on_resume() {
    let d = design();
    let reference = run_flow(&d, &fast_cfg(), FlowPolicy::NoMls).unwrap();

    let mut cfg = fast_cfg();
    let dir = scratch_dir("truncate");
    cfg.resume = Some(dir.clone());
    let guard = install(&FaultPlan::single(FaultSite::CheckpointTruncate, 2));
    assert!(run_flow(&d, &cfg, FlowPolicy::NoMls).is_ok());
    let resumed = run_flow(&d, &cfg, FlowPolicy::NoMls);
    drop(guard);
    let resumed = resumed.expect("resume must degrade to recompute, not fail");
    assert_eq!(comparable_json(&resumed), comparable_json(&reference));
    // A third run resumes from the recomputed (clean) checkpoints
    // without touching the quarantine files.
    let third = run_flow(&d, &cfg, FlowPolicy::NoMls).unwrap();
    assert_eq!(comparable_json(&third), comparable_json(&reference));
}

/// A write cut short by the disk (ENOSPC / power loss / crash before
/// rename) fails the writing run with a typed storage error, and the
/// next `--resume` lands on a complete state: scrub removes the
/// residue, the flow recomputes, and the report matches a clean run
/// bit-for-bit.
#[test]
fn disk_seam_crash_then_resume_is_bit_identical() {
    let d = design();
    let reference = run_flow(&d, &fast_cfg(), FlowPolicy::NoMls).unwrap();
    for site in [
        FaultSite::DiskFull,
        FaultSite::TornWrite,
        FaultSite::RenameCrash,
    ] {
        let mut cfg = fast_cfg();
        let dir = scratch_dir(&format!("disk-{site}"));
        cfg.resume = Some(dir.clone());
        let guard = install(&FaultPlan::single(site, 1));
        let crashed = run_flow(&d, &cfg, FlowPolicy::NoMls);
        drop(guard);
        match crashed {
            Err(FlowError::Checkpoint(CheckpointError::Storage(_))) => {}
            other => panic!("{site}: expected a typed storage error, got {other:?}"),
        }
        let resumed = run_flow(&d, &cfg, FlowPolicy::NoMls)
            .unwrap_or_else(|e| panic!("{site}: resume after crash failed: {e}"));
        assert_eq!(
            comparable_json(&resumed),
            comparable_json(&reference),
            "{site}: resumed report drifted from the clean run"
        );
        // The read-side seam on the same directory: one EIO is typed,
        // the retry resumes from the intact checkpoints.
        let guard = install(&FaultPlan::single(FaultSite::ReadEio, 1));
        let eio = run_flow(&d, &cfg, FlowPolicy::NoMls);
        drop(guard);
        assert!(
            matches!(eio, Err(FlowError::Checkpoint(CheckpointError::Io(_)))),
            "{site}: injected EIO must surface typed"
        );
        let retried = run_flow(&d, &cfg, FlowPolicy::NoMls).unwrap();
        assert_eq!(comparable_json(&retried), comparable_json(&reference));
    }
}

#[test]
fn injected_unroutable_nets_are_isolated_per_net() {
    use gnnmls_netlist::tech::TechNode;
    use gnnmls_netlist::{CellLibrary, NetlistBuilder, Tier};
    use gnnmls_phys::place::Point;
    use gnnmls_phys::{Floorplan, Placement};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    // 48 two-pin nets pinched through the same pair of g-cells: far
    // more demand than capacity, so rip-up rounds always have victims
    // for the injected failures to hit.
    let lib = CellLibrary::for_node(&TechNode::n16());
    let mut b = NetlistBuilder::new("pinch");
    let mut locs = Vec::new();
    for i in 0..48 {
        let a = b
            .add_cell(format!("a{i}"), lib.expect("PI"), Tier::Logic)
            .unwrap();
        let z = b
            .add_cell(format!("z{i}"), lib.expect("PO"), Tier::Logic)
            .unwrap();
        let n = b.add_net(format!("n{i}")).unwrap();
        b.connect_output(n, a, 0).unwrap();
        b.connect_input(n, z, 0).unwrap();
        locs.push(Point::new(2.0, 20.0));
        locs.push(Point::new(38.0, 20.0));
    }
    let netlist = b.finish().unwrap();
    let fp = Floorplan {
        width_um: 40.0,
        height_um: 40.0,
    };
    let placement = Placement::from_locations(locs, fp);
    let tech = TechConfig::heterogeneous_16_28(6, 6);

    let guard = install(&FaultPlan::single(FaultSite::UnroutableNet, 3));
    let (db, _) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        RouteConfig::builder()
            .target_gcells(64)
            .ripup_rounds(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    drop(guard);
    assert_eq!(
        db.summary.isolated_failures, 3,
        "each injected reroute failure must restore the victim and be counted"
    );
    for net in netlist.net_ids() {
        assert_eq!(
            db.route(net).tree.sink_node.len(),
            netlist.sinks(net).len(),
            "isolated nets keep a complete route"
        );
    }
}

#[test]
fn route_budget_exhaustion_degrades_to_pattern_and_is_reported() {
    let d = design();
    let guard = install(&FaultPlan::single(FaultSite::RouteBudgetExhausted, 5));
    let report = run_flow(&d, &fast_cfg(), FlowPolicy::NoMls).unwrap();
    drop(guard);
    assert!(
        report.degradation.pattern_fallback_sinks >= 1,
        "injected budget exhaustion must be recorded in the report"
    );
    assert!(!report.degradation.is_clean());
}

#[test]
fn nan_gradient_retries_and_the_retry_is_reported() {
    let d = design();
    let guard = install(&FaultPlan::single(FaultSite::NanGradient, 1));
    let report = run_flow(&d, &fast_cfg(), FlowPolicy::GnnMls).unwrap();
    drop(guard);
    assert!(
        report.degradation.training_retries >= 1,
        "a single NaN epoch must be retried from the last good snapshot"
    );
    assert!(
        !report.degradation.model_fallback,
        "one poisoned epoch is recoverable without abandoning the model"
    );
}

#[test]
fn unrecoverable_divergence_falls_back_to_heuristic_policy() {
    let d = design();
    let guard = install(&FaultPlan::single(FaultSite::NanGradient, u32::MAX));
    let report = run_flow(&d, &fast_cfg(), FlowPolicy::GnnMls).unwrap();
    drop(guard);
    assert!(
        report.degradation.model_fallback,
        "divergence past the retry budget must degrade to the heuristic policy"
    );
    assert!(report.degradation.training_retries >= 1);
    // The flow still produces a full routed+timed report.
    assert!(report.endpoints > 0);
}

#[test]
fn ir_nonconvergence_is_flagged_not_fatal() {
    let d = design();
    let mut cfg = fast_cfg();
    cfg.analyze_pdn = true;
    let guard = install(&FaultPlan::single(FaultSite::IrNonConvergence, 1_000));
    let report = run_flow(&d, &cfg, FlowPolicy::NoMls).unwrap();
    drop(guard);
    assert!(
        report.degradation.ir_nonconverged,
        "a capped CG solve must be flagged in the report"
    );
    assert!(
        report.ir_drop_pct.is_some(),
        "the best-effort drop is still reported"
    );
}

#[test]
fn worker_panic_is_recovered_and_counted() {
    let d = design();
    for threads in [1usize, 0] {
        let mut cfg = fast_cfg();
        cfg.threads = threads;
        let guard = install(&FaultPlan::single(FaultSite::WorkerPanic, 1));
        let report = run_flow(&d, &cfg, FlowPolicy::GnnMls).unwrap();
        drop(guard);
        assert!(
            report.degradation.recovered_worker_panics >= 1,
            "threads={threads}: the panicked item must be retried and counted"
        );
    }
}

#[test]
fn seeded_fault_storms_never_panic() {
    let d = design();
    for seed in [1u64, 7, 42] {
        let guard = install(&FaultPlan::from_seed(seed));
        let result = run_flow(&d, &fast_cfg(), FlowPolicy::GnnMls);
        drop(guard);
        // Recover-or-typed-error: reaching this line at all proves no
        // panic escaped; an Err must be the typed flow error.
        if let Err(e) = result {
            let _typed: &FlowError = &e;
            eprintln!("seed {seed}: typed flow error (acceptable): {e}");
        }
    }
}

#[test]
fn kill_after_any_stage_resumes_bit_identical() {
    let d = design();
    // Hold the harness lock (disarmed) so a concurrently scheduled
    // fault test cannot leak shots into these runs.
    let guard = install(&FaultPlan::none());

    let cfg_ref = fast_cfg();
    let reference = run_flow(&d, &cfg_ref, FlowPolicy::GnnMls).unwrap();
    let ref_json = comparable_json(&reference);

    let dir = scratch_dir("resume");
    let mut cfg = fast_cfg();
    cfg.resume = Some(dir.clone());
    let full = run_flow(&d, &cfg, FlowPolicy::GnnMls).unwrap();
    assert_eq!(comparable_json(&full), ref_json, "checkpointed run drifted");

    // Simulate a kill after each stage by keeping only that prefix of
    // stage files, then resuming. Every resume must reproduce the
    // uninterrupted report bit-for-bit (modulo wall time).
    let stages = ["decisions-gnnmls", "routes-gnnmls", "report-gnnmls"];
    for kill_after in 0..stages.len() {
        for stale in &stages[kill_after..] {
            let _ = std::fs::remove_file(dir.join(format!("{stale}.ckpt")));
        }
        let resumed = run_flow(&d, &cfg, FlowPolicy::GnnMls).unwrap();
        assert_eq!(
            comparable_json(&resumed),
            ref_json,
            "resume after killing post-stage-{kill_after} checkpoints must be bit-identical"
        );
    }
    drop(guard);
}

fn comparable_json(r: &FlowReport) -> String {
    serde_json::to_string(&r.comparable()).unwrap()
}

/// The model-swap seam: a zoo checkpoint damaged between the read and
/// the envelope check (one shot bit-flips, two shots truncate) must
/// surface as a typed [`CheckpointError`], and the very next load of
/// the untouched file must recover — the artifact on disk is never
/// harmed by the injected read-side damage.
#[test]
fn model_swap_corruption_surfaces_typed_error_then_recovers() {
    use gnn_mls::checkpoint::{ModelVersion, ZooModelCheckpoint};
    use gnn_mls::{GnnMls, ModelConfig};

    let dir = scratch_dir("model-swap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("maeri-v1.0.0.ckpt");
    ZooModelCheckpoint {
        family: "maeri".to_string(),
        version: ModelVersion::new(1, 0, 0),
        corpus_hashes: vec![42],
        pretrain_epochs: 1,
        finetune_epochs: 1,
        model: GnnMls::new(ModelConfig::default()).to_checkpoint(),
    }
    .save(&path)
    .unwrap();

    // One shot: the first load sees a bit-flip and must refuse with the
    // envelope's checksum error; the second load recovers.
    let guard = install(&FaultPlan::single(FaultSite::ModelSwapCorrupt, 1));
    let flipped = ZooModelCheckpoint::load(&path);
    let recovered = ZooModelCheckpoint::load(&path);
    drop(guard);
    match flipped {
        Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("bit-flip must surface as Corrupt, got {other:?}"),
    }
    let recovered = recovered.unwrap();
    assert_eq!(recovered.family, "maeri");
    assert_eq!(recovered.version, ModelVersion::new(1, 0, 0));

    // Two shots: the first load sees a truncation instead; still a
    // typed refusal, still recoverable once the shots are spent.
    let guard = install(&FaultPlan::single(FaultSite::ModelSwapCorrupt, 2));
    let truncated = ZooModelCheckpoint::load(&path);
    let recovered = ZooModelCheckpoint::load(&path);
    drop(guard);
    match truncated {
        Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("truncation must surface as Corrupt, got {other:?}"),
    }
    assert_eq!(recovered.unwrap().family, "maeri");
}

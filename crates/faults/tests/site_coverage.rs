//! Guard: every registered fault site is reachable from CI.
//!
//! Two ways a seam can silently rot: no seeded plan ever arms it, or
//! the CI workflow never names it. Both are asserted here, so adding a
//! `FaultSite` without wiring it into coverage fails the test suite
//! instead of shipping a dead seam.

use gnnmls_faults::{FaultPlan, ALL_SITES};

/// Seeds pinned by CI storms and soak runs. Together they must give
/// every registered site at least one shot.
const COVERAGE_SEEDS: [u64; 5] = [1, 7, 42, 3, 21];

#[test]
fn every_site_is_armed_by_at_least_one_coverage_seed() {
    assert_eq!(
        ALL_SITES.len(),
        20,
        "a new site was registered: extend COVERAGE_SEEDS so it gets a shot"
    );
    let plans: Vec<FaultPlan> = COVERAGE_SEEDS
        .iter()
        .map(|&s| FaultPlan::from_seed(s))
        .collect();
    for site in ALL_SITES {
        assert!(
            plans.iter().any(|p| p.shots(site) > 0),
            "site `{site}` is not armed by any coverage seed {COVERAGE_SEEDS:?}"
        );
    }
}

#[test]
fn every_site_appears_in_the_ci_fault_matrix() {
    let workflow = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../.github/workflows/ci.yml"
    );
    let yml =
        std::fs::read_to_string(workflow).unwrap_or_else(|e| panic!("cannot read {workflow}: {e}"));
    for site in ALL_SITES {
        // An armed matrix entry is `<name>:<shots>` — a prose mention
        // without shots does not count as coverage.
        let entry = format!("{site}:");
        assert!(
            yml.contains(&entry),
            "site `{site}` has no armed entry in .github/workflows/ci.yml"
        );
    }
}

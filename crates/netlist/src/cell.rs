//! A small standard-cell library parameterized by technology node.
//!
//! Templates carry the handful of electrical numbers the rest of the flow
//! needs: intrinsic delay, output drive resistance, input pin capacitance,
//! area, and leakage. Values are synthetic but ordered like a real library
//! (an inverter is faster than a full adder; an SRAM macro dominates both),
//! and are scaled per node by [`TechNode`] factors.

use serde::{Deserialize, Serialize};

use crate::tech::TechNode;

/// Functional class of a cell instance.
///
/// The class determines how the timing graph, DFT insertion, and the power
/// model treat the cell; the specific gate function is irrelevant to the
/// flow and only kept as a template name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// Primary input port (timing startpoint).
    Input,
    /// Primary output port (timing endpoint).
    Output,
    /// Generic combinational gate.
    Combinational,
    /// Sequential element (D flip-flop; startpoint at Q, endpoint at D).
    Register,
    /// SRAM macro (placed on the memory tier; both startpoint and endpoint).
    Macro,
    /// Level shifter inserted on inter-domain 3D crossings.
    LevelShifter,
    /// Test MUX inserted by net-based MLS DFT.
    ScanMux,
    /// Scan flip-flop inserted by wire-based MLS DFT.
    ScanRegister,
}

impl CellClass {
    /// Whether the cell is a timing startpoint (launches signals).
    #[inline]
    pub fn is_startpoint(self) -> bool {
        matches!(
            self,
            CellClass::Input | CellClass::Register | CellClass::Macro | CellClass::ScanRegister
        )
    }

    /// Whether the cell is a timing endpoint (captures signals).
    #[inline]
    pub fn is_endpoint(self) -> bool {
        matches!(
            self,
            CellClass::Output | CellClass::Register | CellClass::Macro | CellClass::ScanRegister
        )
    }

    /// Whether signals propagate through the cell combinationally.
    #[inline]
    pub fn is_combinational(self) -> bool {
        matches!(
            self,
            CellClass::Combinational | CellClass::LevelShifter | CellClass::ScanMux
        )
    }

    /// Whether the cell is sequential (participates in scan chains).
    #[inline]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellClass::Register | CellClass::ScanRegister)
    }
}

/// Electrical template of a library cell.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct CellTemplate {
    /// Library name, e.g. `"NAND2"`.
    pub name: &'static str,
    /// Functional class.
    pub class: CellClass,
    /// Number of signal input pins.
    pub inputs: u8,
    /// Number of signal output pins.
    pub outputs: u8,
    /// Intrinsic delay in ps (clk→Q for registers, access time for macros).
    pub delay_ps: f64,
    /// Output drive resistance in kΩ.
    pub drive_kohm: f64,
    /// Capacitance of each input pin in fF.
    pub input_cap_ff: f64,
    /// Setup requirement in ps (registers and macros only).
    pub setup_ps: f64,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
}

impl CellTemplate {
    fn scaled(&self, node: &TechNode) -> CellTemplate {
        CellTemplate {
            delay_ps: self.delay_ps * node.delay_scale,
            drive_kohm: self.drive_kohm * node.drive_scale,
            input_cap_ff: self.input_cap_ff * node.cap_scale,
            setup_ps: self.setup_ps * node.delay_scale,
            area_um2: self.area_um2 * node.area_scale,
            leakage_uw: self.leakage_uw * node.leakage_scale,
            ..self.clone()
        }
    }
}

/// All base templates at the 28 nm reference node.
const BASE_TEMPLATES: &[CellTemplate] = &[
    CellTemplate {
        name: "PI",
        class: CellClass::Input,
        inputs: 0,
        outputs: 1,
        delay_ps: 0.0,
        drive_kohm: 0.5,
        input_cap_ff: 0.0,
        setup_ps: 0.0,
        area_um2: 0.0,
        leakage_uw: 0.0,
    },
    CellTemplate {
        name: "PO",
        class: CellClass::Output,
        inputs: 1,
        outputs: 0,
        delay_ps: 0.0,
        drive_kohm: 0.0,
        input_cap_ff: 2.0,
        setup_ps: 0.0,
        area_um2: 0.0,
        leakage_uw: 0.0,
    },
    CellTemplate {
        name: "INV",
        class: CellClass::Combinational,
        inputs: 1,
        outputs: 1,
        delay_ps: 6.0,
        drive_kohm: 1.0,
        input_cap_ff: 0.9,
        setup_ps: 0.0,
        area_um2: 0.5,
        leakage_uw: 0.010,
    },
    CellTemplate {
        name: "BUF",
        class: CellClass::Combinational,
        inputs: 1,
        outputs: 1,
        delay_ps: 9.0,
        drive_kohm: 0.7,
        input_cap_ff: 1.0,
        setup_ps: 0.0,
        area_um2: 0.8,
        leakage_uw: 0.014,
    },
    CellTemplate {
        name: "BUFX4",
        class: CellClass::Combinational,
        inputs: 1,
        outputs: 1,
        delay_ps: 7.5,
        drive_kohm: 0.28,
        input_cap_ff: 2.4,
        setup_ps: 0.0,
        area_um2: 1.9,
        leakage_uw: 0.040,
    },
    CellTemplate {
        name: "NAND2",
        class: CellClass::Combinational,
        inputs: 2,
        outputs: 1,
        delay_ps: 8.0,
        drive_kohm: 1.1,
        input_cap_ff: 1.1,
        setup_ps: 0.0,
        area_um2: 0.7,
        leakage_uw: 0.015,
    },
    CellTemplate {
        name: "NOR2",
        class: CellClass::Combinational,
        inputs: 2,
        outputs: 1,
        delay_ps: 9.5,
        drive_kohm: 1.25,
        input_cap_ff: 1.1,
        setup_ps: 0.0,
        area_um2: 0.7,
        leakage_uw: 0.015,
    },
    CellTemplate {
        name: "XOR2",
        class: CellClass::Combinational,
        inputs: 2,
        outputs: 1,
        delay_ps: 14.0,
        drive_kohm: 1.4,
        input_cap_ff: 1.6,
        setup_ps: 0.0,
        area_um2: 1.3,
        leakage_uw: 0.024,
    },
    CellTemplate {
        name: "AOI22",
        class: CellClass::Combinational,
        inputs: 4,
        outputs: 1,
        delay_ps: 12.0,
        drive_kohm: 1.3,
        input_cap_ff: 1.3,
        setup_ps: 0.0,
        area_um2: 1.2,
        leakage_uw: 0.022,
    },
    CellTemplate {
        name: "MUX2",
        class: CellClass::Combinational,
        inputs: 3,
        outputs: 1,
        delay_ps: 12.5,
        drive_kohm: 1.2,
        input_cap_ff: 1.4,
        setup_ps: 0.0,
        area_um2: 1.4,
        leakage_uw: 0.024,
    },
    CellTemplate {
        name: "FA",
        class: CellClass::Combinational,
        inputs: 3,
        outputs: 2,
        delay_ps: 22.0,
        drive_kohm: 1.3,
        input_cap_ff: 1.8,
        setup_ps: 0.0,
        area_um2: 2.4,
        leakage_uw: 0.045,
    },
    CellTemplate {
        name: "DFF",
        class: CellClass::Register,
        inputs: 1,
        outputs: 1,
        delay_ps: 18.0,
        drive_kohm: 1.05,
        input_cap_ff: 1.4,
        setup_ps: 11.0,
        area_um2: 2.8,
        leakage_uw: 0.055,
    },
    CellTemplate {
        name: "SRAM",
        class: CellClass::Macro,
        inputs: 8,
        outputs: 8,
        delay_ps: 130.0,
        drive_kohm: 0.55,
        input_cap_ff: 2.8,
        setup_ps: 24.0,
        area_um2: 2600.0,
        leakage_uw: 9.0,
    },
    CellTemplate {
        name: "LVLSHIFT",
        class: CellClass::LevelShifter,
        inputs: 1,
        outputs: 1,
        delay_ps: 14.0,
        drive_kohm: 0.9,
        input_cap_ff: 1.2,
        setup_ps: 0.0,
        area_um2: 1.6,
        leakage_uw: 0.20,
    },
    CellTemplate {
        name: "SCANMUX",
        class: CellClass::ScanMux,
        inputs: 3,
        outputs: 1,
        delay_ps: 12.5,
        drive_kohm: 1.2,
        input_cap_ff: 1.4,
        setup_ps: 0.0,
        area_um2: 1.4,
        leakage_uw: 0.024,
    },
    CellTemplate {
        name: "SCANDFF",
        class: CellClass::ScanRegister,
        inputs: 2,
        outputs: 1,
        delay_ps: 19.5,
        drive_kohm: 1.05,
        input_cap_ff: 1.5,
        setup_ps: 12.0,
        area_um2: 3.4,
        leakage_uw: 0.065,
    },
];

/// A node-scaled view of the standard-cell library.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct CellLibrary {
    node_name: &'static str,
    templates: Vec<CellTemplate>,
}

impl CellLibrary {
    /// Builds the library scaled to `node`.
    pub fn for_node(node: &TechNode) -> Self {
        Self {
            node_name: node.name,
            templates: BASE_TEMPLATES.iter().map(|t| t.scaled(node)).collect(),
        }
    }

    /// Name of the node this library was scaled to.
    #[inline]
    pub fn node_name(&self) -> &'static str {
        self.node_name
    }

    /// Looks up a template by library name.
    pub fn get(&self, name: &str) -> Option<&CellTemplate> {
        self.templates.iter().find(|t| t.name == name)
    }

    /// Looks up a template, panicking with a clear message if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the library; generators only use known
    /// names so this indicates a programming error.
    pub fn expect(&self, name: &str) -> &CellTemplate {
        self.get(name)
            .unwrap_or_else(|| panic!("cell template `{name}` not in library"))
    }

    /// Iterates over all templates.
    pub fn iter(&self) -> impl Iterator<Item = &CellTemplate> {
        self.templates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_contains_all_base_templates() {
        let lib = CellLibrary::for_node(&TechNode::n28());
        for t in BASE_TEMPLATES {
            assert!(lib.get(t.name).is_some(), "missing {}", t.name);
        }
        assert_eq!(lib.iter().count(), BASE_TEMPLATES.len());
        assert_eq!(lib.node_name(), "28nm");
    }

    #[test]
    fn scaling_preserves_ordering_and_shrinks_16nm() {
        let l28 = CellLibrary::for_node(&TechNode::n28());
        let l16 = CellLibrary::for_node(&TechNode::n16());
        for t in BASE_TEMPLATES {
            let t28 = l28.expect(t.name);
            let t16 = l16.expect(t.name);
            assert!(t16.delay_ps <= t28.delay_ps, "{} delay", t.name);
            assert!(t16.input_cap_ff <= t28.input_cap_ff, "{} cap", t.name);
            assert!(t16.area_um2 <= t28.area_um2, "{} area", t.name);
        }
        // Relative ordering survives scaling.
        assert!(l16.expect("INV").delay_ps < l16.expect("FA").delay_ps);
        assert!(l16.expect("FA").delay_ps < l16.expect("SRAM").delay_ps);
    }

    #[test]
    fn class_predicates() {
        assert!(CellClass::Register.is_startpoint());
        assert!(CellClass::Register.is_endpoint());
        assert!(CellClass::Register.is_sequential());
        assert!(!CellClass::Register.is_combinational());
        assert!(CellClass::Input.is_startpoint());
        assert!(!CellClass::Input.is_endpoint());
        assert!(CellClass::Output.is_endpoint());
        assert!(CellClass::Combinational.is_combinational());
        assert!(CellClass::ScanMux.is_combinational());
        assert!(CellClass::ScanRegister.is_sequential());
        assert!(CellClass::Macro.is_startpoint() && CellClass::Macro.is_endpoint());
        assert!(CellClass::LevelShifter.is_combinational());
    }

    #[test]
    #[should_panic(expected = "not in library")]
    fn expect_unknown_template_panics() {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let _ = lib.expect("NAND97");
    }

    #[test]
    fn pin_counts_are_consistent() {
        for t in BASE_TEMPLATES {
            match t.class {
                CellClass::Input => assert_eq!((t.inputs, t.outputs), (0, 1)),
                CellClass::Output => assert_eq!((t.inputs, t.outputs), (1, 0)),
                _ => {
                    assert!(t.inputs >= 1);
                    assert!(t.outputs >= 1);
                }
            }
        }
    }
}

//! Cortex-A7-style CPU generator.
//!
//! Builds an in-order, 5-stage (IF/ID/EX/MEM/WB) pipeline per core with
//! forwarding paths, a flip-flop register file, L1 I/D cache macros on the
//! memory die with small bank-decode glue, and a shared L2 with a bus
//! interconnect between cores. Stage logic is generated as random clouds
//! sized by `gates_per_stage`, which reproduces the mix of short intra-
//! stage nets and long forwarding / cache-access nets that makes the A7
//! benchmark interesting for MLS.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cell::CellLibrary;
use crate::ids::{NetId, Tier};
use crate::netlist::{NetlistBuilder, NetlistError};
use crate::tech::TechConfig;

use super::cloud::{build_cloud, sink_into_outputs, sink_into_registers, CloudSpec};
use super::GeneratedDesign;

/// Configuration of an A7-style CPU design.
#[derive(Clone, Debug, PartialEq)]
pub struct A7Config {
    /// Number of cores (the paper uses a dual-core).
    pub cores: usize,
    /// Combinational gates per pipeline stage per core.
    pub gates_per_stage: usize,
    /// Architectural register count (flip-flop register file entries; each
    /// entry is one DFF in this bit-sliced model).
    pub regfile_entries: usize,
    /// L1 cache banks per side (I and D) per core.
    pub l1_banks: usize,
    /// Shared L2 banks.
    pub l2_banks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl A7Config {
    /// A `cores`-core A7 with default sizing.
    pub fn new(cores: usize) -> Self {
        Self {
            cores: cores.max(1),
            gates_per_stage: 1200,
            regfile_entries: 64,
            l1_banks: 2,
            l2_banks: 4,
            seed: 0,
        }
    }

    /// The paper's dual-core benchmark.
    pub fn dual_core() -> Self {
        Self::new(2)
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the per-stage gate count (used by fast tests and scaled
    /// benches).
    pub fn with_gates_per_stage(mut self, gates: usize) -> Self {
        self.gates_per_stage = gates.max(8);
        self
    }
}

const STAGES: [&str; 5] = ["if", "id", "ex", "mem", "wb"];

struct A7Builder<'a> {
    b: NetlistBuilder,
    logic_lib: &'a CellLibrary,
    mem_lib: &'a CellLibrary,
    rng: StdRng,
}

impl<'a> A7Builder<'a> {
    fn pi_bus(&mut self, prefix: &str, n: usize) -> Result<Vec<NetId>, NetlistError> {
        let pi = self.logic_lib.expect("PI");
        let mut nets = Vec::with_capacity(n);
        for i in 0..n {
            let c = self
                .b
                .add_cell(format!("{prefix}_pi{i}"), pi, Tier::Logic)?;
            let net = self.b.add_net(format!("{prefix}_in{i}"))?;
            self.b.connect_output(net, c, 0)?;
            nets.push(net);
        }
        Ok(nets)
    }

    /// An SRAM bank on the memory tier with a small decode cloud (also on
    /// the memory tier) in front of it. Returns the bank's 8 output nets.
    fn cache_bank(&mut self, name: &str, addr: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
        // Bank-decode glue lives with the macro on the memory die so the
        // memory tier has some routable logic of its own.
        let dec = build_cloud(
            &mut self.b,
            self.mem_lib,
            Tier::Memory,
            &format!("{name}_dec"),
            addr,
            &CloudSpec::new(24),
            &mut self.rng,
        )?;
        let tpl = self.mem_lib.expect("SRAM");
        let c = self.b.add_cell(name.to_string(), tpl, Tier::Memory)?;
        for (k, &n) in dec.iter().take(8).enumerate() {
            self.b.connect_input(n, c, k as u8)?;
        }
        // Any decode outputs beyond the macro's 8 inputs must still be sunk.
        if dec.len() > 8 {
            let extra = sink_into_registers(
                &mut self.b,
                self.mem_lib,
                Tier::Memory,
                &format!("{name}_spill"),
                &dec[8..],
            )?;
            sink_into_outputs(
                &mut self.b,
                self.mem_lib,
                Tier::Memory,
                &format!("{name}_spill"),
                &extra,
            )?;
        }
        let mut outs = Vec::with_capacity(8);
        for w in 0..8 {
            let net = self.b.add_net(format!("{name}_q{w}"))?;
            self.b.connect_output(net, c, w)?;
            outs.push(net);
        }
        Ok(outs)
    }
}

/// Generates an A7-style multi-core CPU netlist.
///
/// # Errors
///
/// Propagates [`NetlistError`] (internal name collisions would be a bug).
pub fn generate_a7(cfg: &A7Config, tech: &TechConfig) -> Result<GeneratedDesign, NetlistError> {
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let mem_lib = CellLibrary::for_node(&tech.memory_node);
    let name = format!("a7_{}core", cfg.cores);

    let mut a = A7Builder {
        b: NetlistBuilder::new(&name),
        logic_lib: &logic_lib,
        mem_lib: &mem_lib,
        rng: StdRng::seed_from_u64(cfg.seed),
    };

    let mut bus_masters: Vec<NetId> = Vec::new();

    for core in 0..cfg.cores {
        let cp = format!("c{core}");

        // Fetch inputs: external pins + L1I read data.
        let ext = a.pi_bus(&format!("{cp}_ext"), 8)?;
        let mut l1i_out = Vec::new();
        for bank in 0..cfg.l1_banks {
            l1i_out.extend(a.cache_bank(&format!("{cp}_l1i{bank}"), &ext)?);
        }

        // Register file: DFF array written by WB (wired after the loop via
        // feedback), read by EX. Model reads as Q nets; writes land in the
        // WB sink registers below, so here the regfile is seeded from ext.
        let rf_seed: Vec<NetId> = (0..cfg.regfile_entries)
            .map(|i| ext[i % ext.len()])
            .collect();
        let rf_q = sink_into_registers(
            &mut a.b,
            &logic_lib,
            Tier::Logic,
            &format!("{cp}_rf"),
            &rf_seed,
        )?;

        // Pipeline stages. Each stage: cloud fed by the previous stage's
        // registered outputs (+ stage-specific extras), outputs registered.
        let mut prev_q: Vec<NetId> = {
            let mut v = ext.clone();
            v.extend(l1i_out.iter().copied());
            v
        };
        let mut ex_fwd: Vec<NetId> = Vec::new();
        let mut mem_addr: Vec<NetId> = Vec::new();
        for (si, stage) in STAGES.iter().enumerate() {
            let sp = format!("{cp}_{stage}");
            let mut inputs = prev_q.clone();
            match *stage {
                // Decode reads forwarding results (wired on the next loop
                // iteration for EX; on iteration 0 ex_fwd is empty).
                "ex" => inputs.extend(rf_q.iter().copied()),
                "mem" => {}
                _ => {}
            }
            let spec = CloudSpec::new(cfg.gates_per_stage.max(8)).with_depth(16);
            let outs = build_cloud(
                &mut a.b,
                &logic_lib,
                Tier::Logic,
                &sp,
                &inputs,
                &spec,
                &mut a.rng,
            )?;
            let q =
                sink_into_registers(&mut a.b, &logic_lib, Tier::Logic, &format!("{sp}_r"), &outs)?;
            if *stage == "ex" {
                ex_fwd = q.iter().copied().take(8).collect();
            }
            if *stage == "mem" {
                mem_addr = q.iter().copied().take(8).collect();
            }
            prev_q = q;
            // Keep stage-to-stage words bounded so later stages do not blow
            // up combinatorially.
            if prev_q.len() > 48 {
                let (keep, spill) = prev_q.split_at(48);
                sink_into_outputs(
                    &mut a.b,
                    &logic_lib,
                    Tier::Logic,
                    &format!("{sp}_spill"),
                    spill,
                )?;
                prev_q = keep.to_vec();
            }
            let _ = si;
        }

        // L1D: addressed by MEM stage outputs; read data merges into a WB
        // merge cloud together with the WB stage outputs.
        let mut l1d_out = Vec::new();
        for bank in 0..cfg.l1_banks {
            l1d_out.extend(a.cache_bank(&format!("{cp}_l1d{bank}"), &mem_addr)?);
        }
        let mut wb_in = prev_q.clone();
        wb_in.extend(l1d_out);
        // Forwarding: EX results re-enter the merge (long nets back).
        wb_in.extend(ex_fwd);
        let wb_merge = build_cloud(
            &mut a.b,
            &logic_lib,
            Tier::Logic,
            &format!("{cp}_wbm"),
            &wb_in,
            &CloudSpec::new(cfg.gates_per_stage / 2),
            &mut a.rng,
        )?;
        let wb_q = sink_into_registers(
            &mut a.b,
            &logic_lib,
            Tier::Logic,
            &format!("{cp}_wbq"),
            &wb_merge,
        )?;
        // Retire a slice architecturally; the rest drives the bus.
        let retire: Vec<NetId> = wb_q.iter().copied().take(8).collect();
        sink_into_outputs(
            &mut a.b,
            &logic_lib,
            Tier::Logic,
            &format!("{cp}_ret"),
            &retire,
        )?;
        bus_masters.extend(wb_q.into_iter().skip(8));
    }

    // Shared bus + L2.
    if bus_masters.is_empty() {
        bus_masters = a.pi_bus("bus_seed", 8)?;
    }
    let bus = build_cloud(
        &mut a.b,
        &logic_lib,
        Tier::Logic,
        "bus",
        &bus_masters,
        &CloudSpec::new((cfg.gates_per_stage / 2).max(16)),
        &mut a.rng,
    )?;
    let mut l2_out = Vec::new();
    for bank in 0..cfg.l2_banks {
        let addr: Vec<NetId> = bus
            .iter()
            .copied()
            .skip(bank)
            .take(8.min(bus.len()))
            .collect();
        let addr = if addr.is_empty() { bus.clone() } else { addr };
        l2_out.extend(a.cache_bank(&format!("l2_{bank}"), &addr)?);
    }
    // Sink every remaining open net: unused bus nets and L2 outputs.
    let used_by_l2: std::collections::HashSet<NetId> = (0..cfg.l2_banks)
        .flat_map(|bank| bus.iter().copied().skip(bank).take(8.min(bus.len())))
        .collect();
    let leftover: Vec<NetId> = bus
        .iter()
        .copied()
        .filter(|n| !used_by_l2.contains(n))
        .chain(l2_out)
        .collect();
    let q = sink_into_registers(&mut a.b, &logic_lib, Tier::Logic, "drain", &leftover)?;
    sink_into_outputs(&mut a.b, &logic_lib, Tier::Logic, "drain", &q)?;

    let mut netlist = a.b.finish()?;
    super::buffering::limit_fanout(&mut netlist, tech, 10)?;
    Ok(GeneratedDesign {
        netlist,
        tech: tech.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitDag;
    use crate::stats::NetlistStats;

    fn small() -> A7Config {
        A7Config::new(2).with_gates_per_stage(120)
    }

    #[test]
    fn a7_builds_and_validates() {
        let tech = TechConfig::heterogeneous_16_28(8, 8);
        let d = generate_a7(&small(), &tech).unwrap();
        let s = NetlistStats::compute(&d.netlist);
        assert!(s.cells > 1000, "{s}");
        assert!(s.macros >= 2 * (2 * 2) + 4, "L1I/L1D per core + L2");
        assert!(s.registers > 100);
        assert!(s.nets_3d > 0, "cache access nets cross tiers");
        assert!(
            s.memory_tier_cells > s.macros,
            "decode glue lives on the memory tier"
        );
    }

    #[test]
    fn a7_is_acyclic_and_deep() {
        let tech = TechConfig::homogeneous_28_28(8, 8);
        let d = generate_a7(&small(), &tech).unwrap();
        let dag = CircuitDag::build(&d.netlist).unwrap();
        assert!(dag.depth() >= 5, "depth {}", dag.depth());
    }

    #[test]
    fn a7_is_deterministic() {
        let tech = TechConfig::homogeneous_28_28(8, 8);
        let a = generate_a7(&small().with_seed(3), &tech).unwrap();
        let b = generate_a7(&small().with_seed(3), &tech).unwrap();
        assert_eq!(a.netlist.cell_count(), b.netlist.cell_count());
        assert_eq!(a.netlist.net_count(), b.netlist.net_count());
    }

    #[test]
    fn a7_scales_with_cores_and_stage_size() {
        let tech = TechConfig::homogeneous_28_28(8, 8);
        let one = generate_a7(&A7Config::new(1).with_gates_per_stage(120), &tech).unwrap();
        let two = generate_a7(&A7Config::new(2).with_gates_per_stage(120), &tech).unwrap();
        assert!(two.netlist.cell_count() > (one.netlist.cell_count() * 3) / 2);
        let fat = generate_a7(&A7Config::new(1).with_gates_per_stage(240), &tech).unwrap();
        assert!(fat.netlist.cell_count() > one.netlist.cell_count());
    }
}

//! Fanout buffering — the buffer-tree insertion synthesis performs on
//! high-fanout nets (clock-like control, broadcast weights).
//!
//! Without it the generators' control nets would carry hundreds of sinks,
//! and `R_drive × C_load` would blow the timing model up in a way no real
//! netlist does. [`limit_fanout`] repeatedly splits any net with more
//! than `max_fanout` sinks through `BUFX4` drivers until every net is
//! within bound.

use crate::cell::CellLibrary;
use crate::ids::{NetId, Tier};
use crate::netlist::{Netlist, NetlistError};
use crate::tech::TechConfig;

/// Splits every net with more than `max_fanout` sinks through buffer
/// trees; returns the number of buffers inserted.
///
/// # Errors
///
/// Propagates [`NetlistError`] (name collisions indicate the pass ran on
/// a netlist that already used its naming scheme).
///
/// # Panics
///
/// Panics if `max_fanout < 2` (a buffer tree cannot reduce fanout below
/// its own branching).
pub fn limit_fanout(
    netlist: &mut Netlist,
    tech: &TechConfig,
    max_fanout: usize,
) -> Result<usize, NetlistError> {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let memory_lib = CellLibrary::for_node(&tech.memory_node);
    let mut added = 0usize;
    let mut serial = 0usize;

    // Worklist: nets may re-enter after splitting (their remaining fanout
    // is ceil(n / max_fanout) buffers + untouched sinks, bounded each
    // round, so this terminates).
    let mut work: Vec<NetId> = netlist.net_ids().collect();
    while let Some(net) = work.pop() {
        let sinks = netlist.sinks(net).len();
        if sinks <= max_fanout {
            continue;
        }
        // Move every sink behind a fresh buffer, in chunks of
        // `max_fanout`; the net is left with `ceil(n / max_fanout)` buffer
        // sinks (< n), so the worklist strictly converges.
        let all: Vec<_> = netlist.sinks(net).to_vec();
        let tier = netlist.cell(netlist.driver_cell(net)).tier;
        let lib = match tier {
            Tier::Logic => &logic_lib,
            Tier::Memory => &memory_lib,
        };
        for chunk in all.chunks(max_fanout) {
            let buf = netlist.add_cell(format!("fobuf_{serial}"), lib.expect("BUFX4"), tier)?;
            let child = netlist.split_net(net, chunk, buf, format!("fonet_{serial}"))?;
            serial += 1;
            added += 1;
            work.push(child);
        }
        work.push(net);
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::graph::CircuitDag;
    use crate::netlist::NetlistBuilder;
    use crate::tech::TechNode;

    fn star(fanout: usize) -> Netlist {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("star");
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let n = b.add_net("big").unwrap();
        b.connect_output(n, pi, 0).unwrap();
        for i in 0..fanout {
            let po = b
                .add_cell(format!("po{i}"), lib.expect("PO"), Tier::Logic)
                .unwrap();
            b.connect_input(n, po, 0).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn fanout_is_bounded_after_the_pass() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let mut n = star(100);
        let added = limit_fanout(&mut n, &tech, 8).unwrap();
        assert!(added > 0);
        for net in n.net_ids() {
            assert!(
                n.sinks(net).len() <= 8,
                "net {} still has {} sinks",
                n.net(net).name,
                n.sinks(net).len()
            );
        }
        // All 100 POs still reachable (acyclic, connected).
        let dag = CircuitDag::build(&n).unwrap();
        assert_eq!(dag.topo_order().len(), n.cell_count());
    }

    #[test]
    fn small_nets_are_untouched() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let mut n = star(5);
        let cells = n.cell_count();
        let added = limit_fanout(&mut n, &tech, 8).unwrap();
        assert_eq!(added, 0);
        assert_eq!(n.cell_count(), cells);
    }

    #[test]
    fn deep_trees_terminate() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let mut n = star(1000);
        limit_fanout(&mut n, &tech, 4).unwrap();
        for net in n.net_ids() {
            assert!(n.sinks(net).len() <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "max_fanout")]
    fn tiny_bound_panics() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let mut n = star(10);
        let _ = limit_fanout(&mut n, &tech, 1);
    }
}

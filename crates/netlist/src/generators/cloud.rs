//! Random combinational logic clouds with Rent's-rule-flavored locality.
//!
//! Both benchmark generators need "a cluster of N gates fed by these nets".
//! [`build_cloud`] creates one: gates pick their fanins mostly from recently
//! created nets (local wiring) with an occasional long reach back (global
//! wiring), which reproduces the short-net-dominated / long-tail wirelength
//! distribution of synthesized logic.

use rand::rngs::StdRng;
use rand::Rng;

use crate::cell::CellLibrary;
use crate::ids::{NetId, Tier};
use crate::netlist::{NetlistBuilder, NetlistError};

/// Parameters of a random logic cloud.
#[derive(Clone, Debug, PartialEq)]
pub struct CloudSpec {
    /// Number of gates to create.
    pub gates: usize,
    /// Logic depth: gates are distributed over this many levels and pick
    /// fanins mostly from the previous level, bounding the combinational
    /// depth like synthesized logic (real cones are 8–20 levels deep).
    pub depth: usize,
    /// Probability of a fanin reaching any earlier level (long wires).
    pub long_reach: f64,
}

impl CloudSpec {
    /// A cloud of `gates` gates with default depth (12 levels, 8 % long
    /// reach).
    pub fn new(gates: usize) -> Self {
        Self {
            gates,
            depth: 12,
            long_reach: 0.08,
        }
    }

    /// Sets the logic depth.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }
}

/// Gate mix used inside clouds: (template name, relative weight).
const GATE_MIX: &[(&str, u32)] = &[
    ("INV", 18),
    ("BUF", 6),
    ("NAND2", 28),
    ("NOR2", 16),
    ("XOR2", 10),
    ("AOI22", 12),
    ("MUX2", 10),
];

fn pick_gate(rng: &mut StdRng) -> &'static str {
    let total: u32 = GATE_MIX.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for (name, w) in GATE_MIX {
        if x < *w {
            return name;
        }
        x -= w;
    }
    unreachable!("weights cover the range")
}

/// Builds a random logic cloud on `tier`, fed by `inputs`.
///
/// Returns the cloud's output nets: every created net that ended up with no
/// internal sink (the cone outputs). Callers must sink all of them —
/// typically with [`sink_into_registers`] or by wiring them onward — or the
/// final [`NetlistBuilder::finish`] validation will fail.
///
/// Instance and net names are prefixed with `prefix` and must therefore be
/// unique per call site.
///
/// # Errors
///
/// Propagates [`NetlistError`] on name collisions (a reused `prefix`).
///
/// # Panics
///
/// Panics if `inputs` is empty or `spec.gates == 0`.
pub fn build_cloud(
    b: &mut NetlistBuilder,
    lib: &CellLibrary,
    tier: Tier,
    prefix: &str,
    inputs: &[NetId],
    spec: &CloudSpec,
    rng: &mut StdRng,
) -> Result<Vec<NetId>, NetlistError> {
    assert!(!inputs.is_empty(), "cloud needs at least one input net");
    assert!(spec.gates > 0, "cloud needs at least one gate");

    // Nets are organized in levels: a gate at level `l` draws fanins
    // mostly from level `l − 1` (short wires, bounded depth) with an
    // occasional reach to any earlier level (long wires). `sink_count`
    // tracks which nets end up unconsumed (those become the cloud's
    // outputs). Every input net is guaranteed a sink: gate fanins drain
    // `must_use` first, and any inputs left over (more inputs than gate
    // pins) get a tap inverter appended.
    let mut history: Vec<NetId> = inputs.to_vec();
    let first_internal = history.len();
    let mut sink_count = vec![0usize; spec.gates];
    let mut must_use: std::collections::VecDeque<usize> = (0..inputs.len()).collect();
    // level_start[l] = first history index of level l; level 0 = inputs.
    let mut level_start: Vec<usize> = vec![0];
    let depth = spec.depth.max(1);
    let per_level = spec.gates.div_ceil(depth);

    for g in 0..spec.gates {
        if g % per_level == 0 {
            level_start.push(history.len());
        }
        let tpl = lib.expect(pick_gate(rng));
        let cell = b.add_cell(format!("{prefix}_g{g}"), tpl, tier)?;
        let out = b.add_net(format!("{prefix}_n{g}"))?;
        b.connect_output(out, cell, 0)?;
        // Fanin pool: the previous completed level.
        let cur_level = level_start.len() - 1;
        let (pool_lo, pool_hi) = if cur_level == 1 {
            (0, first_internal.max(1))
        } else {
            (level_start[cur_level - 1], level_start[cur_level])
        };
        for k in 0..tpl.inputs {
            let idx = if let Some(i) = must_use.pop_front() {
                i
            } else if rng.gen_bool(spec.long_reach) {
                rng.gen_range(0..history.len())
            } else {
                rng.gen_range(pool_lo..pool_hi.max(pool_lo + 1))
            };
            b.connect_input(history[idx], cell, k)?;
            if idx >= first_internal {
                sink_count[idx - first_internal] += 1;
            }
        }
        history.push(out);
    }

    let mut outputs: Vec<NetId> = history[first_internal..]
        .iter()
        .zip(&sink_count)
        .filter(|(_, &c)| c == 0)
        .map(|(&n, _)| n)
        .collect();

    // More inputs than the cloud had fanin pins: tap the rest so every
    // input net is sunk; the tap outputs join the cloud's outputs.
    let inv = lib.expect("INV");
    for (t, idx) in must_use.into_iter().enumerate() {
        let cell = b.add_cell(format!("{prefix}_tap{t}"), inv, tier)?;
        b.connect_input(history[idx], cell, 0)?;
        let out = b.add_net(format!("{prefix}_tapn{t}"))?;
        b.connect_output(out, cell, 0)?;
        outputs.push(out);
    }

    Ok(outputs)
}

/// Sinks each net into a fresh register on `tier`; returns the registers'
/// output (Q) nets, one per input net, in order.
///
/// # Errors
///
/// Propagates [`NetlistError`] on name collisions (a reused `prefix`).
pub fn sink_into_registers(
    b: &mut NetlistBuilder,
    lib: &CellLibrary,
    tier: Tier,
    prefix: &str,
    nets: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    let dff = lib.expect("DFF");
    let mut q_nets = Vec::with_capacity(nets.len());
    for (i, &n) in nets.iter().enumerate() {
        let ff = b.add_cell(format!("{prefix}_ff{i}"), dff, tier)?;
        b.connect_input(n, ff, 0)?;
        let q = b.add_net(format!("{prefix}_q{i}"))?;
        b.connect_output(q, ff, 0)?;
        q_nets.push(q);
    }
    Ok(q_nets)
}

/// Sinks each net into a fresh primary output on `tier`.
///
/// # Errors
///
/// Propagates [`NetlistError`] on name collisions (a reused `prefix`).
pub fn sink_into_outputs(
    b: &mut NetlistBuilder,
    lib: &CellLibrary,
    tier: Tier,
    prefix: &str,
    nets: &[NetId],
) -> Result<(), NetlistError> {
    let po = lib.expect("PO");
    for (i, &n) in nets.iter().enumerate() {
        let p = b.add_cell(format!("{prefix}_po{i}"), po, tier)?;
        b.connect_input(n, p, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechNode;
    use rand::SeedableRng;

    fn setup() -> (NetlistBuilder, CellLibrary, Vec<NetId>) {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("cloudtest");
        let mut inputs = Vec::new();
        for i in 0..4 {
            let pi = b
                .add_cell(format!("pi{i}"), lib.expect("PI"), Tier::Logic)
                .unwrap();
            let n = b.add_net(format!("in{i}")).unwrap();
            b.connect_output(n, pi, 0).unwrap();
            inputs.push(n);
        }
        (b, lib, inputs)
    }

    #[test]
    fn cloud_validates_and_every_internal_net_is_sunk() {
        let (mut b, lib, inputs) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let outs = build_cloud(
            &mut b,
            &lib,
            Tier::Logic,
            "c",
            &inputs,
            &CloudSpec::new(200),
            &mut rng,
        )
        .unwrap();
        assert!(!outs.is_empty(), "a cone must have outputs");
        let qs = sink_into_registers(&mut b, &lib, Tier::Logic, "c_out", &outs).unwrap();
        assert_eq!(qs.len(), outs.len());
        sink_into_outputs(&mut b, &lib, Tier::Logic, "c_po", &qs).unwrap();
        let n = b.finish().expect("all nets driven and sunk");
        assert!(n.cell_count() > 200);
    }

    #[test]
    fn cloud_is_deterministic_under_a_seed() {
        let gen = |seed| {
            let (mut b, lib, inputs) = setup();
            let mut rng = StdRng::seed_from_u64(seed);
            let outs = build_cloud(
                &mut b,
                &lib,
                Tier::Logic,
                "c",
                &inputs,
                &CloudSpec::new(64),
                &mut rng,
            )
            .unwrap();
            (outs.len(), b.cell_count())
        };
        assert_eq!(gen(42), gen(42));
        // Different seeds almost surely give different shapes.
        assert_ne!(gen(1).0, gen(2).0);
    }

    #[test]
    fn depth_bounds_the_logic_levels() {
        // Build two clouds with different depths and check the deeper one
        // levelizes deeper (structural property of the generator).
        use crate::generators::cloud::sink_into_outputs;
        use crate::graph::CircuitDag;

        let build = |depth: usize| {
            let (mut b, lib, inputs) = setup();
            let mut rng = StdRng::seed_from_u64(7);
            let spec = CloudSpec {
                gates: 240,
                depth,
                long_reach: 0.0,
            };
            let outs =
                build_cloud(&mut b, &lib, Tier::Logic, "c", &inputs, &spec, &mut rng).unwrap();
            let qs = sink_into_registers(&mut b, &lib, Tier::Logic, "r", &outs).unwrap();
            sink_into_outputs(&mut b, &lib, Tier::Logic, "o", &qs).unwrap();
            let n = b.finish().unwrap();
            CircuitDag::build(&n).unwrap().depth()
        };
        let shallow = build(4);
        let deep = build(20);
        assert!(shallow <= 4 + 3, "shallow cloud depth {shallow}");
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn gate_mix_covers_all_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(pick_gate(&mut rng));
        }
        assert_eq!(seen.len(), GATE_MIX.len(), "all gate kinds should appear");
    }
}

//! MAERI-style DNN accelerator generator.
//!
//! Reproduces the structure of MAERI (Kwon et al., ASPLOS'18) as used in the
//! paper's benchmarks: a global buffer (SRAM, memory die) feeding a binary
//! *distribution tree* of configurable switches, an array of multiplier
//! *processing elements* (PEs, logic die) with per-group local weight
//! buffers (SRAM, memory die), and a binary *reduction tree* of adder
//! switches collecting results into an output buffer. A control cloud
//! drives the switch select lines; PE/adder carry-outs feed a status
//! collector. Every module is bit-sliced to `data_width`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cell::CellLibrary;
use crate::ids::{NetId, Tier};
use crate::netlist::{NetlistBuilder, NetlistError};
use crate::tech::TechConfig;

use super::cloud::{build_cloud, sink_into_outputs, sink_into_registers, CloudSpec};
use super::GeneratedDesign;

/// Configuration of a MAERI-style accelerator.
#[derive(Clone, Debug, PartialEq)]
pub struct MaeriConfig {
    /// Number of processing elements (rounded up to a power of two, ≥ 2).
    pub pes: usize,
    /// Memory bandwidth lanes (global buffer banks; rounded up to a power
    /// of two, ≥ 1).
    pub bandwidth: usize,
    /// Bits per link (1..=8; SRAM macros expose 8 data pins).
    pub data_width: usize,
    /// RNG seed for the random-logic portions (control cloud, gate mix).
    pub seed: u64,
}

impl MaeriConfig {
    /// A MAERI with `pes` PEs and `bandwidth` buffer lanes, 8-bit links,
    /// seed 0.
    pub fn new(pes: usize, bandwidth: usize) -> Self {
        Self {
            pes,
            bandwidth,
            data_width: 8,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link width in bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn with_data_width(mut self, bits: usize) -> Self {
        assert!((1..=8).contains(&bits), "data width must be 1..=8 bits");
        self.data_width = bits;
        self
    }

    /// The paper's MAERI 128PE 32BW benchmark.
    pub fn pe128_bw32() -> Self {
        Self::new(128, 32)
    }

    /// The paper's MAERI 256PE 64BW benchmark.
    pub fn pe256_bw64() -> Self {
        Self::new(256, 64)
    }

    /// The paper's MAERI 16PE 4BW benchmark (Table III DFT study).
    pub fn pe16_bw4() -> Self {
        Self::new(16, 4)
    }

    fn normalized(&self) -> (usize, usize) {
        (
            self.pes.max(2).next_power_of_two(),
            self.bandwidth.max(1).next_power_of_two(),
        )
    }
}

struct MaeriBuilder<'a> {
    b: NetlistBuilder,
    logic_lib: &'a CellLibrary,
    mem_lib: &'a CellLibrary,
    rng: StdRng,
    width: usize,
    /// Control nets driving switch select pins (round-robin).
    ctrl: Vec<NetId>,
    ctrl_cursor: usize,
    /// Carry/status nets collected from PEs and adders.
    status: Vec<NetId>,
}

impl<'a> MaeriBuilder<'a> {
    fn next_ctrl(&mut self) -> NetId {
        let n = self.ctrl[self.ctrl_cursor % self.ctrl.len()];
        self.ctrl_cursor += 1;
        n
    }

    /// Adds a bus of `n` primary inputs, returning their nets.
    fn pi_bus(&mut self, prefix: &str, n: usize) -> Result<Vec<NetId>, NetlistError> {
        let pi = self.logic_lib.expect("PI");
        let mut nets = Vec::with_capacity(n);
        for i in 0..n {
            let c = self
                .b
                .add_cell(format!("{prefix}_pi{i}"), pi, Tier::Logic)?;
            let net = self.b.add_net(format!("{prefix}_in{i}"))?;
            self.b.connect_output(net, c, 0)?;
            nets.push(net);
        }
        Ok(nets)
    }

    /// Adds an SRAM macro on the memory tier wired to up to 8 input nets;
    /// returns `width` output nets.
    fn sram(&mut self, name: &str, inputs: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
        let tpl = self.mem_lib.expect("SRAM");
        let c = self.b.add_cell(name.to_string(), tpl, Tier::Memory)?;
        for (k, &n) in inputs.iter().take(8).enumerate() {
            self.b.connect_input(n, c, k as u8)?;
        }
        let mut outs = Vec::with_capacity(self.width);
        for w in 0..self.width {
            let net = self.b.add_net(format!("{name}_q{w}"))?;
            self.b.connect_output(net, c, w as u8)?;
            outs.push(net);
        }
        Ok(outs)
    }

    /// A distribution-tree switch: per bit a MUX2 choosing between the two
    /// "parent" words; returns the switched word.
    fn switch(
        &mut self,
        prefix: &str,
        a: &[NetId],
        bb: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        let mux = self.logic_lib.expect("MUX2");
        let mut outs = Vec::with_capacity(self.width);
        for w in 0..self.width {
            let sel = self.next_ctrl();
            let c = self
                .b
                .add_cell(format!("{prefix}_mx{w}"), mux, Tier::Logic)?;
            self.b.connect_input(a[w], c, 0)?;
            self.b.connect_input(bb[w % bb.len()], c, 1)?;
            self.b.connect_input(sel, c, 2)?;
            let net = self.b.add_net(format!("{prefix}_o{w}"))?;
            self.b.connect_output(net, c, 0)?;
            outs.push(net);
        }
        Ok(outs)
    }

    /// Registers a word (pipeline stage); returns the Q word.
    fn pipe(&mut self, prefix: &str, word: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
        sink_into_registers(&mut self.b, self.logic_lib, Tier::Logic, prefix, word)
    }

    /// A multiplier PE: input registers, AND partial products, a ripple FA
    /// chain, and output registers. Returns the registered sum word; pushes
    /// the final carry (registered) onto `status`.
    fn pe(&mut self, idx: usize, act: &[NetId], wt: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
        let p = format!("pe{idx}");
        let act_r = self.pipe(&format!("{p}_ar"), act)?;
        let nand = self.logic_lib.expect("NAND2");
        let inv = self.logic_lib.expect("INV");
        let fa = self.logic_lib.expect("FA");

        let mut sums = Vec::with_capacity(self.width);
        let mut carry: Option<NetId> = None;
        for w in 0..self.width {
            // pp = act & wt  (NAND + INV)
            let cn = self.b.add_cell(format!("{p}_nd{w}"), nand, Tier::Logic)?;
            self.b.connect_input(act_r[w], cn, 0)?;
            self.b.connect_input(wt[w % wt.len()], cn, 1)?;
            let nn = self.b.add_net(format!("{p}_ndn{w}"))?;
            self.b.connect_output(nn, cn, 0)?;
            let ci = self.b.add_cell(format!("{p}_iv{w}"), inv, Tier::Logic)?;
            self.b.connect_input(nn, ci, 0)?;
            let pp = self.b.add_net(format!("{p}_pp{w}"))?;
            self.b.connect_output(pp, ci, 0)?;

            // (sum, carry) = FA(pp, prev_sum_or_pp, carry_in)
            let cf = self.b.add_cell(format!("{p}_fa{w}"), fa, Tier::Logic)?;
            self.b.connect_input(pp, cf, 0)?;
            let second = *sums.last().unwrap_or(&pp);
            self.b.connect_input(second, cf, 1)?;
            let cin = carry.unwrap_or(act_r[0]);
            self.b.connect_input(cin, cf, 2)?;
            let s = self.b.add_net(format!("{p}_s{w}"))?;
            self.b.connect_output(s, cf, 0)?;
            let co = self.b.add_net(format!("{p}_c{w}"))?;
            self.b.connect_output(co, cf, 1)?;
            sums.push(s);
            carry = Some(co);
        }
        // Intermediate sums feed the next FA; only register the final word.
        let out = self.pipe(&format!("{p}_or"), &sums)?;
        let carry_q = self.pipe(
            &format!("{p}_cr"),
            &[carry.expect("width >= 1 so a carry exists")],
        )?;
        self.status.extend(carry_q);
        Ok(out)
    }

    /// An adder switch of the reduction tree: per-bit FA rippling a carry;
    /// returns the sum word and pushes the registered carry-out to `status`.
    fn adder(
        &mut self,
        prefix: &str,
        a: &[NetId],
        bb: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        let fa = self.logic_lib.expect("FA");
        let mut sums = Vec::with_capacity(self.width);
        let mut carry: Option<NetId> = None;
        for w in 0..self.width {
            let cf = self
                .b
                .add_cell(format!("{prefix}_fa{w}"), fa, Tier::Logic)?;
            self.b.connect_input(a[w], cf, 0)?;
            self.b.connect_input(bb[w], cf, 1)?;
            let cin = carry.unwrap_or_else(|| self.next_ctrl());
            self.b.connect_input(cin, cf, 2)?;
            let s = self.b.add_net(format!("{prefix}_s{w}"))?;
            self.b.connect_output(s, cf, 0)?;
            let co = self.b.add_net(format!("{prefix}_c{w}"))?;
            self.b.connect_output(co, cf, 1)?;
            sums.push(s);
            carry = Some(co);
        }
        let cq = self.pipe(
            &format!("{prefix}_cr"),
            &[carry.expect("width >= 1 so a carry exists")],
        )?;
        self.status.extend(cq);
        Ok(sums)
    }
}

/// Generates a MAERI-style accelerator netlist.
///
/// The returned design targets `tech`: PEs, trees, and control logic on the
/// logic die; global/local/output buffers on the memory die.
///
/// # Errors
///
/// Propagates [`NetlistError`] (internal name collisions would be a bug;
/// validation failures cannot occur for well-formed configs).
pub fn generate_maeri(
    cfg: &MaeriConfig,
    tech: &TechConfig,
) -> Result<GeneratedDesign, NetlistError> {
    let (pes, bw) = cfg.normalized();
    let width = cfg.data_width;
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let mem_lib = CellLibrary::for_node(&tech.memory_node);
    let name = format!("maeri{}pe_{}bw", pes, bw);

    let mut m = MaeriBuilder {
        b: NetlistBuilder::new(&name),
        logic_lib: &logic_lib,
        mem_lib: &mem_lib,
        rng: StdRng::seed_from_u64(cfg.seed),
        width,
        ctrl: Vec::new(),
        ctrl_cursor: 0,
        status: Vec::new(),
    };

    // --- Control cloud: cfg PIs -> random logic -> switch select lines.
    let cfg_in = m.pi_bus("cfg", 8.max(bw / 2))?;
    let ctrl_gates = (pes * 4).max(64);
    let mut rng = std::mem::replace(&mut m.rng, StdRng::seed_from_u64(0));
    let ctrl_out = build_cloud(
        &mut m.b,
        &logic_lib,
        Tier::Logic,
        "ctrl",
        &cfg_in,
        &CloudSpec::new(ctrl_gates),
        &mut rng,
    )?;
    m.rng = rng;
    // Register control outputs so select lines launch from FFs.
    m.ctrl = sink_into_registers(&mut m.b, &logic_lib, Tier::Logic, "ctrlr", &ctrl_out)?;

    // --- Global buffer: bw SRAM banks fed by stream PIs.
    let stream = m.pi_bus("act", bw * width.min(8))?;
    let mut lanes: Vec<Vec<NetId>> = Vec::with_capacity(bw);
    for l in 0..bw {
        let ins: Vec<NetId> = stream
            .iter()
            .copied()
            .skip(l * width.min(8))
            .take(width.min(8))
            .collect();
        lanes.push(m.sram(&format!("gbuf{l}"), &ins)?);
    }

    // --- Lane merge: binary MUX tree reducing bw lanes to the tree root.
    let mut level: Vec<Vec<NetId>> = lanes;
    let mut li = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for (k, pair) in level.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(m.switch(&format!("lm{li}_{k}"), &pair[0], &pair[1])?);
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
        li += 1;
    }
    let root = level.pop().expect("at least one lane");

    // --- Distribution tree: root word fans out to pes leaf words.
    let depth = pes.trailing_zeros() as usize;
    let mut frontier = vec![root];
    for d in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (k, word) in frontier.iter().enumerate() {
            // Each node forwards left (plain) and right (switched); every
            // two levels the edges are pipelined.
            let left = if d % 2 == 1 {
                m.pipe(&format!("dt{d}_{k}_lp"), word)?
            } else {
                word.clone()
            };
            let right = m.switch(&format!("dt{d}_{k}_r"), word, word)?;
            next.push(left);
            next.push(right);
        }
        frontier = next;
    }
    debug_assert_eq!(frontier.len(), pes);

    // --- Local weight buffers: one SRAM per 8 PEs, loaded from weight PIs.
    let wt_in = m.pi_bus("wt", width.min(8))?;
    let groups = pes.div_ceil(8);
    let mut wt_words = Vec::with_capacity(groups);
    for g in 0..groups {
        wt_words.push(m.sram(&format!("lbuf{g}"), &wt_in)?);
    }

    // --- PEs.
    let mut pe_out = Vec::with_capacity(pes);
    for (i, act) in frontier.iter().enumerate() {
        let wt = wt_words[i / 8].clone();
        pe_out.push(m.pe(i, act, &wt)?);
    }

    // --- Reduction tree.
    let mut level = pe_out;
    let mut d = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for (k, pair) in level.chunks(2).enumerate() {
            let mut s = m.adder(&format!("rt{d}_{k}"), &pair[0], &pair[1])?;
            s = m.pipe(&format!("rt{d}_{k}_p"), &s)?;
            next.push(s);
        }
        level = next;
        d += 1;
    }
    let result = level.pop().expect("reduction tree leaves a root");

    // --- Output buffer and primary outputs.
    let obuf = m.sram("obuf", &result)?;
    sink_into_outputs(&mut m.b, &logic_lib, Tier::Logic, "res", &obuf)?;

    // --- Drain any control nets the trees never consumed (tiny configs
    // have fewer switch select pins than control outputs).
    if m.ctrl_cursor < m.ctrl.len() {
        let unused: Vec<NetId> = m.ctrl[m.ctrl_cursor..].to_vec();
        sink_into_outputs(&mut m.b, &logic_lib, Tier::Logic, "ctrl_unused", &unused)?;
    }

    // --- Status collector: carries -> cloud -> registers -> POs.
    let status = std::mem::take(&mut m.status);
    let mut rng = std::mem::replace(&mut m.rng, StdRng::seed_from_u64(0));
    let st_out = build_cloud(
        &mut m.b,
        &logic_lib,
        Tier::Logic,
        "stat",
        &status,
        &CloudSpec::new((pes * 2).max(32)),
        &mut rng,
    )?;
    m.rng = rng;
    let st_q = sink_into_registers(&mut m.b, &logic_lib, Tier::Logic, "statr", &st_out)?;
    sink_into_outputs(&mut m.b, &logic_lib, Tier::Logic, "stat", &st_q)?;

    let mut netlist = m.b.finish()?;
    super::buffering::limit_fanout(&mut netlist, tech, 10)?;
    Ok(GeneratedDesign {
        netlist,
        tech: tech.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitDag;
    use crate::stats::NetlistStats;

    #[test]
    fn maeri16_builds_and_validates() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let s = NetlistStats::compute(&d.netlist);
        assert!(s.cells > 500, "16PE should have hundreds of cells: {s}");
        assert!(s.macros > 4 + 2, "gbuf + lbuf + obuf macros");
        assert!(s.registers > 50);
        assert!(s.nets_3d > 0, "buffer links must cross tiers");
        assert!(s.logic_2d_nets > s.nets_3d, "most nets are on-tier");
    }

    #[test]
    fn maeri_is_acyclic() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let dag = CircuitDag::build(&d.netlist).unwrap();
        assert!(dag.depth() > 4, "trees give multi-level logic");
    }

    #[test]
    fn maeri_is_deterministic() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let a = generate_maeri(&MaeriConfig::new(16, 4).with_seed(9), &tech).unwrap();
        let b = generate_maeri(&MaeriConfig::new(16, 4).with_seed(9), &tech).unwrap();
        assert_eq!(a.netlist.cell_count(), b.netlist.cell_count());
        assert_eq!(a.netlist.net_count(), b.netlist.net_count());
        let c = generate_maeri(&MaeriConfig::new(16, 4).with_seed(10), &tech).unwrap();
        // Same structure, different random control cloud wiring: counts may
        // coincide but the gate mix should differ somewhere.
        let mix = |n: &crate::netlist::Netlist| {
            n.cell_ids()
                .map(|cid| n.template(cid).name)
                .collect::<Vec<_>>()
        };
        assert_ne!(mix(&a.netlist), mix(&c.netlist));
    }

    #[test]
    fn maeri_scales_with_pe_count() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let small = generate_maeri(&MaeriConfig::new(16, 4), &tech).unwrap();
        let big = generate_maeri(&MaeriConfig::new(64, 8), &tech).unwrap();
        assert!(big.netlist.cell_count() > 3 * small.netlist.cell_count());
    }

    #[test]
    fn config_normalization_rounds_to_powers_of_two() {
        let (p, b) = MaeriConfig::new(100, 3).normalized();
        assert_eq!(p, 128);
        assert_eq!(b, 4);
        let (p, _) = MaeriConfig::new(1, 1).normalized();
        assert_eq!(p, 2);
    }

    #[test]
    #[should_panic(expected = "data width")]
    fn oversized_width_panics() {
        let _ = MaeriConfig::new(16, 4).with_data_width(16);
    }
}

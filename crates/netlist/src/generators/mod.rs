//! Deterministic structural generators for the paper's benchmark designs.
//!
//! The paper evaluates on MAERI accelerators (128PE/32BW, 256PE/64BW,
//! 16PE/4BW) and a Cortex-A7 dual-core, synthesized with TSMC libraries.
//! Neither the RTL nor the libraries are available, so these generators
//! build gate-level netlists with the same *structure*:
//!
//! - [`maeri`] — multiplier PEs, a binary distribution tree, a binary
//!   reduction (adder) tree, SRAM buffers on the memory die, and a control
//!   cloud (after Kwon et al., MAERI, ASPLOS'18).
//! - [`a7`] — in-order 5-stage pipelines with forwarding, register files,
//!   L1 I/D cache macros and a shared L2 on the memory die.
//! - [`noc`] — a 2D mesh NoC with register-pipelined inter-router links
//!   and memory-die injection/ejection buffers (the benchmark suite's
//!   interconnect-dominated design family).
//! - [`cloud`] — the shared random-logic-cone builder (Rent's-rule-flavored
//!   locality) all generators use for combinational clusters.
//!
//! All generators are deterministic functions of their config (including
//! the seed), so every experiment in the workspace is reproducible.

pub mod a7;
pub mod buffering;
pub mod cloud;
pub mod maeri;
pub mod noc;

pub use a7::{generate_a7, A7Config};
pub use buffering::limit_fanout;
pub use cloud::{build_cloud, sink_into_registers, CloudSpec};
pub use maeri::{generate_maeri, MaeriConfig};
pub use noc::{generate_noc, NocConfig};

use crate::netlist::Netlist;
use crate::tech::TechConfig;

/// A generated benchmark design together with the technology it targets.
#[derive(Clone, Debug)]
pub struct GeneratedDesign {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// The two-die technology configuration the design was built for.
    pub tech: TechConfig,
}

//! Network-on-chip mesh generator.
//!
//! A 2D mesh of wormhole-style routers on the logic die, with the
//! injection/ejection buffering on the memory die — the mixed-node NoC
//! fabric the benchmark suite uses as its third design family (the
//! MAERI and A7 generators cover accelerator and CPU structure; this
//! covers interconnect-dominated logic where most nets are short router
//! hops but every node owns two 3D buffer links).
//!
//! Structure per router `(r, c)`:
//!
//! - an **injection buffer**: an SRAM macro on the memory tier fed by
//!   the global stream PIs, producing the local input flit;
//! - four **output links** (N/E/S/W where a neighbor exists): per-bit
//!   MUX2 trees selecting among the neighbors' incoming flits and the
//!   local flit, registered at the source (source-synchronous link
//!   pipelining), so every inter-router net is a register-to-register
//!   hop;
//! - an **ejection port**: a MUX2 tree over the incoming flits,
//!   registered, draining into an SRAM on the memory tier whose outputs
//!   feed primary outputs.
//!
//! Switch select lines come from a shared random control cloud (route
//! compute + arbitration stand-in), exactly like the MAERI control
//! cloud. The generator is a deterministic function of its config.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cell::CellLibrary;
use crate::ids::{CellId, NetId, Tier};
use crate::netlist::{NetlistBuilder, NetlistError};
use crate::tech::TechConfig;

use super::cloud::{build_cloud, sink_into_outputs, sink_into_registers, CloudSpec};
use super::GeneratedDesign;

/// Configuration of a mesh NoC.
#[derive(Clone, Debug, PartialEq)]
pub struct NocConfig {
    /// Mesh rows (clamped to >= 2).
    pub rows: usize,
    /// Mesh columns (clamped to >= 2).
    pub cols: usize,
    /// Flit width in bits (1..=8; SRAM macros expose 8 data pins).
    pub flit_width: usize,
    /// RNG seed for the control cloud.
    pub seed: u64,
}

impl NocConfig {
    /// A `rows` x `cols` mesh with 8-bit flits, seed 0.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            flit_width: 8,
            seed: 0,
        }
    }

    /// The suite's CI-scale mesh.
    pub fn mesh4x4() -> Self {
        Self::new(4, 4)
    }

    /// The suite's full-scale mesh.
    pub fn mesh8x8() -> Self {
        Self::new(8, 8)
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the flit width in bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn with_flit_width(mut self, bits: usize) -> Self {
        assert!((1..=8).contains(&bits), "flit width must be 1..=8 bits");
        self.flit_width = bits;
        self
    }

    fn normalized(&self) -> (usize, usize) {
        (self.rows.max(2), self.cols.max(2))
    }
}

/// The four mesh directions, in the fixed order links are built.
const DIRS: [(isize, isize, &str); 4] = [(-1, 0, "n"), (0, 1, "e"), (1, 0, "s"), (0, -1, "w")];

struct NocBuilder<'a> {
    b: NetlistBuilder,
    logic_lib: &'a CellLibrary,
    mem_lib: &'a CellLibrary,
    width: usize,
    ctrl: Vec<NetId>,
    ctrl_cursor: usize,
}

impl<'a> NocBuilder<'a> {
    fn next_ctrl(&mut self) -> NetId {
        let n = self.ctrl[self.ctrl_cursor % self.ctrl.len()];
        self.ctrl_cursor += 1;
        n
    }

    /// Adds a bus of `n` primary inputs, returning their nets.
    fn pi_bus(&mut self, prefix: &str, n: usize) -> Result<Vec<NetId>, NetlistError> {
        let pi = self.logic_lib.expect("PI");
        let mut nets = Vec::with_capacity(n);
        for i in 0..n {
            let c = self
                .b
                .add_cell(format!("{prefix}_pi{i}"), pi, Tier::Logic)?;
            let net = self.b.add_net(format!("{prefix}_in{i}"))?;
            self.b.connect_output(net, c, 0)?;
            nets.push(net);
        }
        Ok(nets)
    }

    /// Adds an SRAM macro on the memory tier wired to up to 8 input
    /// nets; returns `width` output nets.
    fn sram(&mut self, name: &str, inputs: &[NetId]) -> Result<Vec<NetId>, NetlistError> {
        let tpl = self.mem_lib.expect("SRAM");
        let c = self.b.add_cell(name.to_string(), tpl, Tier::Memory)?;
        for (k, &n) in inputs.iter().take(8).enumerate() {
            self.b.connect_input(n, c, k as u8)?;
        }
        let mut outs = Vec::with_capacity(self.width);
        for w in 0..self.width {
            let net = self.b.add_net(format!("{name}_q{w}"))?;
            self.b.connect_output(net, c, w as u8)?;
            outs.push(net);
        }
        Ok(outs)
    }

    /// A bank of `width` DFFs with outputs connected now and D inputs
    /// connected later (phase B), so registered links can be declared
    /// before the crossbars that drive them exist.
    fn link_regs(&mut self, prefix: &str) -> Result<(Vec<CellId>, Vec<NetId>), NetlistError> {
        let dff = self.logic_lib.expect("DFF");
        let mut cells = Vec::with_capacity(self.width);
        let mut q = Vec::with_capacity(self.width);
        for w in 0..self.width {
            let ff = self
                .b
                .add_cell(format!("{prefix}_ff{w}"), dff, Tier::Logic)?;
            let net = self.b.add_net(format!("{prefix}_q{w}"))?;
            self.b.connect_output(net, ff, 0)?;
            cells.push(ff);
            q.push(net);
        }
        Ok((cells, q))
    }

    /// A per-bit MUX2 reduction over `words` (a crossbar output port):
    /// selects fold left-to-right, selects drawn from the control cloud.
    /// Returns the selected word.
    fn mux_tree(&mut self, prefix: &str, words: &[&[NetId]]) -> Result<Vec<NetId>, NetlistError> {
        assert!(!words.is_empty(), "mux tree needs at least one word");
        let mux = self.logic_lib.expect("MUX2");
        let mut acc: Vec<NetId> = words[0].to_vec();
        for (i, word) in words.iter().enumerate().skip(1) {
            let mut next = Vec::with_capacity(self.width);
            for w in 0..self.width {
                let sel = self.next_ctrl();
                let c = self
                    .b
                    .add_cell(format!("{prefix}_m{i}_{w}"), mux, Tier::Logic)?;
                self.b.connect_input(acc[w], c, 0)?;
                self.b.connect_input(word[w % word.len()], c, 1)?;
                self.b.connect_input(sel, c, 2)?;
                let net = self.b.add_net(format!("{prefix}_m{i}_o{w}"))?;
                self.b.connect_output(net, c, 0)?;
                next.push(net);
            }
            acc = next;
        }
        Ok(acc)
    }
}

/// Generates a mesh NoC netlist.
///
/// Routers, crossbars, link registers, and the stream PIs live on the
/// logic die; the injection/ejection buffers on the memory die, so
/// every node owns 3D nets in both directions.
///
/// # Errors
///
/// Propagates [`NetlistError`] (internal name collisions would be a
/// bug; validation failures cannot occur for well-formed configs).
pub fn generate_noc(cfg: &NocConfig, tech: &TechConfig) -> Result<GeneratedDesign, NetlistError> {
    let (rows, cols) = cfg.normalized();
    let width = cfg.flit_width;
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let mem_lib = CellLibrary::for_node(&tech.memory_node);
    let name = format!("noc{rows}x{cols}_mesh");

    let mut m = NocBuilder {
        b: NetlistBuilder::new(&name),
        logic_lib: &logic_lib,
        mem_lib: &mem_lib,
        width,
        ctrl: Vec::new(),
        ctrl_cursor: 0,
    };

    // --- Control cloud: route-compute + arbitration stand-in. Select
    // lines launch from registers, like synthesized switch allocators.
    let cfg_in = m.pi_bus("cfg", 8)?;
    let ctrl_gates = (rows * cols * 24).max(64);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ctrl_out = build_cloud(
        &mut m.b,
        &logic_lib,
        Tier::Logic,
        "ctrl",
        &cfg_in,
        &CloudSpec::new(ctrl_gates),
        &mut rng,
    )?;
    m.ctrl = sink_into_registers(&mut m.b, &logic_lib, Tier::Logic, "ctrlr", &ctrl_out)?;

    // --- Injection buffers: one SRAM per node, fed by the stream PIs.
    let stream = m.pi_bus("inj", width.min(8))?;
    let nodes = rows * cols;
    let mut local_in: Vec<Vec<NetId>> = Vec::with_capacity(nodes);
    for n in 0..nodes {
        local_in.push(m.sram(&format!("inj{n}"), &stream)?);
    }

    // --- Phase A: declare every existing link's output register bank
    // (Q nets now, D inputs in phase B), so crossbars can reference
    // neighbor link words before those crossbars are built.
    let idx = |r: usize, c: usize| r * cols + c;
    let in_mesh =
        |r: isize, c: isize| r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols;
    // link_q[node][dir] = Q word of the link leaving `node` toward DIRS[dir].
    let mut link_cells: Vec<[Option<Vec<CellId>>; 4]> = Vec::with_capacity(nodes);
    let mut link_q: Vec<[Option<Vec<NetId>>; 4]> = Vec::with_capacity(nodes);
    for r in 0..rows {
        for c in 0..cols {
            let mut cells: [Option<Vec<CellId>>; 4] = [None, None, None, None];
            let mut qs: [Option<Vec<NetId>>; 4] = [None, None, None, None];
            for (d, (dr, dc, dn)) in DIRS.iter().enumerate() {
                if in_mesh(r as isize + dr, c as isize + dc) {
                    let (cell, q) = m.link_regs(&format!("r{r}_{c}_{dn}"))?;
                    cells[d] = Some(cell);
                    qs[d] = Some(q);
                }
            }
            link_cells.push(cells);
            link_q.push(qs);
        }
    }

    // --- Phase B: crossbars. Each output link forwards the flits
    // arriving from the *other* directions plus the local injection;
    // the ejection port folds every arriving flit.
    let dff_d_pin = 0u8;
    for r in 0..rows {
        for c in 0..cols {
            let n = idx(r, c);
            // Incoming words: neighbor's link register aimed at us.
            let mut incoming: Vec<(usize, Vec<NetId>)> = Vec::new(); // (src dir, word)
            for (d, (dr, dc, _)) in DIRS.iter().enumerate() {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if in_mesh(nr, nc) {
                    // The neighbor's link toward us is the opposite dir.
                    let q = link_q[idx(nr as usize, nc as usize)][(d + 2) % 4].clone();
                    if let Some(q) = q {
                        incoming.push((d, q));
                    }
                }
            }
            // Output links: fold incoming (minus the u-turn) + local.
            for (d, (dr, dc, dn)) in DIRS.iter().enumerate() {
                if !in_mesh(r as isize + dr, c as isize + dc) {
                    continue;
                }
                let words: Vec<&[NetId]> = incoming
                    .iter()
                    .filter(|(src, _)| *src != d)
                    .map(|(_, w)| w.as_slice())
                    .chain(std::iter::once(local_in[n].as_slice()))
                    .collect();
                let xbar = m.mux_tree(&format!("r{r}_{c}_{dn}x"), &words)?;
                let cells = link_cells[n][d].clone().unwrap_or_default();
                for (w, ff) in cells.iter().enumerate() {
                    m.b.connect_input(xbar[w], *ff, dff_d_pin)?;
                }
            }
            // Ejection: fold every incoming word (the local word already
            // feeds the output crossbars), register, drain to an SRAM.
            let ej_words: Vec<&[NetId]> = if incoming.is_empty() {
                vec![local_in[n].as_slice()]
            } else {
                incoming.iter().map(|(_, w)| w.as_slice()).collect()
            };
            let ej = m.mux_tree(&format!("r{r}_{c}_ej"), &ej_words)?;
            let ej_q = sink_into_registers(
                &mut m.b,
                &logic_lib,
                Tier::Logic,
                &format!("r{r}_{c}_ejr"),
                &ej,
            )?;
            let out = m.sram(&format!("ej{n}"), &ej_q)?;
            sink_into_outputs(&mut m.b, &logic_lib, Tier::Logic, &format!("eo{n}"), &out)?;
        }
    }

    // --- Drain unconsumed control selects (small meshes need fewer
    // selects than the cloud produced).
    if m.ctrl_cursor < m.ctrl.len() {
        let unused: Vec<NetId> = m.ctrl[m.ctrl_cursor..].to_vec();
        sink_into_outputs(&mut m.b, &logic_lib, Tier::Logic, "ctrl_unused", &unused)?;
    }

    let mut netlist = m.b.finish()?;
    super::buffering::limit_fanout(&mut netlist, tech, 10)?;
    Ok(GeneratedDesign {
        netlist,
        tech: tech.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitDag;
    use crate::stats::NetlistStats;

    #[test]
    fn noc4x4_builds_and_validates() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_noc(&NocConfig::mesh4x4(), &tech).unwrap();
        let s = NetlistStats::compute(&d.netlist);
        assert!(s.cells > 1000, "4x4 mesh has thousands of cells: {s}");
        // One injection + one ejection macro per node.
        assert!(s.macros >= 2 * 16, "2 SRAMs per node: {s}");
        assert!(s.registers > 100, "registered links: {s}");
        assert!(s.nets_3d > 0, "buffers must cross tiers");
        assert!(s.logic_2d_nets > 0);
    }

    #[test]
    fn noc_is_acyclic_despite_mesh_loops() {
        // The mesh's physical loops must all be cut by link registers.
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_noc(&NocConfig::mesh4x4(), &tech).unwrap();
        let dag = CircuitDag::build(&d.netlist).unwrap();
        assert!(dag.depth() > 4, "control cloud gives multi-level logic");
    }

    #[test]
    fn noc_scales_with_mesh_size() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let small = generate_noc(&NocConfig::new(2, 2), &tech).unwrap();
        let big = generate_noc(&NocConfig::new(4, 4), &tech).unwrap();
        assert!(big.netlist.cell_count() > 2 * small.netlist.cell_count());
    }

    #[test]
    fn noc_is_deterministic_and_seed_sensitive() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let a = generate_noc(&NocConfig::new(3, 3).with_seed(5), &tech).unwrap();
        let b = generate_noc(&NocConfig::new(3, 3).with_seed(5), &tech).unwrap();
        assert_eq!(a.netlist.content_hash(), b.netlist.content_hash());
        let c = generate_noc(&NocConfig::new(3, 3).with_seed(6), &tech).unwrap();
        assert_ne!(a.netlist.content_hash(), c.netlist.content_hash());
    }

    #[test]
    #[should_panic(expected = "flit width")]
    fn oversized_flit_width_panics() {
        let _ = NocConfig::new(4, 4).with_flit_width(9);
    }
}

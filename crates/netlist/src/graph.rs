//! Cell-level DAG and hypergraph views of a netlist.
//!
//! Signal flow through a synchronous circuit forms a DAG once paths are cut
//! at sequential elements: registers, macros, and primary inputs *launch*
//! signals; registers, macros, and primary outputs *capture* them. This
//! module levelizes that DAG (used by STA and the generators' sanity
//! checks) and provides the hypergraph view of Section III-B: each net is a
//! hyperedge with a single source node — the driver cell — which is how
//! GNN-MLS turns net-level MLS decisions into node-level ones.

use std::fmt;

use crate::ids::{CellId, NetId};
use crate::netlist::Netlist;

/// Errors raised while building graph views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The combinational portion of the design contains a cycle through the
    /// listed cell (unsynthesizable without a register).
    CombinationalLoop(CellId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CombinationalLoop(c) => {
                write!(f, "combinational loop through cell {c}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Levelized cell-level DAG of a netlist.
#[derive(Clone, Debug)]
pub struct CircuitDag {
    /// Cells in a valid topological order (launch points first).
    order: Vec<CellId>,
    /// Logic level per cell: 0 for launch points, `1 + max(fanin)` for
    /// combinational cells and capture points.
    level: Vec<u32>,
    /// Fanin cells per cell (driver cells of nets feeding its inputs).
    fanin: Vec<Vec<CellId>>,
    /// Fanout cells per cell.
    fanout: Vec<Vec<CellId>>,
}

impl CircuitDag {
    /// Builds and levelizes the DAG.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CombinationalLoop`] if combinational cells form
    /// a cycle.
    pub fn build(netlist: &Netlist) -> Result<Self, GraphError> {
        let n = netlist.cell_count();
        let mut fanin: Vec<Vec<CellId>> = vec![Vec::new(); n];
        let mut fanout: Vec<Vec<CellId>> = vec![Vec::new(); n];
        for net in netlist.net_ids() {
            let d = netlist.driver_cell(net);
            for &s in netlist.sinks(net) {
                let sc = netlist.pin(s).cell;
                if sc != d {
                    fanin[sc.index()].push(d);
                    fanout[d.index()].push(sc);
                }
            }
        }

        // Kahn's algorithm. Launch-capable cells are ready immediately; a
        // combinational cell becomes ready once all its fanin cells are
        // processed. Capture-only cells (POs) are ordinary nodes.
        let mut indeg = vec![0usize; n];
        let mut ready: Vec<CellId> = Vec::new();
        for c in netlist.cell_ids() {
            if netlist.class(c).is_startpoint() {
                ready.push(c);
            } else {
                indeg[c.index()] = fanin[c.index()].len();
                if indeg[c.index()] == 0 {
                    ready.push(c);
                }
            }
        }

        let mut order = Vec::with_capacity(n);
        let mut level = vec![0u32; n];
        let mut head = 0;
        let mut queue = ready;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            // Launch points do not propagate their capture level.
            let lu = if netlist.class(u).is_startpoint() {
                0
            } else {
                level[u.index()]
            };
            for &v in &fanout[u.index()] {
                if netlist.class(v).is_startpoint() {
                    // Ordering-wise the edge is cut, but the capture level
                    // of a register/macro is still the max over fanin.
                    level[v.index()] = level[v.index()].max(lu + 1);
                    continue;
                }
                level[v.index()] = level[v.index()].max(lu + 1);
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }

        if order.len() != n {
            let stuck = netlist
                .cell_ids()
                .find(|c| indeg[c.index()] > 0 && !netlist.class(*c).is_startpoint())
                .expect("some cell must be stuck when order is incomplete");
            return Err(GraphError::CombinationalLoop(stuck));
        }

        Ok(Self {
            order,
            level,
            fanin,
            fanout,
        })
    }

    /// Cells in topological order (launch points first).
    #[inline]
    pub fn topo_order(&self) -> &[CellId] {
        &self.order
    }

    /// Logic level of a cell (0 = launch point).
    #[inline]
    pub fn level(&self, cell: CellId) -> u32 {
        self.level[cell.index()]
    }

    /// Maximum logic level in the design (combinational depth).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Fanin cells of a cell.
    #[inline]
    pub fn fanin(&self, cell: CellId) -> &[CellId] {
        &self.fanin[cell.index()]
    }

    /// Fanout cells of a cell.
    #[inline]
    pub fn fanout(&self, cell: CellId) -> &[CellId] {
        &self.fanout[cell.index()]
    }
}

/// One hyperedge of the hypergraph view: a net with its single source node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperEdge {
    /// The underlying net.
    pub net: NetId,
    /// The source node — the cell whose output pin drives the net. Per the
    /// paper, net (hyperedge) features are folded into this node, turning
    /// the net-level MLS decision into a node decision.
    pub source: CellId,
    /// Sink cells (may repeat if a cell has several input pins on the net).
    pub sinks: Vec<CellId>,
}

/// Hypergraph view of a netlist (Section III-B / Figure 5).
#[derive(Clone, Debug)]
pub struct Hypergraph {
    edges: Vec<HyperEdge>,
    /// For each cell, the nets it drives (usually one per output pin).
    driven_by_cell: Vec<Vec<NetId>>,
}

impl Hypergraph {
    /// Builds the hypergraph view.
    pub fn build(netlist: &Netlist) -> Self {
        let mut driven_by_cell = vec![Vec::new(); netlist.cell_count()];
        let edges = netlist
            .net_ids()
            .map(|net| {
                let source = netlist.driver_cell(net);
                driven_by_cell[source.index()].push(net);
                HyperEdge {
                    net,
                    source,
                    sinks: netlist
                        .sinks(net)
                        .iter()
                        .map(|&p| netlist.pin(p).cell)
                        .collect(),
                }
            })
            .collect();
        Self {
            edges,
            driven_by_cell,
        }
    }

    /// All hyperedges, indexed by net id.
    #[inline]
    pub fn edges(&self) -> &[HyperEdge] {
        &self.edges
    }

    /// The hyperedge of a net.
    #[inline]
    pub fn edge(&self, net: NetId) -> &HyperEdge {
        &self.edges[net.index()]
    }

    /// Nets driven by a cell (the node-centric mapping: deciding MLS for
    /// these nets is deciding for this node).
    #[inline]
    pub fn nets_of_source(&self, cell: CellId) -> &[NetId] {
        &self.driven_by_cell[cell.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::ids::Tier;
    use crate::netlist::NetlistBuilder;
    use crate::tech::TechNode;

    /// PI -> inv1 -> dff -> inv2 -> PO, plus a fanout from inv1 to PO2.
    fn pipeline() -> Netlist {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("pipe");
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let i1 = b.add_cell("i1", lib.expect("INV"), Tier::Logic).unwrap();
        let ff = b.add_cell("ff", lib.expect("DFF"), Tier::Logic).unwrap();
        let i2 = b.add_cell("i2", lib.expect("INV"), Tier::Logic).unwrap();
        let po = b.add_cell("po", lib.expect("PO"), Tier::Logic).unwrap();
        let po2 = b.add_cell("po2", lib.expect("PO"), Tier::Logic).unwrap();
        let mk = |b: &mut NetlistBuilder, name: &str| b.add_net(name).unwrap();
        let n0 = mk(&mut b, "n0");
        b.connect_output(n0, pi, 0).unwrap();
        b.connect_input(n0, i1, 0).unwrap();
        let n1 = mk(&mut b, "n1");
        b.connect_output(n1, i1, 0).unwrap();
        b.connect_input(n1, ff, 0).unwrap();
        b.connect_input(n1, po2, 0).unwrap();
        let n2 = mk(&mut b, "n2");
        b.connect_output(n2, ff, 0).unwrap();
        b.connect_input(n2, i2, 0).unwrap();
        let n3 = mk(&mut b, "n3");
        b.connect_output(n3, i2, 0).unwrap();
        b.connect_input(n3, po, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn levelization_cuts_at_registers() {
        let n = pipeline();
        let dag = CircuitDag::build(&n).unwrap();
        let id = |s: &str| n.cell_by_name(s).unwrap();
        assert_eq!(dag.level(id("pi")), 0);
        assert_eq!(dag.level(id("i1")), 1);
        // The register *captures* at level 2 but *launches* at level 0...
        assert_eq!(dag.level(id("ff")), 2);
        // ...so downstream logic restarts shallow.
        assert_eq!(dag.level(id("i2")), 1);
        assert_eq!(dag.level(id("po")), 2);
        assert_eq!(dag.depth(), 2);
    }

    #[test]
    fn topo_order_respects_combinational_edges() {
        let n = pipeline();
        let dag = CircuitDag::build(&n).unwrap();
        let pos: std::collections::HashMap<_, _> = dag
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let id = |s: &str| n.cell_by_name(s).unwrap();
        assert!(pos[&id("pi")] < pos[&id("i1")]);
        assert!(pos[&id("i1")] < pos[&id("po2")]);
        assert!(pos[&id("ff")] < pos[&id("i2")]);
        assert!(pos[&id("i2")] < pos[&id("po")]);
        assert_eq!(dag.topo_order().len(), n.cell_count());
    }

    #[test]
    fn fanin_fanout_are_mirrors() {
        let n = pipeline();
        let dag = CircuitDag::build(&n).unwrap();
        for c in n.cell_ids() {
            for &f in dag.fanout(c) {
                assert!(dag.fanin(f).contains(&c));
            }
            for &f in dag.fanin(c) {
                assert!(dag.fanout(f).contains(&c));
            }
        }
    }

    #[test]
    fn combinational_loop_is_detected() {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("loop");
        let g1 = b.add_cell("g1", lib.expect("NAND2"), Tier::Logic).unwrap();
        let g2 = b.add_cell("g2", lib.expect("NAND2"), Tier::Logic).unwrap();
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let n0 = b.add_net("n0").unwrap();
        b.connect_output(n0, pi, 0).unwrap();
        b.connect_input(n0, g1, 1).unwrap();
        let a = b.add_net("a").unwrap();
        b.connect_output(a, g1, 0).unwrap();
        b.connect_input(a, g2, 0).unwrap();
        let z = b.add_net("z").unwrap();
        b.connect_output(z, g2, 0).unwrap();
        b.connect_input(z, g1, 0).unwrap();
        let netlist = b.finish().unwrap();
        assert!(matches!(
            CircuitDag::build(&netlist),
            Err(GraphError::CombinationalLoop(_))
        ));
    }

    #[test]
    fn register_feedback_loop_is_fine() {
        // dff -> inv -> dff (same register): legal synchronous loop.
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("fb");
        let ff = b.add_cell("ff", lib.expect("DFF"), Tier::Logic).unwrap();
        let inv = b.add_cell("inv", lib.expect("INV"), Tier::Logic).unwrap();
        let q = b.add_net("q").unwrap();
        b.connect_output(q, ff, 0).unwrap();
        b.connect_input(q, inv, 0).unwrap();
        let d = b.add_net("d").unwrap();
        b.connect_output(d, inv, 0).unwrap();
        b.connect_input(d, ff, 0).unwrap();
        let netlist = b.finish().unwrap();
        let dag = CircuitDag::build(&netlist).unwrap();
        assert_eq!(dag.depth(), 2); // capture level of the DFF
    }

    #[test]
    fn hypergraph_sources_match_drivers() {
        let n = pipeline();
        let hg = Hypergraph::build(&n);
        assert_eq!(hg.edges().len(), n.net_count());
        for e in hg.edges() {
            assert_eq!(e.source, n.driver_cell(e.net));
            assert_eq!(e.sinks.len(), n.sinks(e.net).len());
            assert!(hg.nets_of_source(e.source).contains(&e.net));
        }
        // Multi-pin net n1 has two sink cells.
        let n1 = n.net_by_name("n1").unwrap();
        assert_eq!(hg.edge(n1).sinks.len(), 2);
    }
}

//! Strongly typed indices into a [`Netlist`](crate::Netlist) and the 3D tier
//! enumeration.
//!
//! Newtypes keep cell/net/pin indices from being mixed up at compile time
//! (C-NEWTYPE). All ids are dense `u32` indices assigned by
//! [`NetlistBuilder`](crate::NetlistBuilder) in insertion order.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index, usable to address `Vec`-backed tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a cell instance (gate, register, macro, port).
    CellId,
    "c"
);
define_id!(
    /// Identifier of a net (a driver pin plus its sink pins).
    NetId,
    "n"
);
define_id!(
    /// Identifier of a pin (one terminal on one cell).
    PinId,
    "p"
);

/// One of the two dies of the face-to-face bonded stack.
///
/// The paper's Memory-on-Logic arrangement puts the logic die at the bottom
/// (`Tier::Logic`) and the memory die on top (`Tier::Memory`); F2F pads sit
/// between the two top metals of each die.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Bottom die (logic; 16 nm in the heterogeneous setup).
    Logic,
    /// Top die (memory; 28 nm in the heterogeneous setup).
    Memory,
}

impl Tier {
    /// The other tier of the two-die stack.
    #[inline]
    pub const fn other(self) -> Tier {
        match self {
            Tier::Logic => Tier::Memory,
            Tier::Memory => Tier::Logic,
        }
    }

    /// Dense index: logic = 0, memory = 1.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Tier::Logic => 0,
            Tier::Memory => 1,
        }
    }

    /// Both tiers, bottom first.
    pub const BOTH: [Tier; 2] = [Tier::Logic, Tier::Memory];
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Logic => write!(f, "logic"),
            Tier::Memory => write!(f, "memory"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let c = CellId::new(42);
        assert_eq!(c.index(), 42);
        assert_eq!(c.raw(), 42);
        assert_eq!(usize::from(c), 42);
        assert_eq!(format!("{c}"), "c42");
        assert_eq!(format!("{c:?}"), "c42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(PinId::new(7), PinId::new(7));
    }

    #[test]
    fn tier_other_is_involution() {
        for t in Tier::BOTH {
            assert_eq!(t.other().other(), t);
            assert_ne!(t.other(), t);
        }
    }

    #[test]
    fn tier_indices_are_dense() {
        assert_eq!(Tier::Logic.index(), 0);
        assert_eq!(Tier::Memory.index(), 1);
        assert_eq!(format!("{}", Tier::Logic), "logic");
        assert_eq!(format!("{}", Tier::Memory), "memory");
    }
}

//! Netlist substrate for the GNN-MLS reproduction.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about a gate-level design destined for a two-tier, face-to-face (F2F)
//! bonded 3D IC:
//!
//! - [`ids`] — strongly typed indices ([`CellId`], [`NetId`], [`PinId`]).
//! - [`tech`] — synthetic technology models: metal stacks with per-layer
//!   RC, F2F via parameters, and node-level (16 nm / 28 nm) scaling.
//! - [`cell`] — a small standard-cell library parameterized by node.
//! - [`netlist`] — the [`Netlist`] container, its builder, and validation.
//! - [`graph`] — cell-level DAG and hypergraph views (topological order,
//!   levelization, fan-in/fan-out traversal).
//! - [`generators`] — deterministic structural generators for the paper's
//!   benchmarks: MAERI-style DNN accelerators and Cortex-A7-style CPUs.
//! - [`stats`] — summary statistics used by reports and tests.
//! - [`verilog`] — structural Verilog export/import (round-trippable).
//!
//! # Example
//!
//! ```
//! use gnnmls_netlist::generators::{MaeriConfig, generate_maeri};
//! use gnnmls_netlist::tech::TechConfig;
//!
//! # fn main() -> Result<(), gnnmls_netlist::NetlistError> {
//! let tech = TechConfig::heterogeneous_16_28(6, 6);
//! let design = generate_maeri(&MaeriConfig::new(16, 4).with_seed(7), &tech)?;
//! assert!(design.netlist.cell_count() > 100);
//! # Ok(())
//! # }
//! ```

// Library diagnostics go through `gnnmls_obs::warn`, never raw prints.
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(test, allow(clippy::print_stdout, clippy::print_stderr))]

pub mod cell;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod netlist;
pub mod stats;
pub mod tech;
pub mod verilog;

pub use cell::{CellClass, CellLibrary, CellTemplate};
pub use ids::{CellId, NetId, PinId, Tier};
pub use netlist::{Cell, Net, Netlist, NetlistBuilder, NetlistError, Pin, PinDir};
pub use stats::NetlistStats;
pub use tech::{F2fParams, MetalLayer, MetalStack, TechConfig, TechNode};

//! The gate-level netlist container, its builder, and validation.
//!
//! A [`Netlist`] is a dense, index-based structure: cells, pins, and nets
//! live in `Vec`s addressed by the newtype ids from [`crate::ids`]. Cell
//! templates are interned so each instance only stores a small index.
//!
//! Invariants maintained by [`NetlistBuilder::finish`] and all mutators:
//!
//! - every net has exactly one driver (an output pin), stored first in its
//!   pin list, and at least one sink;
//! - every pin is connected to at most one net;
//! - cell and net names are unique.
//!
//! Unconnected *input* pins are allowed (spare macro pins) and simply do not
//! participate in timing.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cell::{CellClass, CellTemplate};
use crate::ids::{CellId, NetId, PinId, Tier};

/// Direction of a pin as seen from its cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinDir {
    /// Signal enters the cell.
    Input,
    /// Signal leaves the cell.
    Output,
}

/// One terminal of one cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Direction relative to the cell.
    pub dir: PinDir,
    /// Connected net, if any.
    pub net: Option<NetId>,
    /// Pin capacitance in fF (0 for output pins; load is on the sinks).
    pub cap_ff: f64,
    /// Ordinal of this pin among the cell's pins of the same direction.
    pub ordinal: u8,
}

/// A cell instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Unique instance name.
    pub name: String,
    /// Index into the netlist's interned template table.
    pub template: u16,
    /// Die this cell lives on (fixed by the Memory-on-Logic flow).
    pub tier: Tier,
    /// All pins, inputs first then outputs, in ordinal order.
    pub pins: Vec<PinId>,
}

/// A net: one driver pin plus its sinks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Unique net name.
    pub name: String,
    /// `pins[0]` is the driver; the rest are sinks.
    pub pins: Vec<PinId>,
}

/// Errors raised while building or mutating a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell with this name already exists.
    DuplicateCellName(String),
    /// A net with this name already exists.
    DuplicateNetName(String),
    /// The net already has a driver.
    MultipleDrivers(NetId),
    /// The net has no driver pin.
    NoDriver(NetId),
    /// The net has a driver but no sinks.
    NoSinks(NetId),
    /// The pin is already connected to some net.
    PinAlreadyConnected(PinId),
    /// An operation expected a pin of the other direction.
    WrongPinDir(PinId),
    /// A cell pin ordinal was out of range for its template.
    PinOutOfRange(CellId, u8),
    /// A referenced pin does not belong to the given net.
    PinNotOnNet(PinId, NetId),
    /// The design has no cells or no nets.
    EmptyDesign,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateCellName(n) => write!(f, "duplicate cell name `{n}`"),
            NetlistError::DuplicateNetName(n) => write!(f, "duplicate net name `{n}`"),
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::NoDriver(n) => write!(f, "net {n} has no driver"),
            NetlistError::NoSinks(n) => write!(f, "net {n} has no sinks"),
            NetlistError::PinAlreadyConnected(p) => write!(f, "pin {p} is already connected"),
            NetlistError::WrongPinDir(p) => write!(f, "pin {p} has the wrong direction"),
            NetlistError::PinOutOfRange(c, k) => {
                write!(f, "cell {c} has no pin with ordinal {k}")
            }
            NetlistError::PinNotOnNet(p, n) => write!(f, "pin {p} is not on net {n}"),
            NetlistError::EmptyDesign => write!(f, "design has no cells or no nets"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A validated gate-level design.
#[derive(Clone, Debug, Serialize)]
pub struct Netlist {
    name: String,
    templates: Vec<CellTemplate>,
    cells: Vec<Cell>,
    pins: Vec<Pin>,
    nets: Vec<Net>,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
}

impl Netlist {
    /// Design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cell instances.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[inline]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    #[inline]
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// A cell by id.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// A net by id.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// A pin by id.
    #[inline]
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// The interned template of a cell.
    #[inline]
    pub fn template(&self, cell: CellId) -> &CellTemplate {
        &self.templates[self.cell(cell).template as usize]
    }

    /// The functional class of a cell.
    #[inline]
    pub fn class(&self, cell: CellId) -> CellClass {
        self.template(cell).class
    }

    /// Looks up a cell by instance name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Iterates over cell ids in insertion order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len() as u32).map(CellId::new)
    }

    /// Iterates over net ids in insertion order.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId::new)
    }

    /// Iterates over pin ids in insertion order.
    pub fn pin_ids(&self) -> impl Iterator<Item = PinId> + '_ {
        (0..self.pins.len() as u32).map(PinId::new)
    }

    /// The driver pin of a net.
    #[inline]
    pub fn driver(&self, net: NetId) -> PinId {
        self.net(net).pins[0]
    }

    /// The sink pins of a net.
    #[inline]
    pub fn sinks(&self, net: NetId) -> &[PinId] {
        &self.net(net).pins[1..]
    }

    /// The cell driving a net.
    #[inline]
    pub fn driver_cell(&self, net: NetId) -> CellId {
        self.pin(self.driver(net)).cell
    }

    /// Input pins of a cell, in ordinal order.
    pub fn input_pins(&self, cell: CellId) -> impl Iterator<Item = PinId> + '_ {
        self.cell(cell)
            .pins
            .iter()
            .copied()
            .filter(move |&p| self.pin(p).dir == PinDir::Input)
    }

    /// Output pins of a cell, in ordinal order.
    pub fn output_pins(&self, cell: CellId) -> impl Iterator<Item = PinId> + '_ {
        self.cell(cell)
            .pins
            .iter()
            .copied()
            .filter(move |&p| self.pin(p).dir == PinDir::Output)
    }

    /// Total capacitive load on a net: sink pin caps only (wire cap is added
    /// by extraction downstream).
    pub fn pin_load_ff(&self, net: NetId) -> f64 {
        self.sinks(net).iter().map(|&p| self.pin(p).cap_ff).sum()
    }

    /// Whether all pins of the net sit on a single tier (a "2D net" in the
    /// paper's terms); `None` if pins span both tiers (a "3D net").
    pub fn net_tier(&self, net: NetId) -> Option<Tier> {
        let mut pins = self.net(net).pins.iter();
        let first = self.cell(self.pin(*pins.next()?).cell).tier;
        for &p in pins {
            if self.cell(self.pin(p).cell).tier != first {
                return None;
            }
        }
        Some(first)
    }

    /// A stable FNV-1a digest over the complete structure — names,
    /// templates, tiers, and the full pin/net connectivity in id order.
    /// Two netlists built by the same generator from the same config
    /// hash identically on every machine and thread count; any
    /// structural difference (an extra gate, a swapped fanin, a renamed
    /// net) changes the digest. The benchmark suite's determinism
    /// property tests are written against this.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h ^= 0xff; // record separator so field boundaries matter
            h = h.wrapping_mul(PRIME);
        };
        eat(self.name.as_bytes());
        for cell in &self.cells {
            eat(cell.name.as_bytes());
            eat(self.templates[cell.template as usize].name.as_bytes());
            eat(&[cell.tier as u8]);
        }
        for net in &self.nets {
            eat(net.name.as_bytes());
            for &p in &net.pins {
                let pin = &self.pins[p.index()];
                eat(&pin.cell.index().to_le_bytes());
                eat(&[pin.ordinal, pin.dir as u8]);
            }
        }
        h
    }

    /// Sum of cell areas on a tier, µm².
    pub fn tier_area_um2(&self, tier: Tier) -> f64 {
        self.cell_ids()
            .filter(|&c| self.cell(c).tier == tier)
            .map(|c| self.template(c).area_um2)
            .sum()
    }

    // ---- mutation (used by DFT insertion and level-shifter insertion) ----

    /// Adds a new cell instance post-validation; returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateCellName`] if the name is taken.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        template: &CellTemplate,
        tier: Tier,
    ) -> Result<CellId, NetlistError> {
        let name = name.into();
        if self.cell_names.contains_key(&name) {
            return Err(NetlistError::DuplicateCellName(name));
        }
        let tpl_idx = intern_template(&mut self.templates, template);
        let id = CellId::new(self.cells.len() as u32);
        let pins = make_pins(&mut self.pins, id, template);
        self.cells.push(Cell {
            name: name.clone(),
            template: tpl_idx,
            tier,
            pins,
        });
        self.cell_names.insert(name, id);
        Ok(id)
    }

    /// Splices `through` (a 1-input/1-output cell such as a MUX, buffer,
    /// level shifter, or scan FF) into `net`, moving the given sinks onto a
    /// new net driven by `through`.
    ///
    /// Before: `driver -> {sinks_to_move ∪ others}`.
    /// After: `driver -> {others, through.in}` and
    /// `through.out -> {sinks_to_move}` on a new net named `new_net_name`.
    ///
    /// Returns the id of the new net.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::DuplicateNetName`] if `new_net_name` is taken.
    /// - [`NetlistError::PinNotOnNet`] if a sink is not on `net`.
    /// - [`NetlistError::PinAlreadyConnected`] if `through` is already wired.
    /// - [`NetlistError::NoSinks`] if `sinks_to_move` is empty or would
    ///   leave `net` sink-less... `net` always keeps `through`'s input as a
    ///   sink, so only the empty case errors.
    pub fn split_net(
        &mut self,
        net: NetId,
        sinks_to_move: &[PinId],
        through: CellId,
        new_net_name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        let new_net_name = new_net_name.into();
        if self.net_names.contains_key(&new_net_name) {
            return Err(NetlistError::DuplicateNetName(new_net_name));
        }
        if sinks_to_move.is_empty() {
            return Err(NetlistError::NoSinks(net));
        }
        for &p in sinks_to_move {
            if self.pin(p).net != Some(net) || self.pin(p).dir != PinDir::Input {
                return Err(NetlistError::PinNotOnNet(p, net));
            }
        }
        let t_in = self
            .input_pins(through)
            .next()
            .ok_or(NetlistError::PinOutOfRange(through, 0))?;
        let t_out = self
            .output_pins(through)
            .next()
            .ok_or(NetlistError::PinOutOfRange(through, 0))?;
        if self.pin(t_in).net.is_some() || self.pin(t_out).net.is_some() {
            return Err(NetlistError::PinAlreadyConnected(t_in));
        }

        // Detach moved sinks from the old net.
        self.nets[net.index()]
            .pins
            .retain(|p| !sinks_to_move.contains(p));
        // Old net now drives `through`'s input.
        self.nets[net.index()].pins.push(t_in);
        self.pins[t_in.index()].net = Some(net);

        // New net: driver = through's output, sinks = moved pins.
        let new_id = NetId::new(self.nets.len() as u32);
        let mut pins = Vec::with_capacity(1 + sinks_to_move.len());
        pins.push(t_out);
        self.pins[t_out.index()].net = Some(new_id);
        for &p in sinks_to_move {
            self.pins[p.index()].net = Some(new_id);
            pins.push(p);
        }
        self.nets.push(Net {
            name: new_net_name.clone(),
            pins,
        });
        self.net_names.insert(new_net_name, new_id);
        Ok(new_id)
    }

    /// Creates a new net driven by the first unconnected output pin of
    /// `driver`. The net starts sink-less; callers must attach at least
    /// one sink (via [`Netlist::connect_sink`]) before analysis.
    ///
    /// # Errors
    ///
    /// Errors if the name is taken or `driver` has no free output pin.
    pub fn new_driven_net(
        &mut self,
        name: impl Into<String>,
        driver: CellId,
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateNetName(name));
        }
        let out = self
            .output_pins(driver)
            .find(|&p| self.pin(p).net.is_none())
            .ok_or(NetlistError::PinOutOfRange(driver, 0))?;
        let id = NetId::new(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.clone(),
            pins: vec![out],
        });
        self.pins[out.index()].net = Some(id);
        self.net_names.insert(name, id);
        Ok(id)
    }

    /// Creates a new two-pin net from `driver`'s first free output to
    /// `sink`'s first free input.
    ///
    /// # Errors
    ///
    /// Errors if the name is taken or either cell lacks a free pin.
    pub fn connect_new_net(
        &mut self,
        name: impl Into<String>,
        driver: CellId,
        sink: CellId,
    ) -> Result<NetId, NetlistError> {
        let net = self.new_driven_net(name, driver)?;
        let inp = self
            .input_pins(sink)
            .position(|p| self.pin(p).net.is_none())
            .ok_or(NetlistError::PinOutOfRange(sink, 0))?;
        // `position` counts among *input pins*; connect_sink indexes input
        // ordinals the same way, but skipping connected ones differs —
        // resolve directly instead.
        let pin = self
            .input_pins(sink)
            .nth(inp)
            .expect("position came from the same iterator");
        self.pins[pin.index()].net = Some(net);
        self.nets[net.index()].pins.push(pin);
        Ok(net)
    }

    /// Connects an extra, currently unconnected input pin of `cell` as a
    /// sink of `net` (used to hook up scan-enable / scan-in style pins).
    ///
    /// # Errors
    ///
    /// Returns an error if the pin ordinal is out of range, the pin is not
    /// an input, or it is already connected.
    pub fn connect_sink(
        &mut self,
        net: NetId,
        cell: CellId,
        input_ordinal: u8,
    ) -> Result<PinId, NetlistError> {
        let pin = self
            .input_pins(cell)
            .nth(input_ordinal as usize)
            .ok_or(NetlistError::PinOutOfRange(cell, input_ordinal))?;
        if self.pin(pin).net.is_some() {
            return Err(NetlistError::PinAlreadyConnected(pin));
        }
        self.pins[pin.index()].net = Some(net);
        self.nets[net.index()].pins.push(pin);
        Ok(pin)
    }
}

fn intern_template(templates: &mut Vec<CellTemplate>, t: &CellTemplate) -> u16 {
    if let Some(i) = templates.iter().position(|x| x == t) {
        return i as u16;
    }
    templates.push(t.clone());
    u16::try_from(templates.len() - 1).expect("fewer than 65536 distinct templates")
}

fn make_pins(pins: &mut Vec<Pin>, cell: CellId, t: &CellTemplate) -> Vec<PinId> {
    let mut out = Vec::with_capacity((t.inputs + t.outputs) as usize);
    for k in 0..t.inputs {
        let id = PinId::new(pins.len() as u32);
        pins.push(Pin {
            cell,
            dir: PinDir::Input,
            net: None,
            cap_ff: t.input_cap_ff,
            ordinal: k,
        });
        out.push(id);
    }
    for k in 0..t.outputs {
        let id = PinId::new(pins.len() as u32);
        pins.push(Pin {
            cell,
            dir: PinDir::Output,
            net: None,
            cap_ff: 0.0,
            ordinal: k,
        });
        out.push(id);
    }
    out
}

/// Incremental builder for [`Netlist`].
///
/// # Example
///
/// ```
/// use gnnmls_netlist::{CellLibrary, NetlistBuilder, Tier};
/// use gnnmls_netlist::tech::TechNode;
///
/// # fn main() -> Result<(), gnnmls_netlist::NetlistError> {
/// let lib = CellLibrary::for_node(&TechNode::n28());
/// let mut b = NetlistBuilder::new("tiny");
/// let a = b.add_cell("a", lib.expect("PI"), Tier::Logic)?;
/// let g = b.add_cell("g", lib.expect("INV"), Tier::Logic)?;
/// let z = b.add_cell("z", lib.expect("PO"), Tier::Logic)?;
/// let n1 = b.add_net("n1")?;
/// b.connect_output(n1, a, 0)?;
/// b.connect_input(n1, g, 0)?;
/// let n2 = b.add_net("n2")?;
/// b.connect_output(n2, g, 0)?;
/// b.connect_input(n2, z, 0)?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.cell_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    netlist: Netlist,
}

impl NetlistBuilder {
    /// Starts an empty design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            netlist: Netlist {
                name: name.into(),
                templates: Vec::new(),
                cells: Vec::new(),
                pins: Vec::new(),
                nets: Vec::new(),
                cell_names: HashMap::new(),
                net_names: HashMap::new(),
            },
        }
    }

    /// Adds a cell instance.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateCellName`] if the name is taken.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        template: &CellTemplate,
        tier: Tier,
    ) -> Result<CellId, NetlistError> {
        self.netlist.add_cell(name, template, tier)
    }

    /// Adds an empty net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNetName`] if the name is taken.
    pub fn add_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.netlist.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateNetName(name));
        }
        let id = NetId::new(self.netlist.nets.len() as u32);
        self.netlist.nets.push(Net {
            name: name.clone(),
            pins: Vec::new(),
        });
        self.netlist.net_names.insert(name, id);
        Ok(id)
    }

    /// Connects the `ordinal`-th output pin of `cell` as the driver of `net`.
    ///
    /// # Errors
    ///
    /// Errors if the net already has a driver, the ordinal is out of range,
    /// or the pin is already connected elsewhere.
    pub fn connect_output(
        &mut self,
        net: NetId,
        cell: CellId,
        ordinal: u8,
    ) -> Result<PinId, NetlistError> {
        let pin = self
            .netlist
            .output_pins(cell)
            .nth(ordinal as usize)
            .ok_or(NetlistError::PinOutOfRange(cell, ordinal))?;
        if self.netlist.pin(pin).net.is_some() {
            return Err(NetlistError::PinAlreadyConnected(pin));
        }
        let n = &mut self.netlist.nets[net.index()];
        if n.pins
            .first()
            .is_some_and(|&p| self.netlist.pins[p.index()].dir == PinDir::Output)
        {
            return Err(NetlistError::MultipleDrivers(net));
        }
        n.pins.insert(0, pin);
        self.netlist.pins[pin.index()].net = Some(net);
        Ok(pin)
    }

    /// Connects the `ordinal`-th input pin of `cell` as a sink of `net`.
    ///
    /// # Errors
    ///
    /// Errors if the ordinal is out of range or the pin is connected.
    pub fn connect_input(
        &mut self,
        net: NetId,
        cell: CellId,
        ordinal: u8,
    ) -> Result<PinId, NetlistError> {
        let pin = self
            .netlist
            .input_pins(cell)
            .nth(ordinal as usize)
            .ok_or(NetlistError::PinOutOfRange(cell, ordinal))?;
        if self.netlist.pin(pin).net.is_some() {
            return Err(NetlistError::PinAlreadyConnected(pin));
        }
        self.netlist.nets[net.index()].pins.push(pin);
        self.netlist.pins[pin.index()].net = Some(net);
        Ok(pin)
    }

    /// Current number of cells (useful for generators naming instances).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.netlist.cell_count()
    }

    /// Validates and returns the finished netlist.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::EmptyDesign`] if there are no cells or nets.
    /// - [`NetlistError::NoDriver`] / [`NetlistError::NoSinks`] for any
    ///   malformed net.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let n = self.netlist;
        if n.cells.is_empty() || n.nets.is_empty() {
            return Err(NetlistError::EmptyDesign);
        }
        for id in n.net_ids() {
            let net = n.net(id);
            match net.pins.first() {
                Some(&p) if n.pin(p).dir == PinDir::Output => {}
                _ => return Err(NetlistError::NoDriver(id)),
            }
            if net.pins.len() < 2 {
                gnnmls_obs::warn(
                    "gnnmls-netlist",
                    &format!("sinkless net: {} ({})", net.name, id),
                );
                return Err(NetlistError::NoSinks(id));
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::tech::TechNode;

    fn lib() -> CellLibrary {
        CellLibrary::for_node(&TechNode::n28())
    }

    fn tiny() -> Netlist {
        let lib = lib();
        let mut b = NetlistBuilder::new("tiny");
        let a = b.add_cell("a", lib.expect("PI"), Tier::Logic).unwrap();
        let g = b.add_cell("g", lib.expect("NAND2"), Tier::Logic).unwrap();
        let m = b.add_cell("m", lib.expect("SRAM"), Tier::Memory).unwrap();
        let z = b.add_cell("z", lib.expect("PO"), Tier::Logic).unwrap();
        let n1 = b.add_net("n1").unwrap();
        b.connect_output(n1, a, 0).unwrap();
        b.connect_input(n1, g, 0).unwrap();
        b.connect_input(n1, g, 1).unwrap();
        let n2 = b.add_net("n2").unwrap();
        b.connect_output(n2, g, 0).unwrap();
        b.connect_input(n2, m, 0).unwrap();
        let n3 = b.add_net("n3").unwrap();
        b.connect_output(n3, m, 0).unwrap();
        b.connect_input(n3, z, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_consistent_design() {
        let n = tiny();
        assert_eq!(n.cell_count(), 4);
        assert_eq!(n.net_count(), 3);
        let n1 = n.net_by_name("n1").unwrap();
        assert_eq!(n.sinks(n1).len(), 2);
        let drv = n.driver(n1);
        assert_eq!(n.pin(drv).dir, PinDir::Output);
        assert_eq!(n.cell(n.driver_cell(n1)).name, "a");
        assert_eq!(n.name(), "tiny");
    }

    #[test]
    fn net_tier_classifies_2d_and_3d_nets() {
        let n = tiny();
        let n1 = n.net_by_name("n1").unwrap();
        let n2 = n.net_by_name("n2").unwrap();
        assert_eq!(n.net_tier(n1), Some(Tier::Logic));
        assert_eq!(n.net_tier(n2), None, "n2 crosses tiers");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("x");
        b.add_cell("a", lib.expect("INV"), Tier::Logic).unwrap();
        assert!(matches!(
            b.add_cell("a", lib.expect("INV"), Tier::Logic),
            Err(NetlistError::DuplicateCellName(_))
        ));
        b.add_net("n").unwrap();
        assert!(matches!(
            b.add_net("n"),
            Err(NetlistError::DuplicateNetName(_))
        ));
    }

    #[test]
    fn double_drive_is_rejected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("x");
        let g1 = b.add_cell("g1", lib.expect("INV"), Tier::Logic).unwrap();
        let g2 = b.add_cell("g2", lib.expect("INV"), Tier::Logic).unwrap();
        let n = b.add_net("n").unwrap();
        b.connect_output(n, g1, 0).unwrap();
        assert!(matches!(
            b.connect_output(n, g2, 0),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn driverless_net_fails_validation() {
        let lib = lib();
        let mut b = NetlistBuilder::new("x");
        let g = b.add_cell("g", lib.expect("INV"), Tier::Logic).unwrap();
        let n = b.add_net("n").unwrap();
        b.connect_input(n, g, 0).unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::NoDriver(_))));
    }

    #[test]
    fn sinkless_net_fails_validation() {
        let lib = lib();
        let mut b = NetlistBuilder::new("x");
        let g = b.add_cell("g", lib.expect("INV"), Tier::Logic).unwrap();
        let n = b.add_net("n").unwrap();
        b.connect_output(n, g, 0).unwrap();
        assert!(matches!(b.finish(), Err(NetlistError::NoSinks(_))));
    }

    #[test]
    fn empty_design_fails_validation() {
        let b = NetlistBuilder::new("x");
        assert!(matches!(b.finish(), Err(NetlistError::EmptyDesign)));
    }

    #[test]
    fn split_net_moves_sinks_through_cell() {
        let mut n = tiny();
        let lib = lib();
        let n1 = n.net_by_name("n1").unwrap();
        let sinks: Vec<_> = n.sinks(n1).to_vec();
        let moved = vec![sinks[1]];
        let mux = n
            .add_cell("dft_mux", lib.expect("BUF"), Tier::Logic)
            .unwrap();
        let new_net = n.split_net(n1, &moved, mux, "n1_split").unwrap();
        // Old net: driver + remaining sink + mux input.
        assert_eq!(n.net(n1).pins.len(), 3);
        // New net: mux output + moved sink.
        assert_eq!(n.net(new_net).pins.len(), 2);
        assert_eq!(n.driver_cell(new_net), mux);
        assert_eq!(n.pin(moved[0]).net, Some(new_net));
        assert_eq!(n.net_by_name("n1_split"), Some(new_net));
    }

    #[test]
    fn split_net_rejects_foreign_pins() {
        let mut n = tiny();
        let lib = lib();
        let n1 = n.net_by_name("n1").unwrap();
        let n3 = n.net_by_name("n3").unwrap();
        let foreign = n.sinks(n3)[0];
        let mux = n
            .add_cell("dft_mux", lib.expect("BUF"), Tier::Logic)
            .unwrap();
        assert!(matches!(
            n.split_net(n1, &[foreign], mux, "bad"),
            Err(NetlistError::PinNotOnNet(_, _))
        ));
    }

    #[test]
    fn templates_are_interned() {
        let n = tiny();
        // 4 cells use 4 distinct templates; adding more cells of the same
        // template must not grow the table.
        let before = n.templates.len();
        let mut n2 = n.clone();
        let lib = lib();
        n2.add_cell("g2", lib.expect("NAND2"), Tier::Logic).unwrap();
        assert_eq!(n2.templates.len(), before);
    }

    #[test]
    fn pin_load_sums_sink_caps() {
        let n = tiny();
        let lib = lib();
        let n1 = n.net_by_name("n1").unwrap();
        let expect = 2.0 * lib.expect("NAND2").input_cap_ff;
        assert!((n.pin_load_ff(n1) - expect).abs() < 1e-9);
    }

    #[test]
    fn new_driven_net_and_connect_new_net() {
        let mut n = tiny();
        let lib = lib();
        let buf = n.add_cell("nb", lib.expect("BUF"), Tier::Logic).unwrap();
        let po = n.add_cell("npo", lib.expect("PO"), Tier::Logic).unwrap();
        let net = n.connect_new_net("fresh", buf, po).unwrap();
        assert_eq!(n.driver_cell(net), buf);
        assert_eq!(n.sinks(net).len(), 1);
        assert_eq!(n.net_by_name("fresh"), Some(net));
        // The buffer's only output is now taken.
        let buf2 = n.add_cell("nb2", lib.expect("BUF"), Tier::Logic).unwrap();
        assert!(matches!(
            n.connect_new_net("fresh", buf2, po),
            Err(NetlistError::DuplicateNetName(_))
        ));
        // PO input is taken too: a second net to it must fail.
        assert!(matches!(
            n.connect_new_net("fresh2", buf2, po),
            Err(NetlistError::PinOutOfRange(_, _))
        ));
        // Driver with no free output errors as well.
        assert!(matches!(
            n.new_driven_net("fresh3", buf),
            Err(NetlistError::PinOutOfRange(_, _))
        ));
    }

    #[test]
    fn connect_sink_rejects_connected_and_out_of_range_pins() {
        let mut n = tiny();
        let n1 = n.net_by_name("n1").unwrap();
        let g = n.cell_by_name("g").unwrap();
        // Both NAND2 inputs already connected.
        assert!(matches!(
            n.connect_sink(n1, g, 0),
            Err(NetlistError::PinAlreadyConnected(_))
        ));
        assert!(matches!(
            n.connect_sink(n1, g, 7),
            Err(NetlistError::PinOutOfRange(_, _))
        ));
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs: Vec<NetlistError> = vec![
            NetlistError::DuplicateCellName("a".into()),
            NetlistError::NoDriver(NetId::new(0)),
            NetlistError::EmptyDesign,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

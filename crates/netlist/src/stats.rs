//! Summary statistics for a netlist, used in reports and generator tests.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::cell::CellClass;
use crate::ids::Tier;
use crate::netlist::Netlist;

/// Aggregate statistics of a design.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total cells.
    pub cells: usize,
    /// Total nets.
    pub nets: usize,
    /// Total pins.
    pub pins: usize,
    /// Combinational gates.
    pub combinational: usize,
    /// Registers (including scan registers).
    pub registers: usize,
    /// SRAM macros.
    pub macros: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Level shifters.
    pub level_shifters: usize,
    /// Cells on the logic tier.
    pub logic_tier_cells: usize,
    /// Cells on the memory tier.
    pub memory_tier_cells: usize,
    /// Nets entirely on the logic tier ("2D nets", bottom).
    pub logic_2d_nets: usize,
    /// Nets entirely on the memory tier ("2D nets", top).
    pub memory_2d_nets: usize,
    /// Nets spanning both tiers ("3D nets").
    pub nets_3d: usize,
    /// Maximum net fanout (sink count).
    pub max_fanout: usize,
    /// Mean net fanout.
    pub mean_fanout: f64,
    /// Cell area on the logic tier, µm².
    pub logic_area_um2: f64,
    /// Cell area on the memory tier, µm².
    pub memory_area_um2: f64,
}

impl NetlistStats {
    /// Computes statistics for a design.
    pub fn compute(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            cells: netlist.cell_count(),
            nets: netlist.net_count(),
            pins: netlist.pin_count(),
            logic_area_um2: netlist.tier_area_um2(Tier::Logic),
            memory_area_um2: netlist.tier_area_um2(Tier::Memory),
            ..Default::default()
        };
        for c in netlist.cell_ids() {
            match netlist.class(c) {
                CellClass::Combinational | CellClass::ScanMux => s.combinational += 1,
                CellClass::Register | CellClass::ScanRegister => s.registers += 1,
                CellClass::Macro => s.macros += 1,
                CellClass::Input => s.inputs += 1,
                CellClass::Output => s.outputs += 1,
                CellClass::LevelShifter => s.level_shifters += 1,
            }
            match netlist.cell(c).tier {
                Tier::Logic => s.logic_tier_cells += 1,
                Tier::Memory => s.memory_tier_cells += 1,
            }
        }
        let mut fanout_sum = 0usize;
        for n in netlist.net_ids() {
            let fo = netlist.sinks(n).len();
            fanout_sum += fo;
            s.max_fanout = s.max_fanout.max(fo);
            match netlist.net_tier(n) {
                Some(Tier::Logic) => s.logic_2d_nets += 1,
                Some(Tier::Memory) => s.memory_2d_nets += 1,
                None => s.nets_3d += 1,
            }
        }
        s.mean_fanout = if s.nets == 0 {
            0.0
        } else {
            fanout_sum as f64 / s.nets as f64
        };
        s
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells={} (comb={} reg={} macro={} pi={} po={} ls={})",
            self.cells,
            self.combinational,
            self.registers,
            self.macros,
            self.inputs,
            self.outputs,
            self.level_shifters
        )?;
        writeln!(
            f,
            "tiers: logic={} cells / {:.0} um2, memory={} cells / {:.0} um2",
            self.logic_tier_cells,
            self.logic_area_um2,
            self.memory_tier_cells,
            self.memory_area_um2
        )?;
        write!(
            f,
            "nets={} (2d-logic={} 2d-memory={} 3d={}), fanout max={} mean={:.2}",
            self.nets,
            self.logic_2d_nets,
            self.memory_2d_nets,
            self.nets_3d,
            self.max_fanout,
            self.mean_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::netlist::NetlistBuilder;
    use crate::tech::TechNode;

    #[test]
    fn stats_count_classes_tiers_and_net_kinds() {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("s");
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let g = b.add_cell("g", lib.expect("INV"), Tier::Logic).unwrap();
        let m = b.add_cell("m", lib.expect("SRAM"), Tier::Memory).unwrap();
        let po = b.add_cell("po", lib.expect("PO"), Tier::Logic).unwrap();
        let n0 = b.add_net("n0").unwrap();
        b.connect_output(n0, pi, 0).unwrap();
        b.connect_input(n0, g, 0).unwrap();
        let n1 = b.add_net("n1").unwrap();
        b.connect_output(n1, g, 0).unwrap();
        b.connect_input(n1, m, 0).unwrap();
        let n2 = b.add_net("n2").unwrap();
        b.connect_output(n2, m, 0).unwrap();
        b.connect_input(n2, po, 0).unwrap();
        let n = b.finish().unwrap();

        let s = NetlistStats::compute(&n);
        assert_eq!(s.cells, 4);
        assert_eq!(s.combinational, 1);
        assert_eq!(s.macros, 1);
        assert_eq!(s.inputs, 1);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.logic_tier_cells, 3);
        assert_eq!(s.memory_tier_cells, 1);
        assert_eq!(s.logic_2d_nets, 1);
        assert_eq!(s.nets_3d, 2);
        assert_eq!(s.max_fanout, 1);
        assert!((s.mean_fanout - 1.0).abs() < 1e-12);
        assert!(s.memory_area_um2 > s.logic_area_um2);
        assert!(!format!("{s}").is_empty());
    }
}

//! Synthetic technology models.
//!
//! The paper runs on TSMC 16 nm / 28 nm PDKs, which are unavailable; this
//! module provides stand-ins that preserve the *relative* properties the
//! experiments depend on:
//!
//! - 16 nm gates are faster, smaller, and lower-capacitance than 28 nm and
//!   run at a lower core voltage (0.81 V vs 0.9 V, per the paper's power
//!   domains).
//! - upper metal layers are thicker (lower R per µm, slightly lower C) and
//!   coarser-pitched than lower ones, so routing long nets high is cheaper.
//! - F2F bond vias use the paper's published values: 0.5 µm size, 1.0 µm
//!   pitch, 0.5 Ω, 0.2 fF.
//!
//! Units used throughout the workspace: **µm** for length, **ps** for time,
//! **kΩ** for resistance, and **fF** for capacitance, so `kΩ × fF = ps`
//! directly.

use serde::{Deserialize, Serialize};

use crate::ids::Tier;

/// Preferred routing direction of a metal layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteDir {
    /// Wires run along x.
    Horizontal,
    /// Wires run along y.
    Vertical,
}

impl RouteDir {
    /// The orthogonal direction.
    #[inline]
    pub const fn other(self) -> RouteDir {
        match self {
            RouteDir::Horizontal => RouteDir::Vertical,
            RouteDir::Vertical => RouteDir::Horizontal,
        }
    }
}

/// Electrical and geometric model of one metal layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetalLayer {
    /// 1-based layer index within its die (M1 = 1).
    pub index: u8,
    /// Preferred routing direction (alternating by layer).
    pub dir: RouteDir,
    /// Wire resistance in kΩ per µm.
    pub r_kohm_per_um: f64,
    /// Wire capacitance in fF per µm.
    pub c_ff_per_um: f64,
    /// Routing track pitch in µm (wider on upper, thicker metals).
    pub pitch_um: f64,
}

impl MetalLayer {
    /// Human-readable name, e.g. `M3`.
    pub fn name(&self) -> String {
        format!("M{}", self.index)
    }
}

/// The back-end-of-line metal stack of one die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetalStack {
    layers: Vec<MetalLayer>,
}

impl MetalStack {
    /// Base M1 resistance for the 28 nm stand-in, kΩ/µm.
    const BASE_R: f64 = 0.0024;
    /// Base M1 capacitance, fF/µm.
    const BASE_C: f64 = 0.20;
    /// Base M1 track pitch, µm.
    const BASE_PITCH: f64 = 0.10;
    /// Per-layer geometric scaling going up the stack.
    const R_DECAY: f64 = 0.52;
    const C_DECAY: f64 = 0.97;
    const PITCH_GROWTH: f64 = 1.35;

    /// Builds a stack of `n` layers for a given node.
    ///
    /// `r_scale`/`c_scale` come from the [`TechNode`]: finer nodes have more
    /// resistive lower metals.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 12` (no real BEOL in this range is outside
    /// 1..=12 and downstream code packs layer indices into small integers).
    pub fn with_layers(n: u8, r_scale: f64, c_scale: f64) -> Self {
        assert!((1..=12).contains(&n), "metal stack must have 1..=12 layers");
        let layers = (1..=n)
            .map(|i| {
                let k = f64::from(i - 1);
                MetalLayer {
                    index: i,
                    // M1 horizontal, M2 vertical, alternating upward.
                    dir: if i % 2 == 1 {
                        RouteDir::Horizontal
                    } else {
                        RouteDir::Vertical
                    },
                    r_kohm_per_um: Self::BASE_R * Self::R_DECAY.powf(k) * r_scale,
                    c_ff_per_um: Self::BASE_C * Self::C_DECAY.powf(k) * c_scale,
                    pitch_um: Self::BASE_PITCH * Self::PITCH_GROWTH.powf(k),
                }
            })
            .collect();
        Self { layers }
    }

    /// Number of metal layers in the stack.
    #[inline]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers (never true for built stacks).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer by 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 0 or larger than [`len`](Self::len).
    #[inline]
    pub fn layer(&self, index: u8) -> &MetalLayer {
        &self.layers[index as usize - 1]
    }

    /// The top-most (thickest) layer.
    #[inline]
    pub fn top(&self) -> &MetalLayer {
        self.layers.last().expect("stack is non-empty")
    }

    /// Iterates over layers bottom-up.
    pub fn iter(&self) -> impl Iterator<Item = &MetalLayer> {
        self.layers.iter()
    }
}

/// Inter-die via (cut) resistance used between adjacent metal layers.
pub const VIA_R_KOHM: f64 = 0.002;
/// Inter-die via capacitance.
pub const VIA_C_FF: f64 = 0.05;

/// Face-to-face bond pad parameters (Section IV-A of the paper).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct F2fParams {
    /// Pad size in µm.
    pub size_um: f64,
    /// Pad pitch in µm.
    pub pitch_um: f64,
    /// Pad resistance in kΩ.
    pub r_kohm: f64,
    /// Pad capacitance in fF.
    pub c_ff: f64,
}

impl Default for F2fParams {
    fn default() -> Self {
        // "F2F via parameters are configured as size 0.5 µm, pitch 1.0 µm,
        //  resistance 0.5 Ω, and capacitance 0.2 fF."
        Self {
            size_um: 0.5,
            pitch_um: 1.0,
            r_kohm: 0.0005,
            c_ff: 0.2,
        }
    }
}

/// Node-level scaling of gate delay, capacitance, drive, leakage, and area.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TechNode {
    /// Display name, e.g. `"16nm"`.
    pub name: &'static str,
    /// Core supply voltage in volts.
    pub vdd: f64,
    /// Multiplier on intrinsic gate delay relative to the 28 nm base.
    pub delay_scale: f64,
    /// Multiplier on pin capacitance.
    pub cap_scale: f64,
    /// Multiplier on output drive resistance.
    pub drive_scale: f64,
    /// Multiplier on per-cell leakage power.
    pub leakage_scale: f64,
    /// Multiplier on cell area.
    pub area_scale: f64,
    /// Multiplier on wire resistance of the die's metal stack.
    pub wire_r_scale: f64,
    /// Multiplier on wire capacitance of the die's metal stack.
    pub wire_c_scale: f64,
}

impl TechNode {
    /// The 28 nm stand-in node (base for all scaling; VDD 0.9 V).
    pub fn n28() -> Self {
        Self {
            name: "28nm",
            vdd: 0.90,
            delay_scale: 1.0,
            cap_scale: 1.0,
            drive_scale: 1.0,
            leakage_scale: 1.0,
            area_scale: 1.0,
            wire_r_scale: 1.0,
            wire_c_scale: 1.0,
        }
    }

    /// The 16 nm stand-in node (faster, smaller, 0.81 V per the paper's
    /// logic sub-domain).
    pub fn n16() -> Self {
        Self {
            name: "16nm",
            vdd: 0.81,
            delay_scale: 0.58,
            cap_scale: 0.62,
            drive_scale: 0.85,
            leakage_scale: 1.4,
            area_scale: 0.40,
            wire_r_scale: 1.35,
            wire_c_scale: 0.92,
        }
    }
}

/// Complete technology configuration for a two-die F2F stack.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TechConfig {
    /// Display name, e.g. `"hetero-16-28"`.
    pub name: String,
    /// Node of the bottom (logic) die.
    pub logic_node: TechNode,
    /// Node of the top (memory) die.
    pub memory_node: TechNode,
    /// Metal stack of the logic die.
    pub logic_stack: MetalStack,
    /// Metal stack of the memory die.
    pub memory_stack: MetalStack,
    /// Face-to-face bond parameters.
    pub f2f: F2fParams,
}

impl TechConfig {
    /// Heterogeneous integration: 16 nm logic die + 28 nm memory die with
    /// `logic_layers`/`memory_layers` BEOL metals (Table IV uses 6+6 for
    /// MAERI and 8+8 for the A7).
    pub fn heterogeneous_16_28(logic_layers: u8, memory_layers: u8) -> Self {
        let logic_node = TechNode::n16();
        let memory_node = TechNode::n28();
        Self {
            name: format!("hetero-16-28-{logic_layers}+{memory_layers}"),
            logic_stack: MetalStack::with_layers(
                logic_layers,
                logic_node.wire_r_scale,
                logic_node.wire_c_scale,
            ),
            memory_stack: MetalStack::with_layers(
                memory_layers,
                memory_node.wire_r_scale,
                memory_node.wire_c_scale,
            ),
            logic_node,
            memory_node,
            f2f: F2fParams::default(),
        }
    }

    /// Homogeneous integration: 28 nm on both dies (Table V).
    pub fn homogeneous_28_28(logic_layers: u8, memory_layers: u8) -> Self {
        let node = TechNode::n28();
        Self {
            name: format!("homo-28-28-{logic_layers}+{memory_layers}"),
            logic_stack: MetalStack::with_layers(
                logic_layers,
                node.wire_r_scale,
                node.wire_c_scale,
            ),
            memory_stack: MetalStack::with_layers(
                memory_layers,
                node.wire_r_scale,
                node.wire_c_scale,
            ),
            logic_node: node.clone(),
            memory_node: node,
            f2f: F2fParams::default(),
        }
    }

    /// The node of a given tier.
    #[inline]
    pub fn node(&self, tier: Tier) -> &TechNode {
        match tier {
            Tier::Logic => &self.logic_node,
            Tier::Memory => &self.memory_node,
        }
    }

    /// The metal stack of a given tier.
    #[inline]
    pub fn stack(&self, tier: Tier) -> &MetalStack {
        match tier {
            Tier::Logic => &self.logic_stack,
            Tier::Memory => &self.memory_stack,
        }
    }

    /// Whether the two dies use different nodes (requires level shifters on
    /// 3D signal crossings and split power domains).
    #[inline]
    pub fn is_heterogeneous(&self) -> bool {
        self.logic_node.name != self.memory_node.name
    }

    /// The lowest VDD across domains; the paper's IR-drop budget is 10 % of
    /// this value.
    #[inline]
    pub fn min_vdd(&self) -> f64 {
        self.logic_node.vdd.min(self.memory_node.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_has_monotone_rc_profile() {
        let s = MetalStack::with_layers(6, 1.0, 1.0);
        assert_eq!(s.len(), 6);
        for w in s.iter().collect::<Vec<_>>().windows(2) {
            assert!(
                w[1].r_kohm_per_um < w[0].r_kohm_per_um,
                "upper metals must be less resistive"
            );
            assert!(w[1].pitch_um > w[0].pitch_um, "upper metals are coarser");
        }
    }

    #[test]
    fn stack_directions_alternate() {
        let s = MetalStack::with_layers(8, 1.0, 1.0);
        for l in s.iter() {
            let expect = if l.index % 2 == 1 {
                RouteDir::Horizontal
            } else {
                RouteDir::Vertical
            };
            assert_eq!(l.dir, expect, "layer {}", l.name());
        }
        assert_eq!(s.top().index, 8);
        assert_eq!(s.layer(3).name(), "M3");
    }

    #[test]
    #[should_panic(expected = "metal stack")]
    fn zero_layer_stack_panics() {
        let _ = MetalStack::with_layers(0, 1.0, 1.0);
    }

    #[test]
    fn f2f_defaults_match_paper() {
        let f = F2fParams::default();
        assert_eq!(f.size_um, 0.5);
        assert_eq!(f.pitch_um, 1.0);
        assert!((f.r_kohm - 0.0005).abs() < 1e-12); // 0.5 Ω
        assert_eq!(f.c_ff, 0.2);
    }

    #[test]
    fn hetero_config_wires_up_nodes() {
        let t = TechConfig::heterogeneous_16_28(6, 6);
        assert!(t.is_heterogeneous());
        assert_eq!(t.node(Tier::Logic).name, "16nm");
        assert_eq!(t.node(Tier::Memory).name, "28nm");
        assert_eq!(t.stack(Tier::Logic).len(), 6);
        assert!((t.min_vdd() - 0.81).abs() < 1e-12);
        // 16 nm lower metals are more resistive than 28 nm.
        assert!(t.logic_stack.layer(1).r_kohm_per_um > t.memory_stack.layer(1).r_kohm_per_um);
    }

    #[test]
    fn homo_config_is_symmetric() {
        let t = TechConfig::homogeneous_28_28(6, 6);
        assert!(!t.is_heterogeneous());
        assert_eq!(t.logic_stack, t.memory_stack);
        assert!((t.min_vdd() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn node_scalings_are_directionally_correct() {
        let n16 = TechNode::n16();
        let n28 = TechNode::n28();
        assert!(n16.delay_scale < n28.delay_scale);
        assert!(n16.cap_scale < n28.cap_scale);
        assert!(n16.area_scale < n28.area_scale);
        assert!(n16.vdd < n28.vdd);
        assert!(n16.wire_r_scale > n28.wire_r_scale);
    }
}

//! Structural Verilog export and import.
//!
//! The writer emits a flat gate-level module using the library template
//! names as cell types and generic pin names (`i0…` inputs, `o0…`
//! outputs), with each instance's die recorded as a Verilog attribute:
//!
//! ```verilog
//! (* tier = "memory" *) SRAM gbuf0 (.i0(act_in0), .o0(gbuf0_q0));
//! ```
//!
//! The reader parses exactly this dialect back into a [`Netlist`], which
//! both round-trips generated designs and provides an import path for
//! externally produced netlists that stick to the library's cell set.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::cell::CellLibrary;
use crate::ids::Tier;
use crate::netlist::{Netlist, NetlistBuilder, NetlistError};
use crate::tech::TechConfig;

/// Serializes a netlist to structural Verilog.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// gnnmls structural netlist");
    let _ = writeln!(out, "module {} ();", sanitize(netlist.name()));

    // Wire declarations.
    for net in netlist.net_ids() {
        let _ = writeln!(out, "  wire {};", sanitize(&netlist.net(net).name));
    }

    // Instances.
    for cell in netlist.cell_ids() {
        let tpl = netlist.template(cell);
        let c = netlist.cell(cell);
        let mut ports = Vec::new();
        for (k, p) in netlist.input_pins(cell).enumerate() {
            if let Some(net) = netlist.pin(p).net {
                ports.push(format!(".i{k}({})", sanitize(&netlist.net(net).name)));
            }
        }
        for (k, p) in netlist.output_pins(cell).enumerate() {
            if let Some(net) = netlist.pin(p).net {
                ports.push(format!(".o{k}({})", sanitize(&netlist.net(net).name)));
            }
        }
        let _ = writeln!(
            out,
            "  (* tier = \"{}\" *) {} {} ({});",
            c.tier,
            tpl.name,
            sanitize(&c.name),
            ports.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Errors raised parsing the Verilog dialect.
#[derive(Debug)]
pub enum ParseVerilogError {
    /// A line did not match the expected dialect.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced cell type is not in the library.
    UnknownCell(String),
    /// Netlist construction failed (duplicate names, dangling nets, …).
    Netlist(NetlistError),
}

impl std::fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseVerilogError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseVerilogError::UnknownCell(c) => write!(f, "unknown cell type `{c}`"),
            ParseVerilogError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {}

impl From<NetlistError> for ParseVerilogError {
    fn from(e: NetlistError) -> Self {
        ParseVerilogError::Netlist(e)
    }
}

/// Parses the dialect produced by [`write_verilog`].
///
/// `tech` selects the per-die cell libraries the instances resolve
/// against.
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on any deviation from the dialect.
pub fn parse_verilog(src: &str, tech: &TechConfig) -> Result<Netlist, ParseVerilogError> {
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let memory_lib = CellLibrary::for_node(&tech.memory_node);

    let mut builder: Option<NetlistBuilder> = None;
    let mut nets: HashMap<String, crate::ids::NetId> = HashMap::new();
    // Deferred connections: (net, cell, dir-is-output, ordinal).
    struct Conn {
        net: String,
        cell: crate::ids::CellId,
        output: bool,
        ordinal: u8,
        line: usize,
    }
    let mut conns: Vec<Conn> = Vec::new();

    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let s = raw.trim();
        if s.is_empty() || s.starts_with("//") || s == "endmodule" {
            continue;
        }
        if let Some(rest) = s.strip_prefix("module ") {
            let name = rest.trim_end_matches([';', ')', '(']).trim();
            builder = Some(NetlistBuilder::new(name));
            continue;
        }
        let b = builder.as_mut().ok_or(ParseVerilogError::Syntax {
            line,
            message: "statement before module header".into(),
        })?;
        if let Some(rest) = s.strip_prefix("wire ") {
            let name = rest.trim_end_matches(';').trim();
            let id = b.add_net(name)?;
            nets.insert(name.to_string(), id);
            continue;
        }
        // Instance: (* tier = "x" *) TYPE name (.i0(net), ...);
        let (tier, rest) = if let Some(r) = s.strip_prefix("(* tier = \"") {
            let end = r.find('"').ok_or(ParseVerilogError::Syntax {
                line,
                message: "unterminated tier attribute".into(),
            })?;
            let tier = match &r[..end] {
                "logic" => Tier::Logic,
                "memory" => Tier::Memory,
                other => {
                    return Err(ParseVerilogError::Syntax {
                        line,
                        message: format!("unknown tier `{other}`"),
                    })
                }
            };
            let r = r[end + 1..]
                .trim_start_matches([' ', '*', ')'])
                .trim_start();
            (tier, r)
        } else {
            (Tier::Logic, s)
        };
        let open = rest.find('(').ok_or(ParseVerilogError::Syntax {
            line,
            message: "instance without port list".into(),
        })?;
        let head: Vec<&str> = rest[..open].split_whitespace().collect();
        if head.len() != 2 {
            return Err(ParseVerilogError::Syntax {
                line,
                message: format!("expected `TYPE name (`, got `{}`", &rest[..open]),
            });
        }
        let (ty, inst) = (head[0], head[1]);
        let lib = match tier {
            Tier::Logic => &logic_lib,
            Tier::Memory => &memory_lib,
        };
        let tpl = lib
            .get(ty)
            .ok_or_else(|| ParseVerilogError::UnknownCell(ty.to_string()))?;
        let cell = b.add_cell(inst, tpl, tier)?;

        let ports = rest[open + 1..].trim_end_matches([';', ')']).trim();
        for port in ports.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            // .i3(netname)  /  .o0(netname)
            let p = port.strip_prefix('.').ok_or(ParseVerilogError::Syntax {
                line,
                message: format!("bad port `{port}`"),
            })?;
            let paren = p.find('(').ok_or(ParseVerilogError::Syntax {
                line,
                message: format!("bad port `{port}`"),
            })?;
            let pname = &p[..paren];
            let net = p[paren + 1..].trim_end_matches(')').to_string();
            let (output, ordinal) = match pname.split_at(1) {
                ("i", k) => (false, k),
                ("o", k) => (true, k),
                _ => {
                    return Err(ParseVerilogError::Syntax {
                        line,
                        message: format!("unknown port name `{pname}`"),
                    })
                }
            };
            let ordinal: u8 = ordinal.parse().map_err(|_| ParseVerilogError::Syntax {
                line,
                message: format!("bad port ordinal in `{pname}`"),
            })?;
            conns.push(Conn {
                net,
                cell,
                output,
                ordinal,
                line,
            });
        }
    }

    let mut b = builder.ok_or(ParseVerilogError::Syntax {
        line: 0,
        message: "no module found".into(),
    })?;
    // Drivers first so `connect_output` sees empty nets.
    conns.sort_by_key(|c| !c.output);
    for c in conns {
        let net = *nets.get(&c.net).ok_or(ParseVerilogError::Syntax {
            line: c.line,
            message: format!("undeclared wire `{}`", c.net),
        })?;
        if c.output {
            b.connect_output(net, c.cell, c.ordinal)?;
        } else {
            b.connect_input(net, c.cell, c.ordinal)?;
        }
    }
    Ok(b.finish()?)
}

/// Makes a name a legal Verilog identifier (deterministic, collision-safe
/// for the generator's naming scheme which is already `[A-Za-z0-9_]`).
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_maeri, MaeriConfig};
    use crate::stats::NetlistStats;

    #[test]
    fn roundtrip_preserves_structure() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::new(8, 2), &tech).unwrap();
        let v = write_verilog(&d.netlist);
        assert!(v.contains("module maeri8pe_2bw"));
        assert!(v.contains("(* tier = \"memory\" *) SRAM"));

        let back = parse_verilog(&v, &tech).unwrap();
        let a = NetlistStats::compute(&d.netlist);
        let b = NetlistStats::compute(&back);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.nets, b.nets);
        assert_eq!(a.macros, b.macros);
        assert_eq!(a.registers, b.registers);
        assert_eq!(a.nets_3d, b.nets_3d);
        assert_eq!(a.logic_tier_cells, b.logic_tier_cells);
        // Per-net connectivity identical (same names on both sides).
        for net in d.netlist.net_ids() {
            let name = sanitize(&d.netlist.net(net).name);
            let other = back.net_by_name(&name).expect("net survives");
            assert_eq!(
                d.netlist.sinks(net).len(),
                back.sinks(other).len(),
                "net {name}"
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        assert!(matches!(
            parse_verilog("wire w;\n", &tech),
            Err(ParseVerilogError::Syntax { .. })
        ));
        assert!(matches!(
            parse_verilog("module m ();\n  FOO u1 (.i0(w));\nendmodule", &tech),
            Err(ParseVerilogError::UnknownCell(_))
        ));
        let undeclared = "module m ();\n  INV u1 (.i0(w), .o0(x));\nendmodule";
        assert!(matches!(
            parse_verilog(undeclared, &tech),
            Err(ParseVerilogError::Syntax { .. })
        ));
    }

    #[test]
    fn hand_written_dialect_parses() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let src = r#"
// tiny hand-written design
module hand ();
  wire a;
  wire b;
  PI p0 (.o0(a));
  INV g0 (.i0(a), .o0(b));
  PO z0 (.i0(b));
endmodule
"#;
        let n = parse_verilog(src, &tech).unwrap();
        assert_eq!(n.cell_count(), 3);
        assert_eq!(n.net_count(), 2);
        assert_eq!(n.name(), "hand");
        let a = n.net_by_name("a").unwrap();
        assert_eq!(n.sinks(a).len(), 1);
    }

    #[test]
    fn sanitize_produces_legal_identifiers() {
        assert_eq!(sanitize("a.b:c"), "a_b_c");
        assert_eq!(sanitize("1abc"), "_1abc");
        assert_eq!(sanitize("ok_name9"), "ok_name9");
    }
}

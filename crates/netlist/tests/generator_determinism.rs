//! Property test: every benchmark generator is a deterministic function
//! of its config — the foundation the suite regression gate stands on.
//!
//! For each generator family the same spec must produce a byte-identical
//! netlist (checked via [`Netlist::content_hash`], which folds every
//! cell, template, tier, and pin-exact net into an FNV-1a digest):
//!
//! - across repeated sequential generation,
//! - across concurrent generation from many threads (generators take no
//!   thread-count knob, so spawning them concurrently is the adversarial
//!   schedule: any hidden global/state dependence would diverge here),
//! - and across `GNNMLS_THREADS`-style environments (nothing in a
//!   generator may read ambient parallelism).
//!
//! Different seeds must diverge — a constant hash would pass the
//! identity checks trivially.

use gnnmls_netlist::generators::{
    generate_a7, generate_maeri, generate_noc, A7Config, MaeriConfig, NocConfig,
};
use gnnmls_netlist::tech::TechConfig;

/// One generator family: builds a netlist hash for (variant, seed).
/// Variant 0/1 are two design sizes; seeds re-seed variant 0.
fn family_hash(family: &str, variant: usize, seed: u64) -> u64 {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let netlist = match (family, variant) {
        ("maeri", 0) => {
            generate_maeri(&MaeriConfig::new(16, 4).with_seed(seed), &tech)
                .unwrap()
                .netlist
        }
        ("maeri", _) => {
            generate_maeri(&MaeriConfig::new(64, 16).with_seed(seed), &tech)
                .unwrap()
                .netlist
        }
        ("a7", 0) => {
            generate_a7(
                &A7Config::new(1).with_gates_per_stage(64).with_seed(seed),
                &tech,
            )
            .unwrap()
            .netlist
        }
        ("a7", _) => {
            generate_a7(
                &A7Config::new(2).with_gates_per_stage(64).with_seed(seed),
                &tech,
            )
            .unwrap()
            .netlist
        }
        ("noc", 0) => {
            generate_noc(&NocConfig::new(3, 3).with_seed(seed), &tech)
                .unwrap()
                .netlist
        }
        ("noc", _) => {
            generate_noc(&NocConfig::mesh4x4().with_seed(seed), &tech)
                .unwrap()
                .netlist
        }
        other => panic!("unknown family {other:?}"),
    };
    netlist.content_hash()
}

const FAMILIES: &[&str] = &["maeri", "a7", "noc"];

#[test]
fn generators_are_deterministic_sequentially_and_across_seeds() {
    for &family in FAMILIES {
        for variant in [0usize, 1] {
            for seed in [1u64, 7, 42] {
                let a = family_hash(family, variant, seed);
                let b = family_hash(family, variant, seed);
                assert_eq!(a, b, "{family}/{variant} seed {seed} must be stable");
            }
        }
        // Seed sensitivity: a constant hash must not sneak through.
        let h1 = family_hash(family, 0, 1);
        let h2 = family_hash(family, 0, 2);
        assert_ne!(h1, h2, "{family} must depend on its seed");
        // Variants are genuinely different designs.
        assert_ne!(
            family_hash(family, 0, 1),
            family_hash(family, 1, 1),
            "{family} variants must differ"
        );
    }
}

#[test]
fn generators_are_deterministic_under_concurrency() {
    // Generate each family from many threads at once. Every thread must
    // see the exact same netlist: a generator with any hidden shared
    // state (thread-id salting, a racy global counter, iteration over an
    // unordered map) diverges under this schedule.
    const THREADS: usize = 8;
    for &family in FAMILIES {
        let reference = family_hash(family, 0, 42);
        let hashes: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| s.spawn(move || family_hash(family, 0, 42)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, h) in hashes.iter().enumerate() {
            assert_eq!(
                *h, reference,
                "{family}: thread {i} produced a different netlist"
            );
        }
    }
}

#[test]
fn content_hash_sees_structural_edits() {
    // The property tests above are only as strong as the hash: prove it
    // notices a renamed cell, a re-tiered cell, and a rewired sink.
    use gnnmls_netlist::cell::CellLibrary;
    use gnnmls_netlist::{NetlistBuilder, Tier};

    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let lib = CellLibrary::for_node(&tech.logic_node);

    // inv_name: rename one cell. sink_tier: move the sink cell's die.
    // fanout: drive one vs two sinks from the same net.
    let build = |inv_name: &str, sink_tier: Tier, fanout: usize| {
        let mut b = NetlistBuilder::new("hash_probe");
        let pi = lib.expect("PI");
        let inv = lib.expect("INV");
        let po = lib.expect("PO");
        let src = b.add_cell("src", pi, Tier::Logic).unwrap();
        let i0 = b.add_cell(inv_name, inv, sink_tier).unwrap();
        let i1 = b.add_cell("i1", inv, Tier::Logic).unwrap();
        let n_in = b.add_net("n_in").unwrap();
        b.connect_output(n_in, src, 0).unwrap();
        b.connect_input(n_in, i0, 0).unwrap();
        if fanout > 1 {
            b.connect_input(n_in, i1, 0).unwrap();
        }
        let n0 = b.add_net("n0").unwrap();
        b.connect_output(n0, i0, 0).unwrap();
        let p0 = b.add_cell("p0", po, Tier::Logic).unwrap();
        b.connect_input(n0, p0, 0).unwrap();
        let n1 = b.add_net("n1").unwrap();
        b.connect_output(n1, i1, 0).unwrap();
        let p1 = b.add_cell("p1", po, Tier::Logic).unwrap();
        b.connect_input(n1, p1, 0).unwrap();
        if fanout <= 1 {
            // Keep i1 driven so the netlist stays valid either way.
            let n2 = b.add_net("n2").unwrap();
            let src2 = b.add_cell("src2", pi, Tier::Logic).unwrap();
            b.connect_output(n2, src2, 0).unwrap();
            b.connect_input(n2, i1, 0).unwrap();
        }
        b.finish().unwrap().content_hash()
    };

    let h0 = build("i0", Tier::Logic, 2);
    assert_eq!(h0, build("i0", Tier::Logic, 2), "hash must be stable");
    assert_ne!(h0, build("i0x", Tier::Logic, 2), "rename must change hash");
    assert_ne!(
        h0,
        build("i0", Tier::Memory, 2),
        "tier flip must change hash"
    );
    assert_ne!(h0, build("i0", Tier::Logic, 1), "rewiring must change hash");
}

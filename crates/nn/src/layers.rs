//! Model layers: linear, layer-norm, multi-head self-attention,
//! transformer encoder blocks, a mean-aggregation GCN (ablation baseline),
//! and the 2-layer MLP head.
//!
//! The paper's encoder (Section III-C): 3 transformer layers, 3 attention
//! heads each, pre-LN residual blocks, sinusoidal positional encodings to
//! preserve the sequential order of timing-path nodes.

use crate::optim::{ParamId, ParamVars, Params};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Fully connected layer `y = x·W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// A new layer with Xavier-initialized weights.
    pub fn new(params: &mut Params, in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: params.xavier(in_dim, out_dim),
            b: params.zeros(1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer.
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        let y = tape.matmul(x, pv.var(self.w));
        tape.add_row_broadcast(y, pv.var(self.b))
    }
}

/// Row-wise layer normalization with learned scale and shift.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
}

impl LayerNorm {
    /// A new layer-norm over `dim` features.
    pub fn new(params: &mut Params, dim: usize) -> Self {
        Self {
            gamma: params.ones(1, dim),
            beta: params.zeros(1, dim),
        }
    }

    /// Applies the normalization.
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        tape.layer_norm_rows(x, pv.var(self.gamma), pv.var(self.beta))
    }
}

/// Multi-head scaled dot-product self-attention.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// A new attention block.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn new(params: &mut Params, d_model: usize, heads: usize) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must be divisible by heads");
        Self {
            wq: Linear::new(params, d_model, d_model),
            wk: Linear::new(params, d_model, d_model),
            wv: Linear::new(params, d_model, d_model),
            wo: Linear::new(params, d_model, d_model),
            heads,
            head_dim: d_model / heads,
        }
    }

    /// Self-attention over the whole sequence (`x: n × d_model`).
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        let q = self.wq.forward(tape, pv, x);
        let k = self.wk.forward(tape, pv, x);
        let v = self.wv.forward(tape, pv, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let s = h * self.head_dim;
            let qh = tape.slice_cols(q, s, self.head_dim);
            let kh = tape.slice_cols(k, s, self.head_dim);
            let vh = tape.slice_cols(v, s, self.head_dim);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            let scores = tape.scale(scores, scale);
            let attn = tape.softmax_rows(scores);
            outs.push(tape.matmul(attn, vh));
        }
        let cat = tape.concat_cols(&outs);
        self.wo.forward(tape, pv, cat)
    }
}

/// Position-wise feed-forward block with GELU.
#[derive(Clone, Debug)]
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// A new FFN `d → hidden → d`.
    pub fn new(params: &mut Params, d_model: usize, hidden: usize) -> Self {
        Self {
            l1: Linear::new(params, d_model, hidden),
            l2: Linear::new(params, hidden, d_model),
        }
    }

    /// Applies the block.
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        let h = self.l1.forward(tape, pv, x);
        let h = tape.gelu(h);
        self.l2.forward(tape, pv, h)
    }
}

/// One pre-LN transformer encoder block.
#[derive(Clone, Debug)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    mha: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
}

impl TransformerBlock {
    /// A new block.
    pub fn new(params: &mut Params, d_model: usize, heads: usize, ffn_hidden: usize) -> Self {
        Self {
            ln1: LayerNorm::new(params, d_model),
            mha: MultiHeadAttention::new(params, d_model, heads),
            ln2: LayerNorm::new(params, d_model),
            ffn: FeedForward::new(params, d_model, ffn_hidden),
        }
    }

    /// `x + MHA(LN(x))`, then `+ FFN(LN(·))`.
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        let n = self.ln1.forward(tape, pv, x);
        let a = self.mha.forward(tape, pv, n);
        let x = tape.add(x, a);
        let n = self.ln2.forward(tape, pv, x);
        let f = self.ffn.forward(tape, pv, n);
        tape.add(x, f)
    }
}

/// Sinusoidal positional encoding, `n × d` (Vaswani et al., 2017).
pub fn positional_encoding(n: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(n, d);
    for pos in 0..n {
        for i in 0..d {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
            pe.set(pos, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
        }
    }
    pe
}

/// The paper's graph-Transformer encoder: feature embedding + positional
/// encoding + `layers` pre-LN blocks + final layer-norm.
#[derive(Clone, Debug)]
pub struct TransformerEncoder {
    embed: Linear,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    d_model: usize,
    /// Whether to add positional encodings (ablation knob; the paper keeps
    /// them on to preserve path order).
    pub use_positional: bool,
}

impl TransformerEncoder {
    /// A new encoder for `in_dim` node features.
    pub fn new(
        params: &mut Params,
        in_dim: usize,
        d_model: usize,
        heads: usize,
        layers: usize,
    ) -> Self {
        Self {
            embed: Linear::new(params, in_dim, d_model),
            blocks: (0..layers)
                .map(|_| TransformerBlock::new(params, d_model, heads, d_model * 2))
                .collect(),
            ln_f: LayerNorm::new(params, d_model),
            d_model,
            use_positional: true,
        }
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Encodes a path's node features (`x: n × in_dim`) into embeddings
    /// (`n × d_model`).
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        let mut h = self.embed.forward(tape, pv, x);
        if self.use_positional {
            let n = tape.value(h).rows();
            let pe = tape.leaf(positional_encoding(n, self.d_model));
            h = tape.add(h, pe);
        }
        for b in &self.blocks {
            h = b.forward(tape, pv, h);
        }
        self.ln_f.forward(tape, pv, h)
    }
}

/// Plain mean-aggregation graph encoder — the "traditional GNN" the paper
/// argues is insufficient (Section III-C); kept as the ablation baseline.
#[derive(Clone, Debug)]
pub struct GcnEncoder {
    embed: Linear,
    layers: Vec<(Linear, Linear, LayerNorm)>,
    d_model: usize,
}

impl GcnEncoder {
    /// A new encoder with `layers` aggregation rounds.
    pub fn new(params: &mut Params, in_dim: usize, d_model: usize, layers: usize) -> Self {
        Self {
            embed: Linear::new(params, in_dim, d_model),
            layers: (0..layers)
                .map(|_| {
                    (
                        Linear::new(params, d_model, d_model),
                        Linear::new(params, d_model, d_model),
                        LayerNorm::new(params, d_model),
                    )
                })
                .collect(),
            d_model,
        }
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Encodes node features with a row-normalized adjacency (`adj: n × n`).
    ///
    /// Each round: `h ← GELU(LN(A·h·W₁ + h·W₂)) + h`.
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var, adj: &Tensor) -> Var {
        let a = tape.leaf(adj.clone());
        let mut h = self.embed.forward(tape, pv, x);
        for (w1, w2, ln) in &self.layers {
            let agg = tape.matmul(a, h);
            let agg = w1.forward(tape, pv, agg);
            let own = w2.forward(tape, pv, h);
            let s = tape.add(agg, own);
            let s = ln.forward(tape, pv, s);
            let s = tape.gelu(s);
            h = tape.add(h, s);
        }
        h
    }
}

/// The 2-layer MLP fine-tuning head (embedding → hidden → logit).
#[derive(Clone, Debug)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// A new head.
    pub fn new(params: &mut Params, in_dim: usize, hidden: usize, out_dim: usize) -> Self {
        Self {
            l1: Linear::new(params, in_dim, hidden),
            l2: Linear::new(params, hidden, out_dim),
        }
    }

    /// Produces logits (`n × out_dim`).
    pub fn forward(&self, tape: &mut Tape, pv: &ParamVars, x: Var) -> Var {
        let h = self.l1.forward(tape, pv, x);
        let h = tape.gelu(h);
        self.l2.forward(tape, pv, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_x(rng: &mut StdRng, n: usize, d: usize) -> Tensor {
        Tensor::from_flat(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn transformer_shapes_and_gradients_flow() {
        let mut params = Params::new(7);
        let enc = TransformerEncoder::new(&mut params, 9, 24, 3, 3);
        let head = Mlp::new(&mut params, 24, 16, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let x = rand_x(&mut rng, 6, 9);
        let mut tape = Tape::new();
        let pv = params.bind(&mut tape);
        let xv = tape.leaf(x);
        let h = enc.forward(&mut tape, &pv, xv);
        assert_eq!(tape.value(h).shape(), (6, 24));
        let z = head.forward(&mut tape, &pv, h);
        assert_eq!(tape.value(z).shape(), (6, 1));
        let loss = tape.bce_with_logits(z, &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let grads = tape.backward(loss);
        let g = pv.collect_grads(&grads, &params);
        let live = g.iter().filter(|t| t.max_abs() > 0.0).count();
        assert!(
            live as f64 > 0.9 * g.len() as f64,
            "nearly all params get gradient: {live}/{}",
            g.len()
        );
    }

    #[test]
    fn transformer_overfits_a_tiny_task() {
        // Learn "label = sign of feature 0" on a fixed batch.
        let mut params = Params::new(11);
        let enc = TransformerEncoder::new(&mut params, 4, 12, 3, 2);
        let head = Mlp::new(&mut params, 12, 8, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let x = rand_x(&mut rng, 8, 4);
        let targets: Vec<f32> = (0..8).map(|r| f32::from(x.get(r, 0) > 0.0)).collect();
        let mut adam = Adam::new(0.01);
        let mut last = f32::MAX;
        for step in 0..300 {
            let mut tape = Tape::new();
            let pv = params.bind(&mut tape);
            let xv = tape.leaf(x.clone());
            let h = enc.forward(&mut tape, &pv, xv);
            let z = head.forward(&mut tape, &pv, h);
            let loss = tape.bce_with_logits(z, &targets);
            last = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss);
            let g = pv.collect_grads(&grads, &params);
            adam.step(&mut params, &g);
            let _ = step;
        }
        assert!(last < 0.1, "training should converge, loss {last}");
    }

    #[test]
    fn positional_encoding_distinguishes_positions() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), (10, 8));
        assert_ne!(pe.row(0), pe.row(5));
        // Bounded by construction.
        assert!(pe.max_abs() <= 1.0 + 1e-6);
        // Position 0: sin(0)=0, cos(0)=1 alternating.
        assert_eq!(pe.get(0, 0), 0.0);
        assert_eq!(pe.get(0, 1), 1.0);
    }

    #[test]
    fn positional_encoding_changes_output() {
        let mut params = Params::new(3);
        let mut enc = TransformerEncoder::new(&mut params, 4, 12, 3, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let x = rand_x(&mut rng, 5, 4);

        let run = |enc: &TransformerEncoder, params: &Params| -> Tensor {
            let mut tape = Tape::new();
            let pv = params.bind(&mut tape);
            let xv = tape.leaf(x.clone());
            let h = enc.forward(&mut tape, &pv, xv);
            tape.value(h).clone()
        };
        let with_pe = run(&enc, &params);
        enc.use_positional = false;
        let without = run(&enc, &params);
        assert_ne!(with_pe, without);
    }

    #[test]
    fn gcn_encoder_respects_adjacency() {
        let mut params = Params::new(4);
        let enc = GcnEncoder::new(&mut params, 3, 8, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let x = rand_x(&mut rng, 4, 3);
        // Chain adjacency (row-normalized).
        let mut adj = Tensor::zeros(4, 4);
        for i in 0..3 {
            adj.set(i + 1, i, 1.0);
            adj.set(i, i + 1, 1.0);
        }
        let mut tape = Tape::new();
        let pv = params.bind(&mut tape);
        let xv = tape.leaf(x.clone());
        let h = enc.forward(&mut tape, &pv, xv, &adj);
        assert_eq!(tape.value(h).shape(), (4, 8));
        // Disconnected graph gives a different embedding for node 0.
        let mut tape2 = Tape::new();
        let pv2 = params.bind(&mut tape2);
        let xv2 = tape2.leaf(x);
        let h2 = enc.forward(&mut tape2, &pv2, xv2, &Tensor::zeros(4, 4));
        assert_ne!(tape.value(h).row(0), tape2.value(h2).row(0));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panic() {
        let mut params = Params::new(0);
        let _ = MultiHeadAttention::new(&mut params, 10, 3);
    }
}

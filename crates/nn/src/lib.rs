//! Minimal neural-network substrate for GNN-MLS.
//!
//! The paper's model is small — a 3-layer, 3-head graph Transformer with a
//! 2-layer MLP head, pretrained with Deep Graph Infomax — so this crate
//! implements exactly what that needs, from scratch:
//!
//! - [`tensor`] — dense row-major f32 matrices and the raw math kernels.
//! - [`tape`] — reverse-mode autograd over a per-forward-pass tape with an
//!   enum of primitive ops (matmul, softmax, layer-norm, GELU, …), each
//!   verified against numerical gradients in the test suite.
//! - [`optim`] — a parameter store and the Adam optimizer.
//! - [`layers`] — `Linear`, multi-head self-attention, pre-LN transformer
//!   encoder blocks with sinusoidal positional encodings, a mean-
//!   aggregation GCN encoder (the ablation baseline), and a 2-layer MLP.
//! - [`loss`] — binary cross-entropy with logits and the DGI objective
//!   (Veličković et al., 2018): maximize agreement between node
//!   embeddings and the sigmoid-pooled graph summary, against feature-
//!   shuffled negatives.
//! - [`metrics`] — accuracy / precision / recall / F1 for the fine-tuned
//!   classifier.
//!
//! # Example
//!
//! ```
//! use gnnmls_nn::{Params, Adam, layers::Linear, tape::Tape, tensor::Tensor};
//!
//! let mut params = Params::new(42);
//! let lin = Linear::new(&mut params, 4, 2);
//! let x = Tensor::from_rows(&[vec![1.0, 0.5, -0.5, 2.0]]);
//! let mut tape = Tape::new();
//! let bound = params.bind(&mut tape);
//! let xv = tape.leaf(x);
//! let y = lin.forward(&mut tape, &bound, xv);
//! assert_eq!(tape.value(y).shape(), (1, 2));
//! ```

pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod tape;
pub mod tensor;

pub use layers::{GcnEncoder, Linear, Mlp, TransformerEncoder};
pub use loss::{bce_with_logits, dgi_loss};
pub use metrics::Classification;
pub use optim::{Adam, ParamId, Params};
pub use tape::{Tape, Var};
pub use tensor::Tensor;

//! Loss functions: BCE-with-logits and the Deep Graph Infomax objective.
//!
//! Note on the paper's eq. (3): as printed, both the positive and negative
//! terms are `log σ(⟨·, g⟩)`, which the same embeddings would maximize —
//! a sign typo. We implement the standard DGI objective from Veličković
//! et al. (2018): maximize `log σ(v·g)` for real nodes and
//! `log(1 − σ(v*·g))` for corrupted ones, i.e. a binary cross-entropy
//! where the summary vector plays discriminator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Mean binary cross-entropy with logits (numerically stable).
///
/// Thin wrapper over [`Tape::bce_with_logits`] for API symmetry with
/// [`dgi_loss`].
///
/// # Panics
///
/// Panics if `targets.len()` differs from the number of logits.
pub fn bce_with_logits(tape: &mut Tape, logits: Var, targets: &[f32]) -> Var {
    tape.bce_with_logits(logits, targets)
}

/// The DGI loss for one graph.
///
/// `h` are the encoder's node embeddings of the real graph (`n × d`),
/// `h_corrupt` the embeddings of the corrupted graph (`m × d`). The
/// summary is `g = σ(mean(h))`; scores are inner products `⟨v, g⟩`
/// classified real-vs-corrupt with BCE.
pub fn dgi_loss(tape: &mut Tape, h: Var, h_corrupt: Var) -> Var {
    let n = tape.value(h).rows();
    let m = tape.value(h_corrupt).rows();
    let mean = tape.mean_rows(h);
    let g = tape.sigmoid(mean); // 1 × d
    let gt = tape.transpose(g); // d × 1
    let pos = tape.matmul(h, gt); // n × 1
    let neg = tape.matmul(h_corrupt, gt); // m × 1
    let pos_t = tape.transpose(pos); // 1 × n
    let neg_t = tape.transpose(neg); // 1 × m
    let logits = tape.concat_cols(&[pos_t, neg_t]); // 1 × (n+m)
    let mut targets = vec![1.0f32; n];
    targets.extend(std::iter::repeat_n(0.0, m));
    tape.bce_with_logits(logits, &targets)
}

/// DGI's corruption function: shuffle node feature rows (the paper's
/// "perturbing node features"), preserving the feature marginals while
/// destroying node-position association.
pub fn corrupt_features(x: &Tensor, rng: &mut StdRng) -> Tensor {
    let n = x.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let rows: Vec<Vec<f32>> = perm.iter().map(|&r| x.row(r).to_vec()).collect();
    Tensor::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::TransformerEncoder;
    use crate::optim::{Adam, Params};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dgi_loss_decreases_under_training() {
        let mut params = Params::new(21);
        let enc = TransformerEncoder::new(&mut params, 5, 12, 3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        // Structured features: node i leans toward a position-dependent
        // pattern, so real vs shuffled is learnable.
        let x = Tensor::from_flat(
            8,
            5,
            (0..40)
                .map(|i| ((i / 5) as f32 / 8.0) + 0.1 * rng.gen_range(-1.0f32..1.0))
                .collect(),
        );
        let mut adam = Adam::new(0.005);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..120 {
            let corrupt = corrupt_features(&x, &mut rng);
            let mut tape = Tape::new();
            let pv = params.bind(&mut tape);
            let xv = tape.leaf(x.clone());
            let cv = tape.leaf(corrupt);
            let h = enc.forward(&mut tape, &pv, xv);
            let hc = enc.forward(&mut tape, &pv, cv);
            let loss = dgi_loss(&mut tape, h, hc);
            last = tape.value(loss).get(0, 0);
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            let g = pv.collect_grads(&grads, &params);
            adam.step(&mut params, &g);
        }
        let first = first.unwrap();
        assert!(
            last < first,
            "DGI training should reduce the loss: {first} -> {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn corruption_permutes_rows() {
        let x = Tensor::from_rows(&[
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![4.0, 0.0],
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let c = corrupt_features(&x, &mut rng);
        assert_eq!(c.shape(), x.shape());
        // Same multiset of rows.
        let mut a: Vec<Vec<f32>> = (0..4).map(|r| x.row(r).to_vec()).collect();
        let mut b: Vec<Vec<f32>> = (0..4).map(|r| c.row(r).to_vec()).collect();
        a.sort_by(|p, q| p[0].total_cmp(&q[0]));
        b.sort_by(|p, q| p[0].total_cmp(&q[0]));
        assert_eq!(a, b);
    }

    #[test]
    fn dgi_loss_is_log2_at_chance() {
        // With h == h_corrupt the discriminator cannot do better than
        // chance; the loss equals ln 2 at a zero-information optimum and
        // is certainly finite/positive here.
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::zeros(4, 6));
        let hc = tape.leaf(Tensor::zeros(4, 6));
        let loss = dgi_loss(&mut tape, h, hc);
        let v = tape.value(loss).get(0, 0);
        assert!((v - std::f32::consts::LN_2).abs() < 1e-5);
    }
}

//! Binary-classification metrics for the fine-tuned MLS decision head.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Confusion-matrix summary of a binary classifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Classification {
    /// Scores logits (`n × 1`) against boolean labels at threshold 0
    /// (σ(z) > 0.5 ⇔ z > 0).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the number of logits.
    pub fn from_logits(logits: &Tensor, labels: &[bool]) -> Self {
        assert_eq!(logits.as_slice().len(), labels.len(), "one label per logit");
        let mut c = Classification::default();
        for (&z, &y) in logits.as_slice().iter().zip(labels) {
            match (z > 0.0, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision of the positive class (1.0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall of the positive class (1.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges two confusion matrices.
    pub fn merge(&self, other: &Classification) -> Classification {
        Classification {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            tn: self.tn + other.tn,
            fn_: self.fn_ + other.fn_,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_from_logits() {
        let z = Tensor::from_rows(&[vec![2.0], vec![-1.0], vec![0.5], vec![-0.2]]);
        let c = Classification::from_logits(&z, &[true, false, false, true]);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_defined() {
        let empty = Classification::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let all_neg = Classification {
            tn: 5,
            ..Default::default()
        };
        assert_eq!(all_neg.accuracy(), 1.0);
        assert_eq!(all_neg.f1(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Classification {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 4, 6, 8));
    }
}

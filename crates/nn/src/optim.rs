//! Parameter store and the Adam optimizer.
//!
//! Parameters live outside any tape in a [`Params`] store. Each forward
//! pass binds them into the tape ([`Params::bind`]), and after backward
//! the per-parameter gradients are gathered back by id.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tape::{Gradients, Tape, Var};
use crate::tensor::Tensor;

/// Handle to a parameter tensor in a [`Params`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(usize);

/// A store of trainable tensors.
#[derive(Debug)]
pub struct Params {
    tensors: Vec<Tensor>,
    rng: StdRng,
}

impl Params {
    /// An empty store with a seeded initializer RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            tensors: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Registers an explicit tensor.
    pub fn add(&mut self, t: Tensor) -> ParamId {
        self.tensors.push(t);
        ParamId(self.tensors.len() - 1)
    }

    /// Registers a Xavier/Glorot-uniform `rows × cols` matrix.
    pub fn xavier(&mut self, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| self.rng.gen_range(-bound..bound))
            .collect();
        self.add(Tensor::from_flat(rows, cols, data))
    }

    /// Registers a zero tensor.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Tensor::zeros(rows, cols))
    }

    /// Registers an all-ones tensor.
    pub fn ones(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Tensor::from_flat(rows, cols, vec![1.0; rows * cols]))
    }

    /// The current value of a parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access (used by the optimizer).
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Number of registered parameters.
    #[inline]
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(|t| t.as_slice().len()).sum()
    }

    /// All parameter tensors in registration order (checkpointing).
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Replaces every parameter value (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns the offending index if counts or shapes differ from the
    /// registered parameters.
    pub fn restore(&mut self, values: Vec<Tensor>) -> Result<(), usize> {
        if values.len() != self.tensors.len() {
            return Err(values.len());
        }
        for (i, (cur, new)) in self.tensors.iter().zip(&values).enumerate() {
            if cur.shape() != new.shape() {
                return Err(i);
            }
        }
        self.tensors = values;
        Ok(())
    }

    /// Binds every parameter into a tape as a leaf; returns the mapping.
    pub fn bind(&self, tape: &mut Tape) -> ParamVars {
        ParamVars {
            vars: self.tensors.iter().map(|t| tape.leaf(t.clone())).collect(),
        }
    }
}

/// Tape bindings of a parameter store, valid for one forward pass.
#[derive(Debug)]
pub struct ParamVars {
    vars: Vec<Var>,
}

impl ParamVars {
    /// The tape var bound to a parameter.
    #[inline]
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// Gathers per-parameter gradients after backward (zero tensors for
    /// parameters the loss never touched).
    pub fn collect_grads(&self, grads: &Gradients, params: &Params) -> Vec<Tensor> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                grads.get(v).cloned().unwrap_or_else(|| {
                    let (r, c) = params.get(ParamId(i)).shape();
                    Tensor::zeros(r, c)
                })
            })
            .collect()
    }
}

/// The Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: i32,
}

impl Adam {
    /// Adam with the usual defaults and a given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != params.len()`.
    pub fn step(&mut self, params: &mut Params, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "one gradient per parameter");
        if self.m.len() != params.len() {
            self.m = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, g) in grads.iter().enumerate() {
            let p = params.get_mut(ParamId(i));
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((pw, &gw), (mw, vw)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mw = self.beta1 * *mw + (1.0 - self.beta1) * gw;
                *vw = self.beta2 * *vw + (1.0 - self.beta2) * gw * gw;
                let mhat = *mw / bc1;
                let vhat = *vw / bc2;
                *pw -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize ||w - target||² with gradients 2(w - target).
        let mut params = Params::new(0);
        let w = params.add(Tensor::from_rows(&[vec![5.0, -3.0]]));
        let target = [1.0f32, 2.0];
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let cur = params.get(w).clone();
            let grad = Tensor::from_rows(&[vec![
                2.0 * (cur.get(0, 0) - target[0]),
                2.0 * (cur.get(0, 1) - target[1]),
            ]]);
            adam.step(&mut params, &[grad]);
        }
        let w = params.get(w);
        assert!((w.get(0, 0) - 1.0).abs() < 1e-2);
        assert!((w.get(0, 1) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn bind_and_collect_roundtrip() {
        let mut params = Params::new(1);
        let a = params.xavier(2, 2);
        let b = params.zeros(1, 2);
        let mut tape = Tape::new();
        let pv = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_rows(&[vec![1.0, 1.0]]));
        let y = tape.matmul(x, pv.var(a));
        let y = tape.add_row_broadcast(y, pv.var(b));
        let loss = tape.bce_with_logits(y, &[1.0, 0.0]);
        let grads = tape.backward(loss);
        let g = pv.collect_grads(&grads, &params);
        assert_eq!(g.len(), 2);
        assert!(g[0].max_abs() > 0.0, "weight gradient flows");
        assert!(g[1].max_abs() > 0.0, "bias gradient flows");
        assert!(params.scalar_count() == 6);
    }

    #[test]
    fn untouched_params_get_zero_grads() {
        let mut params = Params::new(2);
        let used = params.xavier(2, 1);
        let unused = params.xavier(3, 3);
        let mut tape = Tape::new();
        let pv = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_rows(&[vec![1.0, 2.0]]));
        let z = tape.matmul(x, pv.var(used));
        let loss = tape.bce_with_logits(z, &[1.0]);
        let grads = tape.backward(loss);
        let g = pv.collect_grads(&grads, &params);
        assert!(g[used.0].max_abs() > 0.0);
        assert_eq!(g[unused.0].max_abs(), 0.0);
    }

    #[test]
    fn xavier_bounds_scale_with_fanin() {
        let mut params = Params::new(3);
        let big = params.xavier(1000, 1000);
        let small = params.xavier(2, 2);
        assert!(params.get(big).max_abs() < params.get(small).max_abs() + 1.3);
        assert!(params.get(big).max_abs() < 0.1);
    }
}

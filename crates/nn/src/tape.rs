//! Reverse-mode autograd over a per-forward-pass tape.
//!
//! Every primitive op appends a node holding its inputs (by index) and its
//! forward value; [`Tape::backward`] walks the tape once in reverse,
//! accumulating gradients. Each op's backward rule is verified against
//! central-difference numerical gradients in this module's tests.

use crate::tensor::{gelu, gelu_grad, sigmoid, Tensor};

/// Handle to a tape node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Raw tape index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    AddRowBroadcast(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    Gelu(usize),
    Sigmoid(usize),
    SoftmaxRows(usize),
    LayerNormRows {
        x: usize,
        gamma: usize,
        beta: usize,
        eps: f32,
    },
    Transpose(usize),
    MeanRows(usize),
    SliceCols {
        src: usize,
        start: usize,
        len: usize,
    },
    ConcatCols(Vec<usize>),
    SumAll(usize),
    BceWithLogits {
        logits: usize,
        targets: Vec<f32>,
    },
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Tensor,
}

/// Accumulated gradients per tape node.
#[derive(Debug)]
pub struct Gradients(Vec<Option<Tensor>>);

impl Gradients {
    /// Gradient of the loss w.r.t. a var, if it received any.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.0[v.0].as_ref()
    }
}

/// The autograd tape. Create one per forward pass.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a var.
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Records an input (leaf) tensor.
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t)
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a.0, b.0), v)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a.0, b.0), v)
    }

    /// `a + bias` with `bias: 1 × cols` broadcast over rows.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let v = self.value(a).add_row_broadcast(self.value(bias));
        self.push(Op::AddRowBroadcast(a.0, bias.0), v)
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(Op::Mul(a.0, b.0), v)
    }

    /// `s · a`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(Op::Scale(a.0, s), v)
    }

    /// Elementwise GELU.
    pub fn gelu(&mut self, a: Var) -> Var {
        let mut v = self.value(a).clone();
        for x in v.as_mut_slice() {
            *x = gelu(*x);
        }
        self.push(Op::Gelu(a.0), v)
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut v = self.value(a).clone();
        for x in v.as_mut_slice() {
            *x = sigmoid(*x);
        }
        self.push(Op::Sigmoid(a.0), v)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push(Op::SoftmaxRows(a.0), v)
    }

    /// Row-wise layer normalization with learned `gamma`/`beta`
    /// (`1 × cols` each).
    pub fn layer_norm_rows(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        let eps = 1e-5_f32;
        let xv = self.value(x);
        let (rows, cols) = xv.shape();
        let g = self.value(gamma).as_slice().to_vec();
        let b = self.value(beta).as_slice().to_vec();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let row = xv.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for c in 0..cols {
                out.set(r, c, g[c] * (row[c] - mean) * inv + b[c]);
            }
        }
        self.push(
            Op::LayerNormRows {
                x: x.0,
                gamma: gamma.0,
                beta: beta.0,
                eps,
            },
            out,
        )
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a.0), v)
    }

    /// Mean over rows → `1 × cols`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).mean_rows();
        self.push(Op::MeanRows(a.0), v)
    }

    /// Column block `[start, start + len)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.value(a).slice_cols(start, len);
        self.push(
            Op::SliceCols {
                src: a.0,
                start,
                len,
            },
            v,
        )
    }

    /// Horizontal concatenation of tensors with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat needs at least one part");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows(), rows, "concat row mismatch");
            for r in 0..rows {
                for c in 0..t.cols() {
                    out.set(r, off + c, t.get(r, c));
                }
            }
            off += t.cols();
        }
        self.push(Op::ConcatCols(parts.iter().map(|p| p.0).collect()), out)
    }

    /// Sum of all elements → `1 × 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_flat(1, 1, vec![self.value(a).sum()]);
        self.push(Op::SumAll(a.0), v)
    }

    /// Mean binary cross-entropy with logits against constant targets →
    /// `1 × 1`. Numerically stable form.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the logit element count.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let z = self.value(logits);
        assert_eq!(targets.len(), z.as_slice().len(), "one target per logit");
        let n = targets.len() as f32;
        let loss: f32 = z
            .as_slice()
            .iter()
            .zip(targets)
            .map(|(&z, &t)| z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln())
            .sum::<f32>()
            / n;
        self.push(
            Op::BceWithLogits {
                logits: logits.0,
                targets: targets.to_vec(),
            },
            Tensor::from_flat(1, 1, vec![loss]),
        )
    }

    /// Runs backpropagation from a scalar loss var.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::from_flat(1, 1, vec![1.0]));

        for i in (0..=loss.0).rev() {
            let Some(gy) = grads[i].take() else {
                continue;
            };
            match &self.nodes[i].op {
                Op::Leaf => {
                    grads[i] = Some(gy);
                    continue;
                }
                Op::MatMul(a, b) => {
                    let av = &self.nodes[*a].value;
                    let bv = &self.nodes[*b].value;
                    accum(&mut grads, *a, gy.matmul(&bv.transpose()));
                    accum(&mut grads, *b, av.transpose().matmul(&gy));
                }
                Op::Add(a, b) => {
                    accum(&mut grads, *a, gy.clone());
                    accum(&mut grads, *b, gy);
                }
                Op::AddRowBroadcast(a, bias) => {
                    // Bias gradient: column sums.
                    let mut gb = Tensor::zeros(1, gy.cols());
                    for r in 0..gy.rows() {
                        for c in 0..gy.cols() {
                            gb.set(0, c, gb.get(0, c) + gy.get(r, c));
                        }
                    }
                    accum(&mut grads, *bias, gb);
                    accum(&mut grads, *a, gy);
                }
                Op::Mul(a, b) => {
                    let av = self.nodes[*a].value.clone();
                    let bv = self.nodes[*b].value.clone();
                    accum(&mut grads, *a, gy.mul(&bv));
                    accum(&mut grads, *b, gy.mul(&av));
                }
                Op::Scale(a, s) => accum(&mut grads, *a, gy.scale(*s)),
                Op::Gelu(a) => {
                    let xv = &self.nodes[*a].value;
                    let mut gx = gy.clone();
                    for (g, &x) in gx.as_mut_slice().iter_mut().zip(xv.as_slice()) {
                        *g *= gelu_grad(x);
                    }
                    accum(&mut grads, *a, gx);
                }
                Op::Sigmoid(a) => {
                    let yv = &self.nodes[i].value;
                    let mut gx = gy.clone();
                    for (g, &y) in gx.as_mut_slice().iter_mut().zip(yv.as_slice()) {
                        *g *= y * (1.0 - y);
                    }
                    accum(&mut grads, *a, gx);
                }
                Op::SoftmaxRows(a) => {
                    let yv = &self.nodes[i].value;
                    let (rows, cols) = yv.shape();
                    let mut gx = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let dot: f32 = (0..cols).map(|c| gy.get(r, c) * yv.get(r, c)).sum();
                        for c in 0..cols {
                            gx.set(r, c, yv.get(r, c) * (gy.get(r, c) - dot));
                        }
                    }
                    accum(&mut grads, *a, gx);
                }
                Op::LayerNormRows {
                    x,
                    gamma,
                    beta,
                    eps,
                } => {
                    let xv = &self.nodes[*x].value;
                    let gv = &self.nodes[*gamma].value;
                    let (rows, cols) = xv.shape();
                    let d = cols as f32;
                    let mut gx = Tensor::zeros(rows, cols);
                    let mut ggamma = Tensor::zeros(1, cols);
                    let mut gbeta = Tensor::zeros(1, cols);
                    for r in 0..rows {
                        let row = xv.row(r);
                        let mean = row.iter().sum::<f32>() / d;
                        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = row.iter().map(|v| (v - mean) * inv).collect();
                        // dgamma / dbeta.
                        for (c, &xh) in xhat.iter().enumerate() {
                            ggamma.set(0, c, ggamma.get(0, c) + gy.get(r, c) * xh);
                            gbeta.set(0, c, gbeta.get(0, c) + gy.get(r, c));
                        }
                        // dx.
                        let gyg: Vec<f32> =
                            (0..cols).map(|c| gy.get(r, c) * gv.get(0, c)).collect();
                        let m1 = gyg.iter().sum::<f32>() / d;
                        let m2 = gyg.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / d;
                        for c in 0..cols {
                            gx.set(r, c, (gyg[c] - m1 - xhat[c] * m2) * inv);
                        }
                    }
                    accum(&mut grads, *x, gx);
                    accum(&mut grads, *gamma, ggamma);
                    accum(&mut grads, *beta, gbeta);
                }
                Op::Transpose(a) => accum(&mut grads, *a, gy.transpose()),
                Op::MeanRows(a) => {
                    let rows = self.nodes[*a].value.rows();
                    let cols = gy.cols();
                    let mut gx = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            gx.set(r, c, gy.get(0, c) / rows as f32);
                        }
                    }
                    accum(&mut grads, *a, gx);
                }
                Op::SliceCols { src, start, len } => {
                    let (rows, cols) = self.nodes[*src].value.shape();
                    let mut gx = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..*len {
                            gx.set(r, start + c, gy.get(r, c));
                        }
                    }
                    accum(&mut grads, *src, gx);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let (rows, cols) = self.nodes[p].value.shape();
                        let mut gp = Tensor::zeros(rows, cols);
                        for r in 0..rows {
                            for c in 0..cols {
                                gp.set(r, c, gy.get(r, off + c));
                            }
                        }
                        accum(&mut grads, p, gp);
                        off += cols;
                    }
                }
                Op::SumAll(a) => {
                    let (rows, cols) = self.nodes[*a].value.shape();
                    let g = gy.get(0, 0);
                    accum(
                        &mut grads,
                        *a,
                        Tensor::from_flat(rows, cols, vec![g; rows * cols]),
                    );
                }
                Op::BceWithLogits { logits, targets } => {
                    let zv = &self.nodes[*logits].value;
                    let (rows, cols) = zv.shape();
                    let n = targets.len() as f32;
                    let g = gy.get(0, 0);
                    let data: Vec<f32> = zv
                        .as_slice()
                        .iter()
                        .zip(targets)
                        .map(|(&z, &t)| g * (sigmoid(z) - t) / n)
                        .collect();
                    accum(&mut grads, *logits, Tensor::from_flat(rows, cols, data));
                }
            }
        }
        Gradients(grads)
    }
}

fn accum(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => *existing = existing.add(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
        Tensor::from_flat(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    /// Central-difference gradient check of `f` w.r.t. one leaf.
    ///
    /// `f` builds a scalar loss from leaves; we perturb `leaf_idx`.
    fn grad_check(leaves: &[Tensor], leaf_idx: usize, f: impl Fn(&mut Tape, &[Var]) -> Var) {
        let run = |tensors: &[Tensor]| -> f32 {
            let mut tape = Tape::new();
            let vars: Vec<Var> = tensors.iter().map(|t| tape.leaf(t.clone())).collect();
            let loss = f(&mut tape, &vars);
            tape.value(loss).get(0, 0)
        };
        // Analytic.
        let mut tape = Tape::new();
        let vars: Vec<Var> = leaves.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = f(&mut tape, &vars);
        let grads = tape.backward(loss);
        let ga = grads
            .get(vars[leaf_idx])
            .expect("leaf participates in the loss")
            .clone();

        let (rows, cols) = leaves[leaf_idx].shape();
        let h = 2e-2_f32;
        for r in 0..rows {
            for c in 0..cols {
                let mut plus = leaves.to_vec();
                let v0 = plus[leaf_idx].get(r, c);
                plus[leaf_idx].set(r, c, v0 + h);
                let mut minus = leaves.to_vec();
                minus[leaf_idx].set(r, c, v0 - h);
                let num = (run(&plus) - run(&minus)) / (2.0 * h);
                let ana = ga.get(r, c);
                let tol = 3e-2 * (1.0 + num.abs().max(ana.abs()));
                assert!(
                    (num - ana).abs() < tol,
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn matmul_and_bce_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = rand_tensor(&mut rng, 3, 4);
        let w = rand_tensor(&mut rng, 4, 1);
        let targets = vec![1.0, 0.0, 1.0];
        for leaf in 0..2 {
            grad_check(&[x.clone(), w.clone()], leaf, |tape, v| {
                let z = tape.matmul(v[0], v[1]);
                tape.bce_with_logits(z, &targets)
            });
        }
    }

    #[test]
    fn softmax_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = rand_tensor(&mut rng, 2, 5);
        let w = rand_tensor(&mut rng, 5, 1);
        grad_check(&[x, w], 0, |tape, v| {
            let s = tape.softmax_rows(v[0]);
            let z = tape.matmul(s, v[1]);
            tape.bce_with_logits(z, &[1.0, 0.0])
        });
    }

    #[test]
    fn layernorm_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = rand_tensor(&mut rng, 3, 4);
        let gamma = rand_tensor(&mut rng, 1, 4);
        let beta = rand_tensor(&mut rng, 1, 4);
        let w = rand_tensor(&mut rng, 4, 1);
        for leaf in 0..3 {
            grad_check(
                &[x.clone(), gamma.clone(), beta.clone(), w.clone()],
                leaf,
                |tape, v| {
                    let y = tape.layer_norm_rows(v[0], v[1], v[2]);
                    let z = tape.matmul(y, v[3]);
                    tape.bce_with_logits(z, &[1.0, 0.0, 1.0])
                },
            );
        }
    }

    #[test]
    fn gelu_sigmoid_mul_gradients() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = rand_tensor(&mut rng, 2, 3);
        let y = rand_tensor(&mut rng, 2, 3);
        let w = rand_tensor(&mut rng, 3, 1);
        for leaf in 0..2 {
            grad_check(&[x.clone(), y.clone(), w.clone()], leaf, |tape, v| {
                let g = tape.gelu(v[0]);
                let s = tape.sigmoid(v[1]);
                let m = tape.mul(g, s);
                let z = tape.matmul(m, v[2]);
                tape.bce_with_logits(z, &[0.0, 1.0])
            });
        }
    }

    #[test]
    fn broadcast_slice_concat_gradients() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = rand_tensor(&mut rng, 2, 4);
        let b = rand_tensor(&mut rng, 1, 4);
        let w = rand_tensor(&mut rng, 4, 1);
        for leaf in 0..2 {
            grad_check(&[x.clone(), b.clone(), w.clone()], leaf, |tape, v| {
                let y = tape.add_row_broadcast(v[0], v[1]);
                let l = tape.slice_cols(y, 0, 2);
                let r = tape.slice_cols(y, 2, 2);
                let cat = tape.concat_cols(&[l, r]);
                let z = tape.matmul(cat, v[2]);
                tape.bce_with_logits(z, &[1.0, 1.0])
            });
        }
    }

    #[test]
    fn mean_rows_transpose_scale_gradients() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = rand_tensor(&mut rng, 3, 3);
        grad_check(&[x], 0, |tape, v| {
            let m = tape.mean_rows(v[0]); // 1x3
            let t = tape.transpose(v[0]); // 3x3
            let z = tape.matmul(m, t); // 1x3
            let z = tape.scale(z, 0.5);
            let s = tape.sum_all(z);
            // Wrap in BCE-free scalar path: sum is already 1x1.
            s
        });
    }

    #[test]
    fn shared_subexpression_accumulates_gradients() {
        // loss = sum(x·w + x·w) -> dx should be 2·(ones·wᵀ).
        let x = Tensor::from_rows(&[vec![1.0, 2.0]]);
        let w = Tensor::from_rows(&[vec![3.0], vec![4.0]]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let wv = tape.leaf(w);
        let a = tape.matmul(xv, wv);
        let b = tape.matmul(xv, wv);
        let s = tape.add(a, b);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        let gx = grads.get(xv).unwrap();
        assert_eq!(gx.as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn bce_loss_value_is_stable_for_large_logits() {
        let mut tape = Tape::new();
        let z = tape.leaf(Tensor::from_rows(&[vec![100.0, -100.0]]));
        let l = tape.bce_with_logits(z, &[1.0, 0.0]);
        let v = tape.value(l).get(0, 0);
        assert!(v.is_finite());
        assert!(v < 1e-3, "perfect predictions give ~0 loss, got {v}");
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_from_non_scalar_panics() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(2, 2));
        tape.backward(x);
    }
}

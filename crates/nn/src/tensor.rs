//! Dense row-major f32 matrices and the raw math kernels.
//!
//! Everything in the model is a 2D matrix (vectors are `1 × d`), which
//! keeps both the autograd tape and the kernels simple.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of f32.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor from explicit row data.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "tensor needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A tensor wrapping a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Self { rows, cols, data }
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying flat buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_flat(self.rows, self.cols, data)
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_flat(self.rows, self.cols, data)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor::from_flat(
            self.rows,
            self.cols,
            self.data.iter().map(|a| a * s).collect(),
        )
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.shape(), (1, self.cols), "bias must be 1 x cols");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Mean over rows → `1 × cols`.
    pub fn mean_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        let n = self.rows as f32;
        for v in &mut out.data {
            *v /= n;
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let m = row.iter().copied().fold(f32::MIN, f32::max);
            let mut s = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                s += *v;
            }
            for v in row.iter_mut() {
                *v /= s;
            }
        }
        out
    }

    /// Columns `[start, start + len)` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `cols`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "column slice out of range");
        let mut out = Tensor::zeros(self.rows, len);
        for r in 0..self.rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&self.data[r * self.cols + start..r * self.cols + start + len]);
        }
        out
    }

    /// Frobenius-style sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// GELU (tanh approximation) applied elementwise.
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn matmul_matches_hand_calc() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            for &v in s.row(r) {
                assert!(v > 0.0 && v < 1.0);
            }
        }
        // Monotone within a row.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn broadcast_and_elementwise_ops() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![10.0, 20.0]]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.mul(&a).as_slice(), &[1.0, 4.0, 9.0, 16.0]);
        let m = a.mean_rows();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn slice_cols_extracts_a_block() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]);
        let s = a.slice_cols(1, 2);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn gelu_properties() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!(gelu(3.0) > 2.9);
        assert!(gelu(-3.0).abs() < 0.01);
        // Numerical derivative check.
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 2.5] {
            let h = 1e-3;
            let num = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((num - gelu_grad(x)).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Tensor::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

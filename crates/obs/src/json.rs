//! Minimal JSON string escaping (the crate is dependency-free, so trace
//! records are assembled by hand).

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a finite f64 the way `serde_json` would; non-finite values
/// (invalid JSON) are emitted as null.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s, "null");
        }
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}

//! **gnnmls-obs** — zero-dependency structured observability for the
//! GNN-MLS workspace: span-scoped timers with parent/child nesting,
//! counters/gauges/histograms behind an atomic registry, and two sinks
//! (a JSONL event log and a Prometheus-style text exposition).
//!
//! # Design rules
//!
//! - **Zero dependencies.** Every workspace crate (including the fault
//!   and parallelism leaves) links against this one, so it sits at the
//!   bottom of the dependency graph and uses only `std`.
//! - **Deterministic-safe.** Wall-clock time appears only in *emitted*
//!   trace records (`ts_ms`, `elapsed_us`), never in any value a caller
//!   can read back and act on. Counters and histograms record only
//!   algorithmic quantities (expansions, rounds, overflow cells), so
//!   enabling a sink cannot perturb routed results — the bit-identity
//!   tests run with tracing on and off and compare reports.
//! - **Near-zero cost when off.** Span creation and event emission are
//!   gated behind one relaxed atomic load ([`enabled`]); a disabled
//!   [`Span`] holds no timestamp and allocates nothing. Metric cells
//!   are plain relaxed atomics that always accumulate (so the serve
//!   daemon's `Metrics` request works without a trace sink); hot loops
//!   batch their updates (e.g. the router flushes one A* expansion
//!   count per search, not per pop).
//!
//! # Quick start
//!
//! ```
//! use gnnmls_obs as obs;
//!
//! static SEARCHES: obs::Counter =
//!     obs::Counter::new("demo_searches_total", "searches run");
//!
//! let mut span = obs::span("search");
//! SEARCHES.inc();
//! span.field_u64("expansions", 42);
//! drop(span); // emits a JSONL record if a sink is installed
//! let text = obs::render(); // Prometheus-style exposition
//! assert!(text.contains("demo_searches_total"));
//! ```
//!
//! The `GNNMLS_TRACE=<path>` environment variable (honoured by
//! [`init_from_env`], which the CLI and daemon call at startup) appends
//! JSONL records to `<path>`.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod json;
mod metrics;
mod render;
mod sink;
mod span;

pub use metrics::{
    counter_add, dyn_counter_value, dyn_gauge_value, dyn_histogram_count, gauge_add, gauge_set,
    observe, register_histogram, Counter, Gauge, Histogram, MAX_HISTOGRAM_BOUNDS,
};
pub use render::render;
pub use sink::{
    enabled, init_from_env, install, install_guarded, uninstall, JsonlSink, MemorySink, Sink,
    SinkGuard, TRACE_ENV,
};
pub use span::{event, span, warn, FieldValue, Span};

//! Counters, gauges, and fixed-bucket histograms behind a
//! lock-free-ish registry.
//!
//! Static metrics are declared as `static` items with `const`
//! constructors, cost one relaxed atomic RMW per update, and register
//! themselves with the global exposition registry on first touch (an
//! `AtomicBool` guard, so the registry mutex is taken once per metric
//! per process, never on the hot path).
//!
//! Labeled families (per-layer overflow, per-tier MLS borrows, per-site
//! fault activations) are dynamic: a mutex-guarded map keyed by
//! `(name, labels)`. They are updated at summary time or on rare
//! events, never inside routing inner loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Maximum number of finite bucket bounds a [`Histogram`] may declare
/// (one more bucket, `+Inf`, is implicit).
pub const MAX_HISTOGRAM_BOUNDS: usize = 15;

/// A monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Declares a counter; `name` should follow Prometheus conventions
    /// (`snake_case`, `_total` suffix).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&'static self, n: u64) {
        self.touch();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Registers the counter with the exposition (at value 0) without
    /// incrementing it, so rarely-firing metrics are visible — and
    /// readable as "zero events" — from process start.
    pub fn register(&'static self) {
        self.touch();
    }

    /// Adds 1.
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn touch(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            register(MetricRef::Counter(self));
        }
    }
}

/// A gauge: a value that can go up and down.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// Declares a gauge.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Sets the gauge to `v`.
    pub fn set(&'static self, v: i64) {
        self.touch();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&'static self, delta: i64) {
        self.touch();
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Registers the gauge with the exposition without setting it.
    pub fn register(&'static self) {
        self.touch();
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn touch(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            register(MetricRef::Gauge(self));
        }
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bounds are inclusive upper edges (`v <= bound` lands in that
/// bucket); anything above the last bound lands in the implicit `+Inf`
/// bucket. The exposition renders cumulative bucket counts the way
/// Prometheus expects.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_HISTOGRAM_BOUNDS + 1],
    sum: AtomicU64,
    count: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Declares a histogram with the given inclusive upper bounds,
    /// which must be strictly increasing and at most
    /// [`MAX_HISTOGRAM_BOUNDS`] long (checked at compile time — the
    /// constructor is `const` and panics in const evaluation on a bad
    /// bound list).
    pub const fn new(name: &'static str, help: &'static str, bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_HISTOGRAM_BOUNDS, "too many bounds");
        let mut i = 1;
        while i < bounds.len() {
            assert!(bounds[i - 1] < bounds[i], "bounds must strictly increase");
            i += 1;
        }
        Self {
            name,
            help,
            bounds,
            buckets: [const { AtomicU64::new(0) }; MAX_HISTOGRAM_BOUNDS + 1],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one observation.
    pub fn observe(&'static self, v: u64) {
        self.touch();
        let idx = match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => i,
            None => self.bounds.len(),
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the histogram with the exposition without recording
    /// an observation.
    pub fn register(&'static self) {
        self.touch();
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative count in bucket `i` (`bounds.len()` = `+Inf`).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// The declared bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn touch(&'static self) {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::SeqCst)
        {
            register(MetricRef::Histogram(self));
        }
    }
}

/// A registered static metric.
#[derive(Clone, Copy)]
pub(crate) enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl MetricRef {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            MetricRef::Counter(c) => c.name,
            MetricRef::Gauge(g) => g.name,
            MetricRef::Histogram(h) => h.name,
        }
    }

    pub(crate) fn help(&self) -> &'static str {
        match self {
            MetricRef::Counter(c) => c.help,
            MetricRef::Gauge(g) => g.help,
            MetricRef::Histogram(h) => h.help,
        }
    }
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

fn register(m: MetricRef) {
    REGISTRY
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(m);
}

pub(crate) fn registry_snapshot() -> Vec<MetricRef> {
    REGISTRY
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// One labeled dynamic metric cell.
#[derive(Clone)]
pub(crate) enum DynMetric {
    Counter(u64),
    Gauge(i64),
    Histogram {
        bounds: Vec<u64>,
        buckets: Vec<u64>,
        sum: u64,
        count: u64,
    },
}

pub(crate) type DynKey = (String, Vec<(String, String)>);

static DYNAMIC: Mutex<BTreeMap<DynKey, DynMetric>> = Mutex::new(BTreeMap::new());

fn dyn_key(name: &str, labels: &[(&str, &str)]) -> DynKey {
    (
        name.to_string(),
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

/// Adds `n` to the labeled counter `name{labels}` (created on first
/// touch). For rare events and summary-time accounting, not hot loops.
pub fn counter_add(name: &str, labels: &[(&str, &str)], n: u64) {
    let mut map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    match map
        .entry(dyn_key(name, labels))
        .or_insert(DynMetric::Counter(0))
    {
        DynMetric::Counter(v) => *v += n,
        // Another metric kind already owns this key; keep it rather
        // than panic.
        DynMetric::Gauge(_) | DynMetric::Histogram { .. } => {}
    }
}

/// Sets the labeled gauge `name{labels}` to `v` (created on first
/// touch). For suite-level summaries (e.g. per-scenario QoR), not hot
/// loops.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: i64) {
    let mut map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    match map
        .entry(dyn_key(name, labels))
        .or_insert(DynMetric::Gauge(0))
    {
        DynMetric::Gauge(g) => *g = v,
        DynMetric::Counter(_) | DynMetric::Histogram { .. } => {}
    }
}

/// Adds `delta` (may be negative) to the labeled gauge `name{labels}`.
pub fn gauge_add(name: &str, labels: &[(&str, &str)], delta: i64) {
    let mut map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    match map
        .entry(dyn_key(name, labels))
        .or_insert(DynMetric::Gauge(0))
    {
        DynMetric::Gauge(g) => *g += delta,
        DynMetric::Counter(_) | DynMetric::Histogram { .. } => {}
    }
}

/// Current value of a labeled gauge (0 when never touched).
pub fn dyn_gauge_value(name: &str, labels: &[(&str, &str)]) -> i64 {
    let map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    match map.get(&dyn_key(name, labels)) {
        Some(DynMetric::Gauge(v)) => *v,
        _ => 0,
    }
}

/// Records `v` into the labeled histogram `name{labels}` with the given
/// inclusive upper `bounds` (fixed on first touch).
pub fn observe(name: &str, labels: &[(&str, &str)], bounds: &[u64], v: u64) {
    let mut map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    let cell = map
        .entry(dyn_key(name, labels))
        .or_insert_with(|| DynMetric::Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        });
    if let DynMetric::Histogram {
        bounds,
        buckets,
        sum,
        count,
    } = cell
    {
        let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        buckets[idx] += 1;
        *sum += v;
        *count += 1;
    }
}

/// Creates the labeled histogram `name{labels}` with the given bounds
/// but records nothing, so the series is visible (all-zero) before its
/// first real observation.
pub fn register_histogram(name: &str, labels: &[(&str, &str)], bounds: &[u64]) {
    let mut map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    map.entry(dyn_key(name, labels))
        .or_insert_with(|| DynMetric::Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        });
}

/// Current value of a labeled counter (0 when never touched).
pub fn dyn_counter_value(name: &str, labels: &[(&str, &str)]) -> u64 {
    let map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    match map.get(&dyn_key(name, labels)) {
        Some(DynMetric::Counter(v)) => *v,
        _ => 0,
    }
}

/// Observation count of a labeled histogram (0 when never touched).
pub fn dyn_histogram_count(name: &str, labels: &[(&str, &str)]) -> u64 {
    let map = DYNAMIC.lock().unwrap_or_else(PoisonError::into_inner);
    match map.get(&dyn_key(name, labels)) {
        Some(DynMetric::Histogram { count, .. }) => *count,
        _ => 0,
    }
}

pub(crate) fn dynamic_snapshot() -> BTreeMap<DynKey, DynMetric> {
    DYNAMIC
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    static T_COUNTER: Counter = Counter::new("obs_test_counter_total", "test counter");
    static T_GAUGE: Gauge = Gauge::new("obs_test_gauge", "test gauge");
    static T_HIST: Histogram = Histogram::new("obs_test_hist", "test histogram", &[1, 2, 4, 8, 16]);

    #[test]
    fn counter_and_gauge_accumulate() {
        let before = T_COUNTER.get();
        T_COUNTER.inc();
        T_COUNTER.add(4);
        assert_eq!(T_COUNTER.get(), before + 5);
        T_GAUGE.set(7);
        T_GAUGE.add(-3);
        assert_eq!(T_GAUGE.get(), 4);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        static H: Histogram = Histogram::new("obs_test_bounds", "bounds", &[10, 20, 30]);
        // Exactly on a bound lands in that bucket; one past it spills
        // into the next; far past everything lands in +Inf.
        H.observe(10);
        H.observe(11);
        H.observe(20);
        H.observe(21);
        H.observe(30);
        H.observe(31);
        H.observe(1_000_000);
        assert_eq!(H.bucket_count(0), 1, "<=10");
        assert_eq!(H.bucket_count(1), 2, "<=20");
        assert_eq!(H.bucket_count(2), 2, "<=30");
        assert_eq!(H.bucket_count(3), 2, "+Inf");
        assert_eq!(H.count(), 7);
        assert_eq!(H.sum(), 10 + 11 + 20 + 21 + 30 + 31 + 1_000_000);
    }

    #[test]
    fn histogram_zero_and_first_bound() {
        static H: Histogram = Histogram::new("obs_test_zero", "zero edge", &[0, 5]);
        H.observe(0);
        H.observe(1);
        H.observe(5);
        H.observe(6);
        assert_eq!(H.bucket_count(0), 1, "<=0");
        assert_eq!(H.bucket_count(1), 2, "<=5");
        assert_eq!(H.bucket_count(2), 1, "+Inf");
    }

    #[test]
    fn touched_metrics_appear_once_in_registry() {
        T_HIST.observe(3);
        T_HIST.observe(3);
        let names: Vec<&str> = registry_snapshot().iter().map(|m| m.name()).collect();
        let hits = names.iter().filter(|n| **n == "obs_test_hist").count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn labeled_metrics_accumulate_per_label() {
        let l0 = [("layer", "M1")];
        let l1 = [("layer", "M2")];
        let before0 = dyn_counter_value("obs_test_labeled_total", &l0);
        counter_add("obs_test_labeled_total", &l0, 2);
        counter_add("obs_test_labeled_total", &l1, 5);
        counter_add("obs_test_labeled_total", &l0, 1);
        assert_eq!(
            dyn_counter_value("obs_test_labeled_total", &l0),
            before0 + 3
        );
        assert!(dyn_counter_value("obs_test_labeled_total", &l1) >= 5);

        let before = dyn_histogram_count("obs_test_labeled_hist", &l0);
        observe("obs_test_labeled_hist", &l0, &[1, 2], 1);
        observe("obs_test_labeled_hist", &l0, &[1, 2], 9);
        assert_eq!(
            dyn_histogram_count("obs_test_labeled_hist", &l0),
            before + 2
        );
    }

    #[test]
    fn labeled_gauges_set_add_and_read_per_label() {
        let l0 = [("design", "maeri16"), ("metric", "wns_ps")];
        let l1 = [("design", "noc4x4"), ("metric", "wns_ps")];
        gauge_set("obs_test_labeled_gauge", &l0, -23);
        gauge_set("obs_test_labeled_gauge", &l1, 4);
        assert_eq!(dyn_gauge_value("obs_test_labeled_gauge", &l0), -23);
        assert_eq!(dyn_gauge_value("obs_test_labeled_gauge", &l1), 4);
        // set overwrites, add accumulates (and may go negative).
        gauge_set("obs_test_labeled_gauge", &l0, 10);
        gauge_add("obs_test_labeled_gauge", &l0, -15);
        assert_eq!(dyn_gauge_value("obs_test_labeled_gauge", &l0), -5);
        // Untouched series read as zero.
        assert_eq!(
            dyn_gauge_value("obs_test_labeled_gauge", &[("design", "none")]),
            0
        );
    }

    #[test]
    fn gauge_key_collisions_keep_the_first_kind() {
        let l = [("site", "x")];
        counter_add("obs_test_kind_clash_total", &l, 3);
        // A gauge write to a counter-owned key must not clobber it.
        gauge_set("obs_test_kind_clash_total", &l, 99);
        gauge_add("obs_test_kind_clash_total", &l, 1);
        assert_eq!(dyn_counter_value("obs_test_kind_clash_total", &l), 3);
        assert_eq!(dyn_gauge_value("obs_test_kind_clash_total", &l), 0);
    }
}

//! Prometheus-style text exposition of every touched metric.

use std::fmt::Write;

use crate::metrics::{dynamic_snapshot, registry_snapshot, DynMetric, MetricRef};

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(s, "{k}=\"{escaped}\"");
    }
    s.push('}');
    s
}

fn label_block_with(labels: &[(String, String)], extra_k: &str, extra_v: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((extra_k.to_string(), extra_v.to_string()));
    label_block(&all)
}

/// Renders every metric touched so far as Prometheus-style text:
/// `# HELP` / `# TYPE` headers followed by sample lines, sorted by
/// metric name so the output is stable across runs.
pub fn render() -> String {
    let mut out = String::new();

    let mut statics = registry_snapshot();
    statics.sort_by_key(|m| m.name());
    for m in &statics {
        let _ = writeln!(out, "# HELP {} {}", m.name(), m.help());
        match m {
            MetricRef::Counter(c) => {
                let _ = writeln!(out, "# TYPE {} counter", c.name());
                let _ = writeln!(out, "{} {}", c.name(), c.get());
            }
            MetricRef::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {} gauge", g.name());
                let _ = writeln!(out, "{} {}", g.name(), g.get());
            }
            MetricRef::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {} histogram", h.name());
                let mut cum = 0u64;
                for (i, b) in h.bounds().iter().enumerate() {
                    cum += h.bucket_count(i);
                    let _ = writeln!(out, "{}_bucket{{le=\"{b}\"}} {cum}", h.name());
                }
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name(), h.count());
                let _ = writeln!(out, "{}_sum {}", h.name(), h.sum());
                let _ = writeln!(out, "{}_count {}", h.name(), h.count());
            }
        }
    }

    // Dynamic labeled families: the BTreeMap iterates sorted by
    // (name, labels); emit one TYPE header per name group.
    let dynamic = dynamic_snapshot();
    let mut last_name: Option<String> = None;
    for ((name, labels), metric) in &dynamic {
        let new_group = last_name.as_deref() != Some(name.as_str());
        match metric {
            DynMetric::Counter(v) => {
                if new_group {
                    let _ = writeln!(out, "# TYPE {name} counter");
                }
                let _ = writeln!(out, "{name}{} {v}", label_block(labels));
            }
            DynMetric::Gauge(v) => {
                if new_group {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                }
                let _ = writeln!(out, "{name}{} {v}", label_block(labels));
            }
            DynMetric::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                if new_group {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                }
                let mut cum = 0u64;
                for (i, b) in bounds.iter().enumerate() {
                    cum += buckets[i];
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        label_block_with(labels, "le", &b.to_string())
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {count}",
                    label_block_with(labels, "le", "+Inf")
                );
                let _ = writeln!(out, "{name}_sum{} {sum}", label_block(labels));
                let _ = writeln!(out, "{name}_count{} {count}", label_block(labels));
            }
        }
        last_name = Some(name.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter_add, gauge_set, observe, Counter, Histogram};

    static R_COUNTER: Counter = Counter::new("obs_render_counter_total", "render test");
    static R_HIST: Histogram = Histogram::new("obs_render_hist", "render hist", &[5, 10]);

    #[test]
    fn exposition_contains_touched_metrics() {
        R_COUNTER.add(3);
        R_HIST.observe(4);
        R_HIST.observe(7);
        R_HIST.observe(99);
        counter_add("obs_render_labeled_total", &[("tier", "t16")], 2);
        gauge_set("obs_render_labeled_gauge", &[("design", "noc4x4")], -12);
        observe("obs_render_labeled_hist", &[("layer", "M3")], &[1, 8], 6);

        let text = render();
        assert!(text.contains("# TYPE obs_render_counter_total counter"));
        assert!(
            text.contains("obs_render_counter_total 3")
                || text.contains("obs_render_counter_total ")
        );
        assert!(text.contains("# TYPE obs_render_hist histogram"));
        assert!(text.contains("obs_render_hist_bucket{le=\"5\"} 1"));
        assert!(text.contains("obs_render_hist_bucket{le=\"10\"} 2"));
        assert!(text.contains("obs_render_hist_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("obs_render_hist_count 3"));
        assert!(text.contains("obs_render_labeled_total{tier=\"t16\"} 2"));
        assert!(text.contains("# TYPE obs_render_labeled_gauge gauge"));
        assert!(text.contains("obs_render_labeled_gauge{design=\"noc4x4\"} -12"));
        assert!(text.contains("obs_render_labeled_hist_bucket{layer=\"M3\",le=\"8\"} 1"));
        assert!(text.contains("obs_render_labeled_hist_count{layer=\"M3\"} 1"));
    }

    #[test]
    fn exposition_is_sorted_and_parsable() {
        R_COUNTER.inc();
        let text = render();
        let mut names: Vec<&str> = Vec::new();
        for line in text.lines() {
            assert!(!line.is_empty());
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                names.push(parts.next().unwrap());
                let ty = parts.next().unwrap();
                assert!(matches!(ty, "counter" | "gauge" | "histogram"));
            } else if !line.starts_with('#') {
                // Sample line: name[{labels}] value
                let (series, value) = line.rsplit_once(' ').unwrap();
                assert!(!series.is_empty());
                assert!(
                    value.parse::<i64>().is_ok() || value.parse::<f64>().is_ok(),
                    "unparsable value in {line:?}"
                );
            }
        }
    }
}

//! Trace sinks: where emitted JSONL records go.
//!
//! Exactly one sink is installed at a time. The emission hot-path gate
//! is a single relaxed atomic ([`enabled`]); when it reads `false`,
//! spans are inert (no clock read, no allocation) — the pattern the
//! `gnnmls-faults` crate uses for its `ARMED` flag, benched by the
//! `obs-overhead` bench.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Environment variable naming the JSONL trace file.
pub const TRACE_ENV: &str = "GNNMLS_TRACE";

/// A destination for emitted JSONL records.
pub trait Sink: Send + Sync {
    /// Receives one complete JSON object (no trailing newline).
    fn emit(&self, line: &str);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

/// Whether a sink is installed. One relaxed load; callers use this to
/// skip building records entirely.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-wide trace destination and enables
/// emission. Replaces any previous sink.
pub fn install(sink: Arc<dyn Sink>) {
    *SINK.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables emission and drops the installed sink.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *SINK.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

pub(crate) fn emit_line(line: &str) {
    let sink = SINK
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .cloned();
    if let Some(s) = sink {
        s.emit(line);
    }
}

/// Reads [`TRACE_ENV`] and, when set and non-empty, installs a
/// [`JsonlSink`] appending to that path.
///
/// Returns `Ok(true)` when a sink was installed, `Ok(false)` when the
/// variable is unset or empty.
///
/// # Errors
///
/// Propagates the I/O error when the trace file cannot be opened.
pub fn init_from_env() -> std::io::Result<bool> {
    match std::env::var(TRACE_ENV) {
        Ok(path) if !path.trim().is_empty() => {
            install(Arc::new(JsonlSink::append(path.trim())?));
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Appends one JSON object per line to a file.
pub struct JsonlSink {
    file: Mutex<File>,
}

impl JsonlSink {
    /// Opens (creating if needed) `path` for append.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open error.
    pub fn append<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, line: &str) {
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        // Trace records are best-effort; a full disk must not take the
        // flow down with it.
        let _ = writeln!(f, "{line}");
    }
}

/// Captures records in memory; the sink tests and the determinism
/// suite read them back.
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every record captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Drains and returns the captured records.
    pub fn take(&self) -> Vec<String> {
        std::mem::take(&mut *self.lines.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Sink for MemorySink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line.to_string());
    }
}

static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serialized install for tests: holds a process-global lock while the
/// sink is active so concurrently running tests cannot interleave their
/// records, and uninstalls on drop.
pub struct SinkGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Installs `sink` under the test serialization lock; dropping the
/// guard uninstalls it. Use in tests instead of [`install`].
pub fn install_guarded(sink: Arc<dyn Sink>) -> SinkGuard {
    let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    install(sink);
    SinkGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_uninstall_toggles_enabled() {
        let mem = Arc::new(MemorySink::new());
        let guard = install_guarded(mem.clone());
        assert!(enabled());
        emit_line("{\"t\":1}");
        drop(guard);
        assert!(!enabled());
        emit_line("{\"t\":2}");
        assert_eq!(mem.lines(), vec!["{\"t\":1}".to_string()]);
    }

    #[test]
    fn jsonl_sink_appends_lines() {
        let path =
            std::env::temp_dir().join(format!("gnnmls-obs-sink-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let sink = JsonlSink::append(&path).unwrap();
            sink.emit("{\"a\":1}");
            sink.emit("{\"b\":2}");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}

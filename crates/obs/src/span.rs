//! Span-scoped timers with parent/child nesting, plus point events.
//!
//! A [`Span`] is an RAII guard: creation notes the parent from a
//! thread-local stack, drop emits one JSONL record with the elapsed
//! wall time. When no sink is installed the guard is inert — no clock
//! read, no allocation, no thread-local write — so instrumented code
//! pays one relaxed atomic load per span.
//!
//! Wall-clock time appears **only** in the emitted record (`ts_ms`,
//! `elapsed_us`); nothing time-derived is ever returned to the caller,
//! keeping instrumented flows bit-identical with tracing on or off.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json;
use crate::metrics::counter_add;
use crate::sink::{emit_line, enabled};

/// A typed field value attached to a span or event.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite renders as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

fn push_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(n) => json::push_f64(out, *n),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => json::push_str(out, s),
    }
}

thread_local! {
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct SpanInner {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An in-flight span; drop emits the record. Inert when tracing is
/// disabled.
pub struct Span {
    inner: Option<SpanInner>,
}

/// Opens a span named `name`. The current thread's innermost open span
/// becomes its parent; the span closes (and emits) on drop.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(Some(id)));
    Span {
        inner: Some(SpanInner {
            name,
            id,
            parent,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Whether this span will emit a record (i.e. tracing was enabled
    /// when it was opened).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// Attaches a field; no-op when inert.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
    }

    /// [`field`](Self::field) for unsigned integers.
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        self.field(key, value);
    }

    /// [`field`](Self::field) for floats.
    pub fn field_f64(&mut self, key: &'static str, value: f64) {
        self.field(key, value);
    }

    /// [`field`](Self::field) for booleans (degradation flags).
    pub fn field_bool(&mut self, key: &'static str, value: bool) {
        self.field(key, value);
    }

    /// [`field`](Self::field) for strings.
    pub fn field_str(&mut self, key: &'static str, value: &str) {
        self.field(key, value);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        CURRENT.with(|c| c.set(inner.parent));
        let elapsed_us = inner.start.elapsed().as_micros() as u64;
        let mut out = String::with_capacity(128);
        out.push_str("{\"type\":\"span\",\"name\":");
        json::push_str(&mut out, inner.name);
        out.push_str(&format!(",\"id\":{}", inner.id));
        match inner.parent {
            Some(p) => out.push_str(&format!(",\"parent\":{p}")),
            None => out.push_str(",\"parent\":null"),
        }
        out.push_str(&format!(
            ",\"ts_ms\":{},\"elapsed_us\":{}",
            now_ms(),
            elapsed_us
        ));
        push_fields(&mut out, &inner.fields);
        out.push('}');
        emit_line(&out);
    }
}

fn push_fields(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str(out, k);
        out.push(':');
        push_value(out, v);
    }
    out.push('}');
}

/// Emits a point event (no duration) under the current span, if
/// tracing is enabled.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !enabled() {
        return;
    }
    let parent = CURRENT.with(|c| c.get());
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"event\",\"name\":");
    json::push_str(&mut out, name);
    match parent {
        Some(p) => out.push_str(&format!(",\"parent\":{p}")),
        None => out.push_str(",\"parent\":null"),
    }
    out.push_str(&format!(",\"ts_ms\":{}", now_ms()));
    push_fields(&mut out, fields);
    out.push('}');
    emit_line(&out);
}

/// A library diagnostic: replaces `eprintln!` in library crates.
///
/// Always counts into the labeled counter
/// `gnnmls_warnings_total{module=...}` (visible in the Metrics
/// exposition even without a trace sink) and, when tracing is enabled,
/// also emits a `warn` event carrying the message.
pub fn warn(module: &'static str, message: &str) {
    counter_add("gnnmls_warnings_total", &[("module", module)], 1);
    if enabled() {
        event(
            "warn",
            &[
                ("module", FieldValue::Str(module.to_string())),
                ("message", FieldValue::Str(message.to_string())),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{install_guarded, MemorySink};
    use std::sync::Arc;

    fn extract_u64(line: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    fn extract_name(line: &str) -> Option<String> {
        let pat = "\"name\":\"";
        let at = line.find(pat)? + pat.len();
        let rest = &line[at..];
        Some(rest[..rest.find('"')?].to_string())
    }

    #[test]
    fn disabled_spans_are_inert() {
        // Hold the sink serialization lock with no sink installed; a
        // span must report inactive and carry id 0.
        let _lock = crate::sink::test_lock();
        crate::sink::uninstall();
        let mut s = span("inert");
        assert!(!s.is_active());
        assert_eq!(s.id(), 0);
        s.field_u64("x", 1);
        drop(s);
    }

    #[test]
    fn nesting_parent_child_and_close_order() {
        let mem = Arc::new(MemorySink::new());
        let guard = install_guarded(mem.clone());

        let outer = span("outer");
        let outer_id = outer.id();
        {
            let mid = span("mid");
            let mid_id = mid.id();
            {
                let inner = span("inner");
                assert!(inner.id() > mid_id && mid_id > outer_id);
            }
            // A sibling opened after `inner` closed shares mid as parent.
            let _sib = span("sib");
        }
        drop(outer);
        drop(guard);

        let lines = mem.lines();
        let spans: Vec<(String, u64, Option<u64>)> = lines
            .iter()
            .filter(|l| l.contains("\"type\":\"span\""))
            .map(|l| {
                (
                    extract_name(l).unwrap(),
                    extract_u64(l, "id").unwrap(),
                    extract_u64(l, "parent"),
                )
            })
            .collect();
        let find = |n: &str| -> (u64, Option<u64>) {
            let (_, id, parent) = spans.iter().find(|(name, _, _)| name == n).unwrap();
            (*id, *parent)
        };
        let (outer_id, outer_parent) = find("outer");
        let (mid_id, mid_parent) = find("mid");
        let (_, inner_parent) = find("inner");
        let (_, sib_parent) = find("sib");
        assert_eq!(outer_parent, None);
        assert_eq!(mid_parent, Some(outer_id));
        assert_eq!(inner_parent, Some(mid_id));
        assert_eq!(sib_parent, Some(mid_id));
        // Children emit before their parents (close order).
        let order: Vec<&str> = spans.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(order, vec!["inner", "sib", "mid", "outer"]);
    }

    #[test]
    fn random_nesting_always_yields_consistent_parents() {
        // Pseudo-random span trees (seeded LCG, no external rand):
        // parents recorded in the trace must match the lexical stack.
        let mem = Arc::new(MemorySink::new());
        let guard = install_guarded(mem.clone());

        let mut state: u64 = 0x9e3779b97f4a7ce5;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        // Build a random tree of depth <= 6 with explicit expected
        // parent for every opened span.
        let mut expected: Vec<(u64, Option<u64>)> = Vec::new();
        fn grow(
            depth: usize,
            rng: &mut impl FnMut() -> u32,
            expected: &mut Vec<(u64, Option<u64>)>,
            parent: Option<u64>,
        ) {
            let kids = (rng)() % 3;
            for _ in 0..kids {
                let s = span("node");
                expected.push((s.id(), parent));
                if depth < 6 {
                    grow(depth + 1, &mut *rng, expected, Some(s.id()));
                }
            }
        }
        for _ in 0..8 {
            grow(0, &mut rng, &mut expected, None);
        }
        drop(guard);

        let lines = mem.lines();
        for (id, parent) in expected {
            let line = lines
                .iter()
                .find(|l| extract_u64(l, "id") == Some(id))
                .unwrap_or_else(|| panic!("span {id} missing from trace"));
            assert_eq!(extract_u64(line, "parent"), parent, "span {id}");
        }
    }

    #[test]
    fn events_and_fields_render_as_json() {
        let mem = Arc::new(MemorySink::new());
        let guard = install_guarded(mem.clone());
        let mut s = span("stage");
        s.field_u64("count", 7);
        s.field_bool("degraded", false);
        s.field_str("design", "maeri16");
        s.field_f64("ratio", 0.5);
        event("checkpoint", &[("slug", FieldValue::Str("x".into()))]);
        drop(s);
        drop(guard);
        let lines = mem.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[0].contains("\"slug\":\"x\""));
        assert!(lines[1].contains("\"count\":7"));
        assert!(lines[1].contains("\"degraded\":false"));
        assert!(lines[1].contains("\"design\":\"maeri16\""));
        assert!(lines[1].contains("\"ratio\":0.5"));
        assert!(lines[1].contains("\"elapsed_us\":"));
    }

    #[test]
    fn warn_counts_even_without_sink() {
        let before =
            crate::metrics::dyn_counter_value("gnnmls_warnings_total", &[("module", "obs-test")]);
        warn("obs-test", "something degraded");
        assert_eq!(
            crate::metrics::dyn_counter_value("gnnmls_warnings_total", &[("module", "obs-test")]),
            before + 1
        );
    }
}

//! Deterministic fork-join parallelism for the GNN-MLS workspace.
//!
//! The router's what-if oracle and rip-up rounds fan out over items
//! whose results must come back **in input order** so parallel runs are
//! bit-identical to serial ones. This crate provides exactly that: an
//! ordered parallel map built on `std::thread::scope` with an atomic
//! work index (no external dependencies — the build environment is
//! offline). Each result is written to its own pre-allocated slot, so
//! output order never depends on thread scheduling; only wall-clock
//! time does.
//!
//! `threads == 1` bypasses thread spawning entirely and runs the plain
//! serial loop, making the serial path exactly today's code.
//!
//! Resilience: every map has a [`try_par_map_with`]-style variant that
//! catches a panicking item and returns a typed [`ParError`] carrying
//! the failing index, and a [`recovering_par_map_with`] variant the
//! flow's hot paths use — it retries the whole map serially once after
//! a worker panic (deterministic, since results are ordered) and
//! counts the recovery in a process-global tally the flow report reads.

// Diagnostics flow through gnnmls-obs, never straight to the
// process streams.
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(test, allow(clippy::print_stdout, clippy::print_stderr))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, PoisonError};

use gnnmls_faults::{fire, FaultSite};

/// Number of logical cores (the `threads = 0` default).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `GNNMLS_THREADS` is set but not a positive integer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadsEnvError {
    /// The raw value of the variable.
    pub value: String,
}

impl std::fmt::Display for ThreadsEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed GNNMLS_THREADS={:?}: want a positive integer",
            self.value
        )
    }
}

impl std::error::Error for ThreadsEnvError {}

/// Reads the `GNNMLS_THREADS` env override with a typed error.
///
/// Returns `Ok(None)` when the variable is unset or empty, `Ok(Some(n))`
/// for a positive integer, and [`ThreadsEnvError`] for anything else.
/// Entry points (the `gnnmls` CLI, the serve daemon) call this at
/// startup so a typo'd value is rejected up front instead of silently
/// running on all cores.
pub fn env_threads() -> Result<Option<usize>, ThreadsEnvError> {
    match std::env::var("GNNMLS_THREADS") {
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return Ok(None);
            }
            match trimmed.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(ThreadsEnvError { value: v }),
            }
        }
        Err(_) => Ok(None),
    }
}

/// Resolves a `threads` knob value: `0` means "all cores".
///
/// When the knob is `0`, the `GNNMLS_THREADS` environment variable (if
/// set to a positive integer) overrides the core count. CI uses this to
/// run the whole suite in forced-serial and default-parallel modes
/// without touching any config; results are bit-identical either way.
/// Deep in the library a malformed value falls back to all cores with a
/// one-line stderr warning (once per process); entry points reject it
/// up front via [`env_threads`].
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        match env_threads() {
            Ok(Some(n)) => n,
            Ok(None) => available_parallelism(),
            Err(e) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    gnnmls_obs::warn("gnnmls-par", &format!("{e}; using all cores"));
                });
                available_parallelism()
            }
        }
    } else {
        threads
    }
}

/// A worker panicked while mapping one item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParError {
    /// Input index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked at item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for ParError {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Process-global count of worker panics recovered by the
/// `recovering_*` maps. The flow snapshots this before and after a run
/// to report recovered degradations; injected faults are serialized by
/// the `gnnmls-faults` guard, so the delta is deterministic.
static RECOVERED: AtomicU32 = AtomicU32::new(0);

/// Same tally, exposed in the metrics exposition.
static RECOVERED_PANICS_TOTAL: gnnmls_obs::Counter = gnnmls_obs::Counter::new(
    "gnnmls_par_recovered_panics_total",
    "worker panics recovered by serial retry",
);

/// Total worker panics recovered by `recovering_*` maps so far.
pub fn recovered_panics() -> u32 {
    RECOVERED.load(Ordering::SeqCst)
}

/// Ordered parallel map over `0..n`: returns `vec![f(0), f(1), ..]`.
///
/// Results are identical to the serial loop for any thread count; only
/// the evaluation schedule differs. Worker panics propagate, with the
/// failing item index in the panic message.
pub fn par_map_n<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(threads, n, || (), |(), i| f(i))
}

/// Ordered parallel map over a slice.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_n(threads, items.len(), |i| f(&items[i]))
}

/// Ordered parallel map with per-worker scratch state.
///
/// `make_scratch` runs once per worker thread (once total when serial);
/// `f` may freely mutate the scratch between items. This is how the
/// router shares one A* scratch buffer per thread instead of
/// reallocating per net.
///
/// # Panics
///
/// Re-raises a worker panic with the failing item index in the message
/// (`worker panicked at item <i>: <payload>`).
pub fn par_map_with<S, R, FS, F>(threads: usize, n: usize, make_scratch: FS, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    match try_par_map_with(threads, n, make_scratch, f) {
        Ok(v) => v,
        Err(e) => panic!("gnnmls-par: {e}"),
    }
}

/// [`par_map_n`] returning a typed error instead of panicking.
pub fn try_par_map_n<R, F>(threads: usize, n: usize, f: F) -> Result<Vec<R>, ParError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    try_par_map_with(threads, n, || (), |(), i| f(i))
}

/// [`par_map`] returning a typed error instead of panicking.
pub fn try_par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map_n(threads, items.len(), |i| f(&items[i]))
}

/// [`par_map_with`] returning a typed error instead of panicking.
///
/// A panicking item aborts the map: in-flight items on other workers
/// finish, queued items are skipped, and the error reports the lowest
/// failing index. The `gnnmls-faults` `WorkerPanic` seam fires here
/// (serial and parallel paths alike), so the injected fault class is
/// exercised in both CI matrix legs.
pub fn try_par_map_with<S, R, FS, F>(
    threads: usize,
    n: usize,
    make_scratch: FS,
    f: F,
) -> Result<Vec<R>, ParError>
where
    S: Send,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let run_item = |scratch: &mut S, i: usize| -> Result<R, ParError> {
        catch_unwind(AssertUnwindSafe(|| {
            if fire(FaultSite::WorkerPanic) {
                panic!("injected worker panic (gnnmls-faults)");
            }
            f(scratch, i)
        }))
        .map_err(|payload| ParError {
            index: i,
            message: payload_message(payload.as_ref()),
        })
    };

    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        let mut scratch = make_scratch();
        return (0..n).map(|i| run_item(&mut scratch, i)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let slots = SlotWriter(results.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let first_error: Mutex<Option<ParError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let next = &next;
            let run_item = &run_item;
            let make_scratch = &make_scratch;
            let first_error = &first_error;
            scope.spawn(move || {
                let mut scratch = make_scratch();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match run_item(&mut scratch, i) {
                        Ok(r) => {
                            // SAFETY: `fetch_add` hands each index to
                            // exactly one worker, so no two threads ever
                            // write the same slot, and the scope joins all
                            // workers before `results` is read again.
                            unsafe { slots.0.add(i).write(Some(r)) };
                        }
                        Err(e) => {
                            let mut slot =
                                first_error.lock().unwrap_or_else(PoisonError::into_inner);
                            match slot.as_ref() {
                                Some(prev) if prev.index <= e.index => {}
                                _ => *slot = Some(e),
                            }
                            // Park the queue so other workers drain fast.
                            next.store(n, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = first_error
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(e);
    }
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.ok_or_else(|| ParError {
                index: i,
                message: "item skipped after a worker panic".to_string(),
            })
        })
        .collect()
}

/// [`par_map_with`] that survives a worker panic: the map is retried
/// once on the serial path (bit-identical results, since maps are
/// ordered), the recovery is counted in [`recovered_panics`], and only
/// a panic that also reproduces serially propagates as an error.
pub fn recovering_par_map_with<S, R, FS, F>(
    threads: usize,
    n: usize,
    make_scratch: FS,
    f: F,
) -> Result<Vec<R>, ParError>
where
    S: Send,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    match try_par_map_with(threads, n, &make_scratch, &f) {
        Ok(v) => Ok(v),
        Err(e) => {
            gnnmls_obs::warn("gnnmls-par", &format!("{e}; retrying serially"));
            RECOVERED_PANICS_TOTAL.inc();
            RECOVERED.fetch_add(1, Ordering::SeqCst);
            try_par_map_with(1, n, &make_scratch, &f)
        }
    }
}

/// [`recovering_par_map_with`] over a slice without scratch.
pub fn recovering_par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    recovering_par_map_with(threads, items.len(), || (), |(), i| f(&items[i]))
}

/// Bounded multi-producer/multi-consumer job queue with explicit
/// backpressure, built on `Mutex` + `Condvar` (no external deps).
///
/// Producers use [`BoundedQueue::try_push`](queue::BoundedQueue::try_push), which **never blocks**: a
/// full queue returns [`PushError::Full`](queue::PushError::Full) so the caller can shed load
/// (the serve daemon turns this into a typed `Busy` response).
/// Consumers use [`BoundedQueue::pop`](queue::BoundedQueue::pop), which blocks until a job
/// arrives or the queue is closed and drained. [`BoundedQueue::close`](queue::BoundedQueue::close)
/// wakes all consumers; pending jobs are still handed out so a close is
/// a drain, not an abort.
///
/// Deterministic pseudo-randomness shared across the workspace.
///
/// Several subsystems (serve quarantine cooldowns, client retry
/// jitter, the cluster ring and load generator) need cheap, seedable,
/// reproducible randomness. They all use the same splitmix64 mixer so
/// a single `u64` seed reproduces a schedule exactly; this module is
/// the one copy of it.
pub mod rng {
    /// One splitmix64 mixing step: a high-quality 64-bit finalizer.
    /// Deterministic, stateless, and cheap — feed it any counter or
    /// hash to get a well-spread value.
    #[inline]
    pub fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A tiny seeded stream built on [`splitmix64`]: each `next()`
    /// advances the state by the golden-gamma constant and mixes it.
    /// Two streams with the same seed produce the same sequence.
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Starts a stream at the given seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64-bit value in the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..bound` (`0` when `bound == 0`).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

/// The `gnnmls-faults` `QueueOverflow` seam fires inside `try_push`, so
/// tests can force the full path deterministically regardless of
/// timing.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Condvar, Mutex, PoisonError};

    use gnnmls_faults::{fire, FaultSite};

    /// Why a `try_push` was refused.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum PushError {
        /// The queue holds `capacity` jobs; shed load.
        Full,
        /// The queue was closed; no new jobs are accepted.
        Closed,
    }

    impl std::fmt::Display for PushError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                PushError::Full => f.write_str("queue full"),
                PushError::Closed => f.write_str("queue closed"),
            }
        }
    }

    impl std::error::Error for PushError {}

    struct Inner<T> {
        jobs: VecDeque<T>,
        closed: bool,
    }

    /// The bounded MPMC queue. Share via `Arc`.
    pub struct BoundedQueue<T> {
        capacity: usize,
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    impl<T> BoundedQueue<T> {
        /// A queue holding at most `capacity` jobs (min 1).
        pub fn new(capacity: usize) -> Self {
            Self {
                capacity: capacity.max(1),
                inner: Mutex::new(Inner {
                    jobs: VecDeque::new(),
                    closed: false,
                }),
                ready: Condvar::new(),
            }
        }

        /// Maximum number of queued jobs.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Current queue depth (racy; for stats only).
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .jobs
                .len()
        }

        /// Whether the queue is currently empty (racy; for stats only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Enqueues a job without blocking; a full or closed queue
        /// refuses with a typed error and returns the job to the caller.
        pub fn try_push(&self, job: T) -> Result<(), (T, PushError)> {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.closed {
                return Err((job, PushError::Closed));
            }
            if inner.jobs.len() >= self.capacity || fire(FaultSite::QueueOverflow) {
                return Err((job, PushError::Full));
            }
            inner.jobs.push_back(job);
            drop(inner);
            self.ready.notify_one();
            Ok(())
        }

        /// Enqueues a batch of jobs atomically: either every job is
        /// admitted or none are, so a micro-batching window flushed as
        /// one unit cannot be half-shed. Never blocks; refusals return
        /// the whole batch. An empty batch is a no-op `Ok`.
        pub fn try_push_all(&self, jobs: Vec<T>) -> Result<(), (Vec<T>, PushError)> {
            if jobs.is_empty() {
                return Ok(());
            }
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.closed {
                return Err((jobs, PushError::Closed));
            }
            if inner.jobs.len() + jobs.len() > self.capacity || fire(FaultSite::QueueOverflow) {
                return Err((jobs, PushError::Full));
            }
            inner.jobs.extend(jobs);
            drop(inner);
            self.ready.notify_all();
            Ok(())
        }

        /// Re-enqueues a job at the *front* of the queue, bypassing the
        /// capacity bound. For supervisors returning a job recovered
        /// from a dead worker: the job was already admitted once, so it
        /// must not be shed a second time. Fails only when the queue is
        /// closed (the job belongs to the drain at that point).
        pub fn requeue(&self, job: T) -> Result<(), (T, PushError)> {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.closed {
                return Err((job, PushError::Closed));
            }
            inner.jobs.push_front(job);
            drop(inner);
            self.ready.notify_one();
            Ok(())
        }

        /// Blocks until a job is available or the queue is closed and
        /// drained (`None`).
        pub fn pop(&self) -> Option<T> {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = inner.jobs.pop_front() {
                    return Some(job);
                }
                if inner.closed {
                    return None;
                }
                inner = self
                    .ready
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Drains every currently queued job without blocking. Used by
        /// batching consumers to coalesce queued work into one pass.
        pub fn drain(&self) -> Vec<T> {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.jobs.drain(..).collect()
        }

        /// Closes the queue: new pushes fail, consumers drain what is
        /// left and then see `None`.
        pub fn close(&self) {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.closed = true;
            drop(inner);
            self.ready.notify_all();
        }

        /// Whether [`close`](Self::close) was called.
        pub fn is_closed(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .closed
        }
    }
}

struct SlotWriter<R>(*mut Option<R>);

// SAFETY: workers write disjoint slots (see try_par_map_with) and the
// pointee outlives the scope that shares the pointer.
unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map_n(threads, 257, |i| i * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn slice_map_preserves_order() {
        let items: Vec<String> = (0..64).map(|i| format!("n{i}")).collect();
        let got = par_map(4, &items, |s| s.len());
        let expect: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scratch_is_per_worker() {
        let n = 100;
        // Parallel: per-worker counters each start at zero and never
        // exceed the number of items.
        let parallel = par_map_with(
            4,
            n,
            || 0usize,
            |count, _i| {
                *count += 1;
                *count
            },
        );
        assert!(parallel.iter().all(|&c| c >= 1 && c <= n));
        // Serial path: one scratch sees every item in order.
        let serial = par_map_with(
            1,
            n,
            || 0usize,
            |count, _i| {
                *count += 1;
                *count
            },
        );
        assert_eq!(serial, (1..=n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_n(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_n(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let got = par_map_n(0, 50, |i| i);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panicked at item 7")]
    fn worker_panics_propagate_with_index() {
        par_map_n(4, 16, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn try_map_reports_failing_index() {
        for threads in [1, 4] {
            let err = try_par_map_n(threads, 16, |i| {
                if i == 5 {
                    panic!("kaput");
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.index, 5, "threads={threads}");
            assert_eq!(err.message, "kaput");
        }
    }

    #[test]
    fn try_map_succeeds_without_panics() {
        let got = try_par_map_n(4, 33, |i| i * 2).unwrap();
        assert_eq!(got, (0..33).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn injected_worker_panic_recovers_serially() {
        let plan = gnnmls_faults::FaultPlan::single(gnnmls_faults::FaultSite::WorkerPanic, 1);
        let guard = gnnmls_faults::install(&plan);
        let before = recovered_panics();
        let got = recovering_par_map_with(4, 20, || (), |(), i| i + 1).unwrap();
        assert_eq!(got, (1..=20).collect::<Vec<_>>());
        assert_eq!(recovered_panics(), before + 1);
        drop(guard);
    }

    #[test]
    fn bounded_queue_backpressure_and_drain() {
        let q = queue::BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err((job, queue::PushError::Full)) => assert_eq!(job, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.drain(), vec![2, 3]);
        q.close();
        match q.try_push(4) {
            Err((4, queue::PushError::Closed)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_all_is_all_or_none() {
        let q = queue::BoundedQueue::new(4);
        assert!(q.try_push_all(vec![1, 2]).is_ok());
        // Three more would exceed the capacity: the whole batch bounces.
        match q.try_push_all(vec![3, 4, 5]) {
            Err((batch, queue::PushError::Full)) => assert_eq!(batch, vec![3, 4, 5]),
            other => panic!("expected Full with the batch back, got {other:?}"),
        }
        assert_eq!(q.len(), 2, "a refused batch admits nothing");
        assert!(q.try_push_all(vec![3, 4]).is_ok());
        assert_eq!(q.drain(), vec![1, 2, 3, 4]);
        assert!(q.try_push_all(Vec::new()).is_ok(), "empty batch is a no-op");
        q.close();
        match q.try_push_all(vec![9]) {
            Err((batch, queue::PushError::Closed)) => assert_eq!(batch, vec![9]),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn requeue_bypasses_capacity_and_jumps_the_line() {
        let q = queue::BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        // Full for new work, but a recovered job still goes back —
        // at the front, so it is re-handled before later admissions.
        assert!(matches!(q.try_push(3), Err((3, queue::PushError::Full))));
        assert!(q.requeue(9).is_ok());
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(1));
        q.close();
        match q.requeue(10) {
            Err((10, queue::PushError::Closed)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_threaded_handoff() {
        use std::sync::Arc;
        let q = Arc::new(queue::BoundedQueue::new(8));
        let n = 200usize;
        let producers = 4;
        let consumers = 3;
        let mut seen = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..consumers {
                let q = Arc::clone(&q);
                handles.push((
                    c,
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    }),
                ));
            }
            scope.spawn(|| {
                std::thread::scope(|inner| {
                    for p in 0..producers {
                        let q = &q;
                        inner.spawn(move || {
                            for i in 0..n / producers {
                                let v = p * (n / producers) + i;
                                loop {
                                    match q.try_push(v) {
                                        Ok(()) => break,
                                        Err((_, queue::PushError::Full)) => {
                                            std::thread::yield_now()
                                        }
                                        Err((_, queue::PushError::Closed)) => {
                                            panic!("closed early")
                                        }
                                    }
                                }
                            }
                        });
                    }
                });
                q.close();
            });
            for (_, h) in handles {
                seen.extend(h.join().expect("consumer"));
            }
        });
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..n).collect::<Vec<_>>(),
            "no lost or duplicated jobs"
        );
    }

    #[test]
    fn queue_overflow_fault_forces_full() {
        let plan = gnnmls_faults::FaultPlan::single(gnnmls_faults::FaultSite::QueueOverflow, 1);
        let guard = gnnmls_faults::install(&plan);
        let q = queue::BoundedQueue::new(16);
        match q.try_push(7) {
            Err((7, queue::PushError::Full)) => {}
            other => panic!("expected injected Full, got {other:?}"),
        }
        assert!(q.try_push(7).is_ok(), "one shot only");
        drop(guard);
    }

    #[test]
    fn env_threads_is_typed() {
        // Do not mutate the process env here (tests run threaded); just
        // check the unset/ok contract holds for whatever CI exports.
        match env_threads() {
            Ok(None) | Ok(Some(_)) => {}
            Err(e) => panic!("CI exported a malformed GNNMLS_THREADS: {e}"),
        }
        let err = ThreadsEnvError {
            value: "abc".into(),
        };
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn persistent_panic_surfaces_as_typed_error() {
        let err = recovering_par_map_with(
            4,
            8,
            || (),
            |(), i| {
                if i == 3 {
                    panic!("always fails");
                }
                i
            },
        )
        .unwrap_err();
        assert_eq!(err.index, 3);
        assert_eq!(err.message, "always fails");
    }
}

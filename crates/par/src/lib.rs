//! Deterministic fork-join parallelism for the GNN-MLS workspace.
//!
//! The router's what-if oracle and rip-up rounds fan out over items
//! whose results must come back **in input order** so parallel runs are
//! bit-identical to serial ones. This crate provides exactly that: an
//! ordered parallel map built on `std::thread::scope` with an atomic
//! work index (no external dependencies — the build environment is
//! offline). Each result is written to its own pre-allocated slot, so
//! output order never depends on thread scheduling; only wall-clock
//! time does.
//!
//! `threads == 1` bypasses thread spawning entirely and runs the plain
//! serial loop, making the serial path exactly today's code.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of logical cores (the `threads = 0` default).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a `threads` knob value: `0` means "all cores".
///
/// When the knob is `0`, the `GNNMLS_THREADS` environment variable (if
/// set to a positive integer) overrides the core count. CI uses this to
/// run the whole suite in forced-serial and default-parallel modes
/// without touching any config; results are bit-identical either way.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::env::var("GNNMLS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(available_parallelism)
    } else {
        threads
    }
}

/// Ordered parallel map over `0..n`: returns `vec![f(0), f(1), ..]`.
///
/// Results are identical to the serial loop for any thread count; only
/// the evaluation schedule differs. Worker panics propagate.
pub fn par_map_n<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(threads, n, || (), |(), i| f(i))
}

/// Ordered parallel map over a slice.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_n(threads, items.len(), |i| f(&items[i]))
}

/// Ordered parallel map with per-worker scratch state.
///
/// `make_scratch` runs once per worker thread (once total when serial);
/// `f` may freely mutate the scratch between items. This is how the
/// router shares one A* scratch buffer per thread instead of
/// reallocating per net.
pub fn par_map_with<S, R, FS, F>(threads: usize, n: usize, make_scratch: FS, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        let mut scratch = make_scratch();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let slots = SlotWriter(results.as_mut_ptr());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let next = &next;
            let f = &f;
            let make_scratch = &make_scratch;
            scope.spawn(move || {
                let mut scratch = make_scratch();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&mut scratch, i);
                    // SAFETY: `fetch_add` hands each index to exactly one
                    // worker, so no two threads ever write the same slot,
                    // and the scope joins all workers before `results` is
                    // read again.
                    unsafe { slots.0.add(i).write(Some(r)) };
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index claimed by exactly one worker"))
        .collect()
}

struct SlotWriter<R>(*mut Option<R>);

// SAFETY: workers write disjoint slots (see par_map_with) and the
// pointee outlives the scope that shares the pointer.
unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map_n(threads, 257, |i| i * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn slice_map_preserves_order() {
        let items: Vec<String> = (0..64).map(|i| format!("n{i}")).collect();
        let got = par_map(4, &items, |s| s.len());
        let expect: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scratch_is_per_worker() {
        let n = 100;
        // Parallel: per-worker counters each start at zero and never
        // exceed the number of items.
        let parallel = par_map_with(
            4,
            n,
            || 0usize,
            |count, _i| {
                *count += 1;
                *count
            },
        );
        assert!(parallel.iter().all(|&c| c >= 1 && c <= n));
        // Serial path: one scratch sees every item in order.
        let serial = par_map_with(
            1,
            n,
            || 0usize,
            |count, _i| {
                *count += 1;
                *count
            },
        );
        assert_eq!(serial, (1..=n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_n(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_n(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let got = par_map_n(0, 50, |i| i);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        par_map_n(4, 16, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}

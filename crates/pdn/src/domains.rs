//! Multi-power-domain view and level-shifter insertion.
//!
//! In the heterogeneous stack the logic die runs at 0.81 V and the memory
//! die at 0.9 V (Figure 7); every 3D *signal* crossing between the
//! domains needs a level shifter. The insertion ECO splices a
//! `LVLSHIFT` cell into each 3D net at the driver-side bond point,
//! moving the other-die sinks behind it; homogeneous designs need none.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{CellClass, CellLibrary, NetId, Netlist, NetlistError, Tier};
use gnnmls_phys::place::Point;
use gnnmls_phys::Placement;

/// The stack's power domains.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerDomains {
    /// Supply of the logic die, V.
    pub logic_vdd: f64,
    /// Supply of the memory die, V.
    pub memory_vdd: f64,
}

impl PowerDomains {
    /// Domains from a technology config.
    pub fn from_tech(tech: &TechConfig) -> Self {
        Self {
            logic_vdd: tech.logic_node.vdd,
            memory_vdd: tech.memory_node.vdd,
        }
    }

    /// Whether inter-die signals need level shifting.
    pub fn needs_level_shifters(&self) -> bool {
        (self.logic_vdd - self.memory_vdd).abs() > 1e-9
    }

    /// The lowest supply — the paper's 10 % IR budget reference.
    pub fn min_vdd(&self) -> f64 {
        self.logic_vdd.min(self.memory_vdd)
    }
}

/// Result of level-shifter insertion.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LevelShifterReport {
    /// Level shifters inserted.
    pub count: usize,
    /// Nets that were split (must be re-routed with their children).
    pub modified_nets: Vec<NetId>,
    /// New nets created (shifter → far-die sinks).
    pub new_nets: Vec<NetId>,
    /// Total level-shifter power, mW (leakage + a fixed dynamic share).
    pub power_mw: f64,
}

/// Per-shifter power, mW (dominated by the dual-rail output stage; chosen
/// so designs with a few hundred 3D signals land in the paper's tens-of-mW
/// `L.S Pwr` range).
const LS_POWER_MW: f64 = 0.09;

/// Splices a level shifter into every 3D signal net of a heterogeneous
/// design. No-op for homogeneous stacks.
///
/// Each 3D net's far-die sinks move behind a `LVLSHIFT` placed at the
/// net's driver-side centroid (the bond-pad neighborhood).
///
/// # Errors
///
/// Propagates [`NetlistError`] on wiring failures (running the ECO twice
/// would collide on names).
pub fn insert_level_shifters(
    netlist: &mut Netlist,
    placement: &mut Placement,
    tech: &TechConfig,
) -> Result<LevelShifterReport, NetlistError> {
    let mut rep = LevelShifterReport::default();
    if !PowerDomains::from_tech(tech).needs_level_shifters() {
        return Ok(rep);
    }
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let memory_lib = CellLibrary::for_node(&tech.memory_node);

    let nets: Vec<NetId> = netlist
        .net_ids()
        .filter(|&n| netlist.net_tier(n).is_none())
        .collect();
    for (k, net) in nets.into_iter().enumerate() {
        let driver_tier = netlist.cell(netlist.driver_cell(net)).tier;
        let far: Vec<_> = netlist
            .sinks(net)
            .iter()
            .copied()
            .filter(|&p| netlist.cell(netlist.pin(p).cell).tier != driver_tier)
            .collect();
        if far.is_empty() {
            // Driver on the far die relative to every sink cannot happen
            // here: net_tier() == None guarantees mixed pins, so if no far
            // *sink* exists the driver itself is the foreign pin — the
            // shifter then sits at the driver on its own die.
            continue;
        }
        // Receiver-side shifter: place on the sink die at the driver's
        // footprint (the bond pad is vertically aligned).
        let sink_tier = driver_tier.other();
        let lib = match sink_tier {
            Tier::Logic => &logic_lib,
            Tier::Memory => &memory_lib,
        };
        let loc = placement.loc(netlist.driver_cell(net));
        let ls = netlist.add_cell(format!("ls_{k}"), lib.expect("LVLSHIFT"), sink_tier)?;
        let idx = placement.push_location(Point::new(loc.x, loc.y));
        debug_assert_eq!(idx, ls.index());
        let name = netlist.net(net).name.clone();
        let child = netlist.split_net(net, &far, ls, format!("{name}_ls"))?;
        rep.count += 1;
        rep.modified_nets.push(net);
        rep.new_nets.push(child);
    }
    rep.power_mw = rep.count as f64 * LS_POWER_MW;
    Ok(rep)
}

/// Counts the level shifters already present in a netlist.
pub fn count_level_shifters(netlist: &Netlist) -> usize {
    netlist
        .cell_ids()
        .filter(|&c| netlist.class(c) == CellClass::LevelShifter)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_phys::{place, PlaceConfig};

    #[test]
    fn hetero_design_gets_shifters_on_every_3d_net() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let mut n = d.netlist;
        let mut p = place(&n, &PlaceConfig::default()).unwrap();
        let before_3d = n.net_ids().filter(|&x| n.net_tier(x).is_none()).count();
        assert!(before_3d > 0);
        let rep = insert_level_shifters(&mut n, &mut p, &tech).unwrap();
        assert!(rep.count > 0);
        assert!(rep.count <= before_3d);
        assert_eq!(count_level_shifters(&n), rep.count);
        assert!(rep.power_mw > 0.0);
        assert_eq!(p.locations().len(), n.cell_count());
        // After the ECO every original 3D net terminates at the shifter:
        // the split children connect the far die.
        for &c in &rep.new_nets {
            assert!(n.net(c).pins.len() >= 2);
        }
    }

    #[test]
    fn homogeneous_design_needs_none() {
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let mut n = d.netlist;
        let mut p = place(&n, &PlaceConfig::default()).unwrap();
        let rep = insert_level_shifters(&mut n, &mut p, &tech).unwrap();
        assert_eq!(rep.count, 0);
        assert_eq!(rep.power_mw, 0.0);
        assert!(!PowerDomains::from_tech(&tech).needs_level_shifters());
    }

    #[test]
    fn domains_reflect_tech() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = PowerDomains::from_tech(&tech);
        assert!((d.logic_vdd - 0.81).abs() < 1e-12);
        assert!((d.memory_vdd - 0.90).abs() < 1e-12);
        assert!(d.needs_level_shifters());
        assert!((d.min_vdd() - 0.81).abs() < 1e-12);
    }
}

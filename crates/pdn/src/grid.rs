//! Stripe-PDN synthesis on each die's top two metals.
//!
//! The PDN is a mesh: stripes of width `W` at pitch `P` on the die's
//! top-most metal (Table IV's `M-T:W/P/U` row) plus orthogonal stripes on
//! the metal below. The fraction of top-metal tracks the PDN occupies
//! (`U = W / P`) is exactly what the router loses as signal capacity —
//! the PDN/MLS resource trade-off of Figure 9(b–c).

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::Tier;
use gnnmls_phys::Floorplan;

/// Geometry of one die's power mesh.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PdnSpec {
    /// Stripe width, µm.
    pub width_um: f64,
    /// Stripe pitch, µm.
    pub pitch_um: f64,
}

impl PdnSpec {
    /// Top-metal utilization `U = W / P` (Table IV reports this per die).
    pub fn utilization(&self) -> f64 {
        (self.width_um / self.pitch_um).min(1.0)
    }

    /// The paper's MAERI heterogeneous setting (2.0 µm / 7 µm).
    pub fn maeri_hetero() -> Self {
        Self {
            width_um: 2.0,
            pitch_um: 7.0,
        }
    }

    /// The paper's A7 heterogeneous setting (2.7 µm / 9 µm).
    pub fn a7_hetero() -> Self {
        Self {
            width_um: 2.7,
            pitch_um: 9.0,
        }
    }
}

/// A synthesized power mesh for one die: nodes at stripe crossings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PdnGrid {
    /// Die the mesh powers.
    pub tier: Tier,
    /// Geometry used.
    pub spec: PdnSpec,
    /// Crossing nodes along x.
    pub nx: usize,
    /// Crossing nodes along y.
    pub ny: usize,
    /// Node pitch (stripe pitch), µm.
    pub pitch_um: f64,
    /// Segment resistance along x (top metal direction), kΩ.
    pub rx_kohm: f64,
    /// Segment resistance along y (metal below), kΩ.
    pub ry_kohm: f64,
    /// Power bumps sit on every `pad_every`-th boundary node (bump pitch
    /// ≈ `pad_every × pitch_um`; C4/µ-bump pitches are 50–150 µm, far
    /// coarser than the stripe pitch).
    pub pad_every: usize,
}

impl PdnGrid {
    /// Builds the mesh for a die.
    ///
    /// Stripe resistance derives from the layer's per-track resistance
    /// scaled by how many minimum tracks a `width_um` stripe spans.
    ///
    /// # Panics
    ///
    /// Panics if the spec has non-positive width or pitch, or
    /// `width > pitch`.
    pub fn build(fp: &Floorplan, tech: &TechConfig, tier: Tier, spec: PdnSpec) -> Self {
        assert!(
            spec.width_um > 0.0 && spec.pitch_um > 0.0,
            "PDN stripes need positive geometry"
        );
        assert!(
            spec.width_um <= spec.pitch_um,
            "stripes may not overlap (width > pitch)"
        );
        let stack = tech.stack(tier);
        let top = stack.top();
        let below = stack.layer((stack.len() - 1).max(1) as u8);
        let nx = ((fp.width_um / spec.pitch_um).floor() as usize).max(2);
        let ny = ((fp.height_um / spec.pitch_um).floor() as usize).max(2);
        // A W-µm stripe is W / (pitch/2) minimum-width tracks in parallel.
        let tracks =
            |layer: &gnnmls_netlist::MetalLayer| (spec.width_um / (layer.pitch_um / 2.0)).max(1.0);
        let rx_kohm = top.r_kohm_per_um * spec.pitch_um / tracks(top);
        let ry_kohm = below.r_kohm_per_um * spec.pitch_um / tracks(below);
        // Bump pitch ≈ 60 µm regardless of stripe pitch.
        let pad_every = ((60.0 / spec.pitch_um).round() as usize).max(1);
        Self {
            tier,
            spec,
            nx,
            ny,
            pitch_um: spec.pitch_um,
            rx_kohm,
            ry_kohm,
            pad_every,
        }
    }

    /// Node count of the mesh.
    pub fn node_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Maps a µm location to its nearest mesh node index.
    pub fn node_of(&self, x_um: f64, y_um: f64) -> usize {
        let gx = ((x_um / self.pitch_um).round() as usize).min(self.nx - 1);
        let gy = ((y_um / self.pitch_um).round() as usize).min(self.ny - 1);
        gy * self.nx + gx
    }

    /// Whether a node is a power bump (VDD source): bumps sit on the
    /// mesh boundary at every `pad_every`-th node.
    pub fn is_pad(&self, node: usize) -> bool {
        let x = node % self.nx;
        let y = node / self.nx;
        let on_x_edge = x == 0 || x == self.nx - 1;
        let on_y_edge = y == 0 || y == self.ny - 1;
        (on_x_edge && y.is_multiple_of(self.pad_every))
            || (on_y_edge && x.is_multiple_of(self.pad_every))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Floorplan {
        Floorplan {
            width_um: 140.0,
            height_um: 140.0,
        }
    }

    #[test]
    fn utilization_matches_paper_settings() {
        assert!((PdnSpec::maeri_hetero().utilization() - 2.0 / 7.0).abs() < 1e-12);
        assert!((PdnSpec::a7_hetero().utilization() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mesh_geometry_follows_pitch() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let g = PdnGrid::build(&fp(), &tech, Tier::Memory, PdnSpec::maeri_hetero());
        assert_eq!(g.nx, 20);
        assert_eq!(g.ny, 20);
        assert_eq!(g.node_count(), 400);
        assert!(g.rx_kohm > 0.0 && g.ry_kohm > 0.0);
        // Wider stripes -> lower resistance.
        let wide = PdnGrid::build(
            &fp(),
            &tech,
            Tier::Memory,
            PdnSpec {
                width_um: 4.0,
                pitch_um: 7.0,
            },
        );
        assert!(wide.rx_kohm < g.rx_kohm);
    }

    #[test]
    fn pads_are_discrete_bumps_on_the_boundary() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let g = PdnGrid::build(&fp(), &tech, Tier::Logic, PdnSpec::maeri_hetero());
        let pads = (0..g.node_count()).filter(|&n| g.is_pad(n)).count();
        // Far fewer bumps than boundary nodes, but at least the corners.
        assert!(pads >= 4);
        assert!(pads < 2 * g.nx + 2 * (g.ny - 2));
        assert!(!g.is_pad(g.node_of(70.0, 70.0)), "interior is never a pad");
        // Every pad is on the boundary.
        for n in 0..g.node_count() {
            if g.is_pad(n) {
                let (x, y) = (n % g.nx, n / g.nx);
                assert!(x == 0 || y == 0 || x == g.nx - 1 || y == g.ny - 1);
            }
        }
        assert_eq!(g.pad_every, 9, "60um bumps at 7um stripe pitch");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_stripes_panic() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let _ = PdnGrid::build(
            &fp(),
            &tech,
            Tier::Logic,
            PdnSpec {
                width_um: 8.0,
                pitch_um: 7.0,
            },
        );
    }
}

//! Static IR-drop analysis of the power mesh.
//!
//! The mesh is a resistive Laplacian with Dirichlet (VDD) boundary at the
//! pad ring and per-node current loads from the power model. The drop
//! vector solves `G · d = I`; we solve it matrix-free with conjugate
//! gradients (the system is symmetric positive definite).

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{Netlist, Tier};
use gnnmls_phys::{Floorplan, Placement};

use crate::grid::{PdnGrid, PdnSpec};
use crate::power::PowerReport;

/// IR-drop result for one die's mesh.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IrReport {
    /// Die analyzed.
    pub tier: Tier,
    /// Drop per mesh node, V (the Figure 9a heat map).
    pub drop_v: Vec<f64>,
    /// Worst drop, mV.
    pub max_drop_mv: f64,
    /// Worst drop as a percentage of the reference VDD (the paper budgets
    /// 10 % of the lowest rail, 0.81 V).
    pub pct_of_vdd: f64,
    /// Mesh width in nodes.
    pub nx: usize,
    /// Mesh height in nodes.
    pub ny: usize,
    /// Whether conjugate gradients reached the residual tolerance.
    ///
    /// A non-converged report is a *partial* solve: the drop map is
    /// whatever iterate the cap left behind, and downstream sizing
    /// ([`size_for_budget`]) refuses to trust it.
    pub converged: bool,
    /// CG iterations actually run.
    pub iterations: usize,
    /// Relative residual `‖r‖²/‖b‖²` at exit.
    pub residual: f64,
}

impl IrReport {
    /// Solves the mesh for per-node current loads (mA).
    ///
    /// # Panics
    ///
    /// Panics if `current_ma.len() != grid.node_count()`.
    pub fn solve(grid: &PdnGrid, current_ma: &[f64], vdd_ref: f64) -> Self {
        assert_eq!(
            current_ma.len(),
            grid.node_count(),
            "one current per mesh node"
        );
        let n = grid.node_count();
        let gx = 1.0 / grid.rx_kohm.max(1e-12);
        let gy = 1.0 / grid.ry_kohm.max(1e-12);
        let (nx, ny) = (grid.nx, grid.ny);

        // b: load currents at interior nodes; 0 (Dirichlet) at pads.
        let b: Vec<f64> = (0..n)
            .map(|i| if grid.is_pad(i) { 0.0 } else { current_ma[i] })
            .collect();

        // Matrix-free apply of the Dirichlet Laplacian.
        let apply = |x: &[f64], out: &mut [f64]| {
            for i in 0..n {
                if grid.is_pad(i) {
                    out[i] = x[i];
                    continue;
                }
                let (cx, cy) = (i % nx, i / nx);
                let mut acc = 0.0;
                let mut diag = 0.0;
                let nb = |j: usize, g: f64, acc: &mut f64, diag: &mut f64| {
                    *diag += g;
                    *acc += g * x[j];
                };
                if cx > 0 {
                    nb(i - 1, gx, &mut acc, &mut diag);
                }
                if cx + 1 < nx {
                    nb(i + 1, gx, &mut acc, &mut diag);
                }
                if cy > 0 {
                    nb(i - nx, gy, &mut acc, &mut diag);
                }
                if cy + 1 < ny {
                    nb(i + nx, gy, &mut acc, &mut diag);
                }
                out[i] = diag * x[i] - acc;
            }
        };

        // Conjugate gradients, capped. The `gnnmls-faults` seam
        // shrinks the cap to 1 so the non-convergence path is testable
        // without a pathological mesh.
        const TOL: f64 = 1e-18;
        let max_iters = if gnnmls_faults::fire(gnnmls_faults::FaultSite::IrNonConvergence) {
            1
        } else {
            2000
        };
        let mut x = vec![0.0f64; n];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut ax = vec![0.0f64; n];
        let mut rs: f64 = r.iter().map(|v| v * v).sum();
        let rs0 = rs.max(1e-30);
        let mut iterations = 0usize;
        let mut stagnated = false;
        for _ in 0..max_iters {
            if rs / rs0 < TOL {
                break;
            }
            apply(&p, &mut ax);
            let pap: f64 = p.iter().zip(&ax).map(|(a, b)| a * b).sum();
            if pap.abs() < 1e-30 {
                // Search direction vanished: CG can make no further
                // progress, so the current residual is final.
                stagnated = true;
                break;
            }
            let alpha = rs / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ax[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            iterations += 1;
        }
        let residual = rs / rs0;
        let converged = residual < TOL || (stagnated && residual < 1e-12);

        let max_drop = x.iter().copied().fold(0.0f64, f64::max);
        IrReport {
            tier: grid.tier,
            max_drop_mv: max_drop * 1000.0,
            pct_of_vdd: 100.0 * max_drop / vdd_ref.max(1e-12),
            drop_v: x,
            nx,
            ny,
            converged,
            iterations,
            residual,
        }
    }
}

impl IrReport {
    /// Renders the drop map as an SVG heat map (Figure 9(a)).
    pub fn to_svg(&self) -> String {
        use std::fmt::Write as _;
        const CELL: f64 = 8.0;
        let max = self.drop_v.iter().copied().fold(1e-12f64, f64::max);
        let (w, h) = (self.nx as f64 * CELL, self.ny as f64 * CELL);
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">"
        );
        let _ = writeln!(
            svg,
            "<title>{} die IR-drop, max {:.2} mV</title>",
            self.tier, self.max_drop_mv
        );
        for y in 0..self.ny {
            for x in 0..self.nx {
                let v = self.drop_v[y * self.nx + x] / max;
                let rch = (255.0 * v) as u8;
                let bch = (255.0 * (1.0 - v)) as u8;
                let px = x as f64 * CELL;
                let py = (self.ny - 1 - y) as f64 * CELL;
                let _ = writeln!(
                    svg,
                    "<rect x=\"{px}\" y=\"{py}\" width=\"{CELL}\" height=\"{CELL}\" fill=\"rgb({rch},40,{bch})\"/>"
                );
            }
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// Maps per-cell power of one die onto mesh-node currents (mA).
pub fn currents_from_power(
    grid: &PdnGrid,
    netlist: &Netlist,
    placement: &Placement,
    power: &PowerReport,
    vdd: f64,
) -> Vec<f64> {
    let mut i_ma = vec![0.0f64; grid.node_count()];
    for c in netlist.cell_ids() {
        if netlist.cell(c).tier != grid.tier {
            continue;
        }
        let l = placement.loc(c);
        // mW / V = mA.
        i_ma[grid.node_of(l.x, l.y)] += power.per_cell_mw[c.index()] / vdd.max(1e-12);
    }
    i_ma
}

/// Sizes the PDN stripe width (at fixed pitch) so worst-case IR-drop
/// stays within `budget_pct` of `vdd_ref`, widening in 0.1 µm steps up to
/// 80 % of the pitch. Returns the chosen spec and its IR report (the last
/// attempt if the budget is unreachable).
#[allow(clippy::too_many_arguments)]
pub fn size_for_budget(
    fp: &Floorplan,
    tech: &TechConfig,
    tier: Tier,
    netlist: &Netlist,
    placement: &Placement,
    power: &PowerReport,
    vdd_ref: f64,
    budget_pct: f64,
    pitch_um: f64,
) -> (PdnSpec, IrReport) {
    let vdd = tech.node(tier).vdd;
    let mut width = 0.4;
    loop {
        let spec = PdnSpec {
            width_um: width,
            pitch_um,
        };
        let grid = PdnGrid::build(fp, tech, tier, spec);
        let currents = currents_from_power(&grid, netlist, placement, power, vdd);
        let rep = IrReport::solve(&grid, &currents, vdd_ref);
        // A non-converged solve reports whatever drop the iteration cap
        // left behind — possibly optimistic — so it can never *satisfy*
        // the budget; the loop keeps widening and the final report keeps
        // `converged: false` for the caller to surface.
        let trustworthy = rep.converged && rep.pct_of_vdd <= budget_pct;
        if trustworthy || width + 0.1 > 0.8 * pitch_um {
            return (spec, rep);
        }
        width += 0.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    use crate::power::PowerConfig;

    fn setup() -> (gnnmls_netlist::Netlist, Placement, PowerReport, TechConfig) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        let pw = PowerReport::compute(&d.netlist, &db, &tech, &PowerConfig::at_freq_mhz(2500.0));
        (d.netlist, p, pw, tech)
    }

    #[test]
    fn uniform_center_load_droops_in_the_middle() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 140.0,
            height_um: 140.0,
        };
        let grid = PdnGrid::build(&fp, &tech, Tier::Logic, PdnSpec::maeri_hetero());
        let mut i = vec![0.0; grid.node_count()];
        let center = grid.node_of(70.0, 70.0);
        i[center] = 10.0; // 10 mA point load
        let rep = IrReport::solve(&grid, &i, 0.81);
        assert!(rep.max_drop_mv > 0.0);
        // Worst drop is at the load.
        let max_node = rep
            .drop_v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_node, center);
        // Pads stay at zero drop.
        for n in 0..grid.node_count() {
            if grid.is_pad(n) {
                assert!(rep.drop_v[n].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wider_stripes_reduce_drop() {
        let (netlist, placement, power, tech) = setup();
        let fp = *placement.floorplan();
        let run = |w: f64| {
            let spec = PdnSpec {
                width_um: w,
                pitch_um: 7.0,
            };
            let grid = PdnGrid::build(&fp, &tech, Tier::Logic, spec);
            let cur = currents_from_power(&grid, &netlist, &placement, &power, 0.81);
            IrReport::solve(&grid, &cur, 0.81).max_drop_mv
        };
        let narrow = run(0.5);
        let wide = run(4.0);
        assert!(
            wide < narrow,
            "wider PDN must droop less: {wide:.2} vs {narrow:.2} mV"
        );
    }

    #[test]
    fn sizing_meets_the_ten_percent_budget() {
        let (netlist, placement, power, tech) = setup();
        let fp = *placement.floorplan();
        let (spec, rep) = size_for_budget(
            &fp,
            &tech,
            Tier::Logic,
            &netlist,
            &placement,
            &power,
            0.81,
            10.0,
            7.0,
        );
        assert!(
            rep.pct_of_vdd <= 10.0,
            "sized PDN should meet budget, got {:.2}%",
            rep.pct_of_vdd
        );
        assert!(spec.utilization() <= 0.8);
        assert!(rep.max_drop_mv < 81.0);
    }

    #[test]
    fn solve_reports_convergence() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 140.0,
            height_um: 140.0,
        };
        let grid = PdnGrid::build(&fp, &tech, Tier::Logic, PdnSpec::maeri_hetero());
        let mut i = vec![0.0; grid.node_count()];
        i[grid.node_of(70.0, 70.0)] = 10.0;
        let rep = IrReport::solve(&grid, &i, 0.81);
        assert!(
            rep.converged,
            "residual {} after {} iters",
            rep.residual, rep.iterations
        );
        assert!(rep.iterations >= 1);
        assert!(rep.residual < 1e-12);
    }

    #[test]
    fn injected_nonconvergence_is_flagged_and_sizing_refuses_it() {
        use gnnmls_faults::{install, FaultPlan, FaultSite};
        let (netlist, placement, power, tech) = setup();
        let fp = *placement.floorplan();

        // Every solve in this scope is capped at one CG iteration.
        let guard = install(&FaultPlan::single(FaultSite::IrNonConvergence, 1000));
        let grid = PdnGrid::build(&fp, &tech, Tier::Logic, PdnSpec::maeri_hetero());
        let cur = currents_from_power(&grid, &netlist, &placement, &power, 0.81);
        let rep = IrReport::solve(&grid, &cur, 0.81);
        assert!(!rep.converged, "1-iteration CG cannot converge");
        assert_eq!(rep.iterations, 1);

        // size_for_budget must not accept a non-converged "pass": it
        // widens to the cap and hands back a flagged report.
        let (spec, rep) = size_for_budget(
            &fp,
            &tech,
            Tier::Logic,
            &netlist,
            &placement,
            &power,
            0.81,
            10.0,
            7.0,
        );
        assert!(!rep.converged, "sizing must not trust a capped solve");
        assert!(
            spec.width_um + 0.1 > 0.8 * 7.0,
            "non-converged solves force the widening loop to its cap"
        );
        drop(guard);
    }

    #[test]
    fn higher_power_increases_drop() {
        let (netlist, placement, power, tech) = setup();
        let fp = *placement.floorplan();
        let grid = PdnGrid::build(&fp, &tech, Tier::Memory, PdnSpec::maeri_hetero());
        let cur = currents_from_power(&grid, &netlist, &placement, &power, 0.9);
        let base = IrReport::solve(&grid, &cur, 0.81);
        let doubled: Vec<f64> = cur.iter().map(|c| c * 2.0).collect();
        let hot = IrReport::solve(&grid, &doubled, 0.81);
        assert!(hot.max_drop_mv > base.max_drop_mv * 1.9);
    }
}

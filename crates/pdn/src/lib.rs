//! Power delivery for mixed-node 3D ICs (Section III-E / IV-E).
//!
//! The paper's heterogeneous setup runs the top level at 0.9 V with the
//! 28 nm memory sub-domain at 0.9 V and the 16 nm logic sub-domain at
//! 0.81 V; level shifters sit on every 3D signal crossing, and the PDN's
//! width/pitch are chosen so IR-drop stays within 10 % of the lowest VDD.
//! This crate reproduces each piece:
//!
//! - [`power`] — activity-based dynamic + leakage power from the routed
//!   design (`Pwr` rows of Tables IV–VI).
//! - [`domains`] — the multi-power-domain view and level-shifter
//!   insertion/accounting on 3D crossings (`L.S Pwr` row).
//! - [`grid`] — stripe-PDN synthesis on each die's top two metals, with
//!   the width/pitch/utilization knobs of Table IV's `M-T:W/P/U` row, and
//!   automatic sizing to an IR budget.
//! - [`ir`] — matrix-free conjugate-gradient solve of the PDN's resistive
//!   mesh for the static IR-drop map (Figure 9a).

pub mod domains;
pub mod grid;
pub mod ir;
pub mod power;

pub use domains::{insert_level_shifters, LevelShifterReport, PowerDomains};
pub use grid::{PdnGrid, PdnSpec};
pub use ir::IrReport;
pub use power::{PowerConfig, PowerReport};

//! Activity-based power estimation.
//!
//! `P_dyn = α · C · V² · f` summed per net (driver's domain voltage,
//! wire + pin capacitance from the routed design), plus per-cell leakage.
//! Units: fF × V² × MHz = nW·1e-3... worked through, `fF · V² · MHz`
//! equals exactly nanowatts, so `/1e6` yields mW.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{Netlist, Tier};
use gnnmls_route::RouteDb;

/// Power estimation knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Average switching activity per net per cycle.
    pub activity: f64,
    /// Operating frequency in MHz.
    pub freq_mhz: f64,
}

impl PowerConfig {
    /// Typical activity (0.15) at a given frequency.
    pub fn at_freq_mhz(freq_mhz: f64) -> Self {
        Self {
            activity: 0.15,
            freq_mhz,
        }
    }
}

/// Power breakdown of a routed design.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Total power, mW.
    pub total_mw: f64,
    /// Dynamic (switching) power, mW.
    pub dynamic_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Power dissipated on the logic die, mW.
    pub logic_tier_mw: f64,
    /// Power dissipated on the memory die, mW.
    pub memory_tier_mw: f64,
    /// Per-cell power (driver-attributed), mW, indexed by cell id.
    pub per_cell_mw: Vec<f64>,
}

impl PowerReport {
    /// Computes the report for a routed design.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not cover the netlist.
    pub fn compute(
        netlist: &Netlist,
        routes: &RouteDb,
        tech: &TechConfig,
        cfg: &PowerConfig,
    ) -> Self {
        assert_eq!(
            routes.nets.len(),
            netlist.net_count(),
            "route db must cover every net"
        );
        let mut rep = PowerReport {
            per_cell_mw: vec![0.0; netlist.cell_count()],
            ..Default::default()
        };

        // Leakage.
        for c in netlist.cell_ids() {
            let leak_mw = netlist.template(c).leakage_uw / 1000.0;
            rep.leakage_mw += leak_mw;
            rep.per_cell_mw[c.index()] += leak_mw;
        }

        // Switching: attributed to the driving cell's domain.
        for net in netlist.net_ids() {
            let driver = netlist.driver_cell(net);
            let tier = netlist.cell(driver).tier;
            let vdd = tech.node(tier).vdd;
            let cap_ff = routes.route(net).total_cap_ff + netlist.template(driver).input_cap_ff; // internal cap proxy
                                                                                                 // fF · V² · MHz = nW; /1e6 → mW.
            let dyn_mw = cfg.activity * cap_ff * vdd * vdd * cfg.freq_mhz / 1.0e6;
            rep.dynamic_mw += dyn_mw;
            rep.per_cell_mw[driver.index()] += dyn_mw;
        }

        for c in netlist.cell_ids() {
            match netlist.cell(c).tier {
                Tier::Logic => rep.logic_tier_mw += rep.per_cell_mw[c.index()],
                Tier::Memory => rep.memory_tier_mw += rep.per_cell_mw[c.index()],
            }
        }
        rep.total_mw = rep.dynamic_mw + rep.leakage_mw;
        rep
    }

    /// Power of one tier, mW.
    pub fn tier_mw(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Logic => self.logic_tier_mw,
            Tier::Memory => self.memory_tier_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_phys::{place, PlaceConfig};
    use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

    fn compute(freq: f64) -> PowerReport {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let p = place(&d.netlist, &PlaceConfig::default()).unwrap();
        let (db, _) = route_design(
            &d.netlist,
            &p,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig::default(),
        )
        .unwrap();
        PowerReport::compute(&d.netlist, &db, &tech, &PowerConfig::at_freq_mhz(freq))
    }

    #[test]
    fn power_scales_with_frequency() {
        let slow = compute(1000.0);
        let fast = compute(2500.0);
        assert!(fast.total_mw > slow.total_mw);
        assert!((fast.dynamic_mw / slow.dynamic_mw - 2.5).abs() < 1e-6);
        assert!((fast.leakage_mw - slow.leakage_mw).abs() < 1e-12);
    }

    #[test]
    fn breakdown_is_consistent() {
        let r = compute(2000.0);
        assert!(r.total_mw > 0.0);
        assert!((r.dynamic_mw + r.leakage_mw - r.total_mw).abs() < 1e-9);
        let cell_sum: f64 = r.per_cell_mw.iter().sum();
        assert!((cell_sum - r.total_mw).abs() < 1e-6);
        assert!(
            (r.logic_tier_mw + r.memory_tier_mw - r.total_mw).abs() < 1e-6,
            "tier split covers everything"
        );
        // Macro-heavy memory die leaks substantially.
        assert!(r.tier_mw(Tier::Memory) > 0.0);
    }
}

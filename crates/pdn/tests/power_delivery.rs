//! PDN-crate integration: domains + shifters + power + IR as one pipeline.

use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::Tier;
use gnnmls_pdn::domains::count_level_shifters;
use gnnmls_pdn::ir::{currents_from_power, IrReport};
use gnnmls_pdn::{insert_level_shifters, PdnGrid, PdnSpec, PowerConfig, PowerDomains, PowerReport};
use gnnmls_phys::{place, PlaceConfig};
use gnnmls_route::{route_design, MlsPolicy, RouteConfig};

#[test]
fn level_shifter_insertion_is_single_shot_and_powered() {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let d = generate_maeri(&MaeriConfig::new(16, 4), &tech).unwrap();
    let mut netlist = d.netlist;
    let mut placement = place(&netlist, &PlaceConfig::default()).unwrap();

    let rep = insert_level_shifters(&mut netlist, &mut placement, &tech).unwrap();
    assert!(rep.count > 0);
    assert_eq!(count_level_shifters(&netlist), rep.count);

    // A second run finds no *new* 3D signal nets needing shifters at the
    // same crossings... the split children terminate at the shifter, so
    // re-running only shifts nets still crossing (the shifter-to-far-die
    // children). Their names collide deterministically -> clean error.
    let again = insert_level_shifters(&mut netlist, &mut placement, &tech);
    assert!(again.is_err(), "re-running the ECO must fail on names");

    // Power accounting: the routed design includes shifter leakage.
    let (db, _) = route_design(
        &netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        RouteConfig::default(),
    )
    .unwrap();
    let power = PowerReport::compute(&netlist, &db, &tech, &PowerConfig::at_freq_mhz(2000.0));
    assert!(power.total_mw > 0.0);
    // LS power is linear in the shifter count (per-instance constant).
    assert!(rep.power_mw > 0.0);
    let per_ls = rep.power_mw / rep.count as f64;
    assert!((0.01..1.0).contains(&per_ls), "per-LS power {per_ls} mW");
}

#[test]
fn ir_drop_is_symmetric_for_symmetric_loads() {
    let tech = TechConfig::homogeneous_28_28(6, 6);
    let fp = gnnmls_phys::Floorplan {
        width_um: 210.0,
        height_um: 210.0,
    };
    let mesh = PdnGrid::build(&fp, &tech, Tier::Logic, PdnSpec::maeri_hetero());
    let mut i = vec![0.0; mesh.node_count()];
    // Two mirrored point loads.
    let a = mesh.node_of(70.0, 105.0);
    let b = mesh.node_of(140.0, 105.0);
    i[a] = 5.0;
    i[b] = 5.0;
    let rep = IrReport::solve(&mesh, &i, 0.9);
    let da = rep.drop_v[a];
    let db_ = rep.drop_v[b];
    // Bumps sit at discrete boundary sites, so the mesh is only
    // approximately mirror-symmetric — allow a small tolerance.
    assert!(
        (da - db_).abs() < 0.02 * da.max(1e-12),
        "mirrored loads must droop (nearly) equally: {da} vs {db_}"
    );
    assert!(da > 0.0 && db_ > 0.0);
}

#[test]
fn domains_drive_the_budget_reference() {
    let hetero = PowerDomains::from_tech(&TechConfig::heterogeneous_16_28(6, 6));
    let homo = PowerDomains::from_tech(&TechConfig::homogeneous_28_28(6, 6));
    assert!(hetero.min_vdd() < homo.min_vdd());
    // 10% budget in volts differs accordingly.
    assert!(0.1 * hetero.min_vdd() < 0.1 * homo.min_vdd());
}

#[test]
fn per_tier_currents_partition_total_power() {
    let tech = TechConfig::heterogeneous_16_28(6, 6);
    let d = generate_maeri(&MaeriConfig::new(16, 4), &tech).unwrap();
    let placement = place(&d.netlist, &PlaceConfig::default()).unwrap();
    let (db, _) = route_design(
        &d.netlist,
        &placement,
        &tech,
        MlsPolicy::Disabled,
        RouteConfig::default(),
    )
    .unwrap();
    let power = PowerReport::compute(&d.netlist, &db, &tech, &PowerConfig::at_freq_mhz(2500.0));
    let fp = placement.floorplan();
    let mut recovered_mw = 0.0;
    for tier in Tier::BOTH {
        let mesh = PdnGrid::build(fp, &tech, tier, PdnSpec::maeri_hetero());
        let vdd = tech.node(tier).vdd;
        let cur = currents_from_power(&mesh, &d.netlist, &placement, &power, vdd);
        recovered_mw += cur.iter().sum::<f64>() * vdd; // mA × V = mW
    }
    assert!(
        (recovered_mw - power.total_mw).abs() < 1e-6 * power.total_mw,
        "currents must conserve power: {recovered_mw} vs {}",
        power.total_mw
    );
}

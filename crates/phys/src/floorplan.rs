//! Die outline derivation.
//!
//! Both dies of an F2F stack share one footprint. The outline is sized so
//! the *denser* die hits the target utilization; the paper reports the
//! resulting footprint as `FP (mm²)` (0.38 mm² for MAERI 128PE, 1.11 mm²
//! for the A7 dual-core).

use serde::{Deserialize, Serialize};

use gnnmls_netlist::{Netlist, Tier};

/// A square die outline shared by both tiers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    /// Die width in µm.
    pub width_um: f64,
    /// Die height in µm.
    pub height_um: f64,
}

impl Floorplan {
    /// Derives a square outline from the design's per-tier cell area and a
    /// target utilization (0 < `utilization` ≤ 1).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    pub fn for_netlist(netlist: &Netlist, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        let area = netlist
            .tier_area_um2(Tier::Logic)
            .max(netlist.tier_area_um2(Tier::Memory))
            .max(1.0);
        let side = (area / utilization).sqrt();
        Self {
            width_um: side,
            height_um: side,
        }
    }

    /// Die area in mm² (the paper's `FP` metric).
    #[inline]
    pub fn area_mm2(&self) -> f64 {
        self.width_um * self.height_um / 1.0e6
    }

    /// Clamps a point into the outline.
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(0.0, self.width_um), y.clamp(0.0, self.height_um))
    }

    /// Whether a point lies inside the outline (inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        (0.0..=self.width_um).contains(&x) && (0.0..=self.height_um).contains(&y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;

    #[test]
    fn outline_scales_with_design_area() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let small = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let big = generate_maeri(&MaeriConfig::new(64, 8), &tech).unwrap();
        let fs = Floorplan::for_netlist(&small.netlist, 0.7);
        let fb = Floorplan::for_netlist(&big.netlist, 0.7);
        assert!(fb.area_mm2() > fs.area_mm2());
        assert!(fs.width_um > 0.0);
    }

    #[test]
    fn lower_utilization_grows_the_die() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let tight = Floorplan::for_netlist(&d.netlist, 0.9);
        let loose = Floorplan::for_netlist(&d.netlist, 0.5);
        assert!(loose.area_mm2() > tight.area_mm2());
    }

    #[test]
    fn clamp_and_contains() {
        let f = Floorplan {
            width_um: 100.0,
            height_um: 50.0,
        };
        assert_eq!(f.clamp(-5.0, 200.0), (0.0, 50.0));
        assert!(f.contains(100.0, 0.0));
        assert!(!f.contains(100.1, 0.0));
        assert!((f.area_mm2() - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_panics() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let d = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let _ = Floorplan::for_netlist(&d.netlist, 0.0);
    }
}

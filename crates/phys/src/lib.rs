//! Physical design substrate: floorplanning and tier-aware placement.
//!
//! The paper's flow (Macro-3D / Memory-on-Logic) fixes each cell's die by
//! type — macros and their glue on the memory die, everything else on the
//! logic die — then places both dies over the same footprint so that
//! face-to-face pads can connect vertically aligned points. This crate
//! reproduces that step:
//!
//! - [`floorplan`] — derives the common die outline from cell area and a
//!   target utilization (compare the paper's `FP (mm²)` rows).
//! - [`place`](mod@place) — quadratic-style placement: connectivity averaging
//!   (Jacobi iterations anchored at IO pads and macros) interleaved with
//!   recursive-bisection spreading; macros are packed in rows along the
//!   memory-die edges first.
//! - [`wirelength`] — half-perimeter wirelength (HPWL) estimation, the
//!   router's net-ordering key and the GNN's early wirelength feature.
//!
//! # Example
//!
//! ```
//! use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
//! use gnnmls_netlist::tech::TechConfig;
//! use gnnmls_phys::{place, PlaceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = TechConfig::heterogeneous_16_28(6, 6);
//! let design = generate_maeri(&MaeriConfig::pe16_bw4(), &tech)?;
//! let placement = place(&design.netlist, &PlaceConfig::default())?;
//! assert!(placement.floorplan().width_um > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod floorplan;
pub mod place;
pub mod repeaters;
pub mod wirelength;

pub use floorplan::Floorplan;
pub use place::{place, PlaceConfig, PlaceError, Placement, Point};
pub use repeaters::{insert_repeaters, RepeaterConfig};
pub use wirelength::{net_hpwl_um, total_hpwl_um};

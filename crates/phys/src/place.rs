//! Tier-aware quadratic-style placement.
//!
//! The placer follows the classic analytic recipe at small scale:
//!
//! 1. **Anchors** — IO ports are distributed around the die perimeter and
//!    SRAM macros are row-packed from the top edge of the memory die; both
//!    stay fixed.
//! 2. **Connectivity averaging** — movable cells repeatedly move toward
//!    the mean position of their net neighbors (a Jacobi relaxation of the
//!    quadratic wirelength objective). Both tiers share the xy plane, so
//!    3D nets pull their endpoints into vertical alignment — exactly what
//!    makes F2F pads short.
//! 3. **Spreading** — recursive balanced bisection redistributes each
//!    tier's cells over its allowed region, removing the collapse toward
//!    the center that pure averaging produces.
//!
//! Steps 2–3 alternate for a few rounds (SimPL-style).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use gnnmls_netlist::{CellClass, CellId, Netlist, Tier};

use crate::floorplan::Floorplan;

/// A 2D location in µm (tiers share the xy plane).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// x coordinate, µm.
    pub x: f64,
    /// y coordinate, µm.
    pub y: f64,
}

impl Point {
    /// A new point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another point.
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// Placement parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlaceConfig {
    /// Target utilization of the denser die (sizes the floorplan).
    pub utilization: f64,
    /// Jacobi averaging iterations per round.
    pub averaging_iters: usize,
    /// Averaging/spreading rounds.
    pub rounds: usize,
    /// RNG seed for the initial scatter.
    pub seed: u64,
    /// Fraction of die height reserved (from the top) for macro rows on
    /// the memory die.
    pub macro_region_frac: f64,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        Self {
            utilization: 0.65,
            averaging_iters: 30,
            rounds: 4,
            seed: 0,
            macro_region_frac: 0.45,
        }
    }
}

/// Errors raised by placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlaceError {
    /// The netlist has no cells.
    NoCells,
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NoCells => write!(f, "cannot place an empty netlist"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A completed placement: one location per cell plus the shared outline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Placement {
    locations: Vec<Point>,
    floorplan: Floorplan,
}

impl Placement {
    /// Location of a cell.
    #[inline]
    pub fn loc(&self, cell: CellId) -> Point {
        self.locations[cell.index()]
    }

    /// The die outline.
    #[inline]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// All locations, indexed by cell id.
    #[inline]
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// Builds a placement directly from locations (testing / replay).
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty.
    pub fn from_locations(locations: Vec<Point>, floorplan: Floorplan) -> Self {
        assert!(!locations.is_empty(), "placement needs at least one cell");
        Self {
            locations,
            floorplan,
        }
    }

    /// Appends a location for a newly added cell (post-placement ECO, used
    /// by DFT and level-shifter insertion) and returns its implied cell id
    /// index.
    pub fn push_location(&mut self, p: Point) -> usize {
        self.locations.push(p);
        self.locations.len() - 1
    }
}

struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    fn cy(&self) -> f64 {
        (self.y0 + self.y1) / 2.0
    }
    fn w(&self) -> f64 {
        self.x1 - self.x0
    }
    fn h(&self) -> f64 {
        self.y1 - self.y0
    }
}

/// Places a netlist.
///
/// # Errors
///
/// Returns [`PlaceError::NoCells`] for an empty netlist (unreachable for
/// validated designs).
pub fn place(netlist: &Netlist, cfg: &PlaceConfig) -> Result<Placement, PlaceError> {
    if netlist.cell_count() == 0 {
        return Err(PlaceError::NoCells);
    }
    let fp = Floorplan::for_netlist(netlist, cfg.utilization);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = netlist.cell_count();

    let mut pos = vec![Point::default(); n];
    let mut fixed = vec![false; n];

    // --- Anchors: IO ports around the perimeter.
    let ios: Vec<CellId> = netlist
        .cell_ids()
        .filter(|&c| matches!(netlist.class(c), CellClass::Input | CellClass::Output))
        .collect();
    let perim = 2.0 * (fp.width_um + fp.height_um);
    for (i, &c) in ios.iter().enumerate() {
        let t = perim * (i as f64 + 0.5) / ios.len().max(1) as f64;
        pos[c.index()] = perimeter_point(&fp, t);
        fixed[c.index()] = true;
    }

    // --- Anchors: macros row-packed from the top edge of their tier.
    let mut macros: Vec<CellId> = netlist
        .cell_ids()
        .filter(|&c| netlist.class(c) == CellClass::Macro)
        .collect();
    macros.sort_by(|&a, &b| {
        netlist
            .template(b)
            .area_um2
            .total_cmp(&netlist.template(a).area_um2)
    });
    let max_macro_y = fp.height_um * cfg.macro_region_frac;
    let (mut x, mut y, mut row_h) = (0.0f64, 0.0f64, 0.0f64);
    for &m in &macros {
        let side = netlist.template(m).area_um2.sqrt();
        if x + side > fp.width_um + 1e-9 {
            x = 0.0;
            y += row_h;
            row_h = 0.0;
        }
        if y + side > max_macro_y {
            // Macro region overflow: restart packing with overlap rather
            // than fail (synthetic designs may be macro-dominated).
            y = 0.0;
        }
        pos[m.index()] = Point::new(
            (x + side / 2.0).min(fp.width_um),
            fp.height_um - (y + side / 2.0).min(fp.height_um),
        );
        fixed[m.index()] = true;
        x += side;
        row_h = row_h.max(side);
    }
    let macro_rows_bottom = fp.height_um - (y + row_h).min(fp.height_um);

    // --- Initial scatter for movable cells.
    for c in netlist.cell_ids() {
        if !fixed[c.index()] {
            pos[c.index()] = Point::new(
                rng.gen_range(0.0..fp.width_um.max(1e-6)),
                rng.gen_range(0.0..fp.height_um.max(1e-6)),
            );
        }
    }

    // --- Star-model adjacency.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for net in netlist.net_ids() {
        let d = netlist.driver_cell(net);
        for &s in netlist.sinks(net) {
            let sc = netlist.pin(s).cell;
            if sc != d {
                adj[d.index()].push(sc.raw());
                adj[sc.index()].push(d.raw());
            }
        }
    }

    // --- Rounds of averaging + spreading.
    for round in 0..cfg.rounds.max(1) {
        for _ in 0..cfg.averaging_iters {
            let snapshot = pos.clone();
            for c in 0..n {
                if fixed[c] || adj[c].is_empty() {
                    continue;
                }
                let (mut sx, mut sy) = (0.0, 0.0);
                for &nb in &adj[c] {
                    let p = snapshot[nb as usize];
                    sx += p.x;
                    sy += p.y;
                }
                let k = adj[c].len() as f64;
                pos[c] = Point::new(sx / k, sy / k);
            }
        }
        // Spread per tier; the memory tier's movable cells avoid the macro
        // rows.
        for tier in Tier::BOTH {
            let mut movable: Vec<(CellId, Point)> = netlist
                .cell_ids()
                .filter(|&c| !fixed[c.index()] && netlist.cell(c).tier == tier)
                .map(|c| (c, pos[c.index()]))
                .collect();
            if movable.is_empty() {
                continue;
            }
            let region = if tier == Tier::Memory && macro_rows_bottom > fp.height_um * 0.1 {
                Rect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: fp.width_um,
                    y1: macro_rows_bottom,
                }
            } else {
                Rect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: fp.width_um,
                    y1: fp.height_um,
                }
            };
            spread(&mut movable, region, &mut pos, &mut rng);
        }
        let _ = round;
    }

    for p in &mut pos {
        let (cx, cy) = fp.clamp(p.x, p.y);
        *p = Point::new(cx, cy);
    }

    Ok(Placement {
        locations: pos,
        floorplan: fp,
    })
}

/// Maps arc length `t` along the perimeter to a boundary point.
fn perimeter_point(fp: &Floorplan, t: f64) -> Point {
    let (w, h) = (fp.width_um, fp.height_um);
    let t = t % (2.0 * (w + h));
    if t < w {
        Point::new(t, 0.0)
    } else if t < w + h {
        Point::new(w, t - w)
    } else if t < 2.0 * w + h {
        Point::new(w - (t - w - h), h)
    } else {
        Point::new(0.0, h - (t - 2.0 * w - h))
    }
}

/// Recursive balanced bisection: redistributes `cells` (with their current
/// positions as ordering keys) uniformly over `region`.
fn spread(cells: &mut [(CellId, Point)], region: Rect, pos: &mut [Point], rng: &mut StdRng) {
    if cells.is_empty() {
        return;
    }
    if cells.len() <= 2 {
        for (i, (c, _)) in cells.iter().enumerate() {
            let fx = (i as f64 + 0.5) / cells.len() as f64;
            let jitter = rng.gen_range(-0.05..0.05);
            pos[c.index()] = Point::new(
                region.x0 + region.w() * (fx + jitter).clamp(0.05, 0.95),
                region.cy() + region.h() * rng.gen_range(-0.25..0.25),
            );
        }
        return;
    }
    let horizontal = region.w() >= region.h();
    if horizontal {
        cells.sort_by(|a, b| a.1.x.total_cmp(&b.1.x));
    } else {
        cells.sort_by(|a, b| a.1.y.total_cmp(&b.1.y));
    }
    let half = cells.len() / 2;
    let frac = half as f64 / cells.len() as f64;
    let (lo, hi) = cells.split_at_mut(half);
    if horizontal {
        let xm = region.x0 + region.w() * frac;
        spread(
            lo,
            Rect {
                x1: xm,
                ..Rect {
                    ..region_copy(&region)
                }
            },
            pos,
            rng,
        );
        spread(
            hi,
            Rect {
                x0: xm,
                ..region_copy(&region)
            },
            pos,
            rng,
        );
    } else {
        let ym = region.y0 + region.h() * frac;
        spread(
            lo,
            Rect {
                y1: ym,
                ..region_copy(&region)
            },
            pos,
            rng,
        );
        spread(
            hi,
            Rect {
                y0: ym,
                ..region_copy(&region)
            },
            pos,
            rng,
        );
    }
}

fn region_copy(r: &Rect) -> Rect {
    Rect {
        x0: r.x0,
        y0: r.y0,
        x1: r.x1,
        y1: r.y1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirelength::total_hpwl_um;
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;

    fn maeri16() -> gnnmls_netlist::Netlist {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        generate_maeri(&MaeriConfig::pe16_bw4(), &tech)
            .unwrap()
            .netlist
    }

    #[test]
    fn all_cells_are_inside_the_floorplan() {
        let n = maeri16();
        let p = place(&n, &PlaceConfig::default()).unwrap();
        for c in n.cell_ids() {
            let l = p.loc(c);
            assert!(
                p.floorplan().contains(l.x, l.y),
                "{} at ({}, {})",
                n.cell(c).name,
                l.x,
                l.y
            );
        }
    }

    #[test]
    fn placement_beats_random_scatter_on_hpwl() {
        let n = maeri16();
        let placed = place(&n, &PlaceConfig::default()).unwrap();
        // Random baseline: one averaging-free, spread-only round over a
        // random scatter is close to random.
        let random = place(
            &n,
            &PlaceConfig {
                averaging_iters: 0,
                rounds: 1,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        let w_placed = total_hpwl_um(&n, &placed);
        let w_random = total_hpwl_um(&n, &random);
        assert!(
            w_placed < 0.7 * w_random,
            "placed {w_placed:.0} vs random {w_random:.0}"
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let n = maeri16();
        let a = place(&n, &PlaceConfig::default()).unwrap();
        let b = place(&n, &PlaceConfig::default()).unwrap();
        assert_eq!(a.locations(), b.locations());
        let c = place(
            &n,
            &PlaceConfig {
                seed: 99,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a.locations(), c.locations());
    }

    #[test]
    fn macros_sit_high_on_the_die() {
        let n = maeri16();
        let p = place(&n, &PlaceConfig::default()).unwrap();
        let fp = p.floorplan();
        for c in n.cell_ids() {
            if n.class(c) == CellClass::Macro {
                assert!(
                    p.loc(c).y > fp.height_um * 0.4,
                    "macro {} should be packed near the top edge",
                    n.cell(c).name
                );
            }
        }
    }

    #[test]
    fn io_cells_are_pinned_to_the_perimeter() {
        let n = maeri16();
        let p = place(&n, &PlaceConfig::default()).unwrap();
        let fp = p.floorplan();
        for c in n.cell_ids() {
            if matches!(n.class(c), CellClass::Input | CellClass::Output) {
                let l = p.loc(c);
                let on_edge = l.x < 1e-6
                    || l.y < 1e-6
                    || (fp.width_um - l.x) < 1e-6
                    || (fp.height_um - l.y) < 1e-6;
                assert!(on_edge, "IO {} at ({}, {})", n.cell(c).name, l.x, l.y);
            }
        }
    }

    #[test]
    fn perimeter_point_walks_all_four_edges() {
        let fp = Floorplan {
            width_um: 10.0,
            height_um: 6.0,
        };
        assert_eq!(perimeter_point(&fp, 5.0), Point::new(5.0, 0.0));
        assert_eq!(perimeter_point(&fp, 13.0), Point::new(10.0, 3.0));
        assert_eq!(perimeter_point(&fp, 21.0), Point::new(5.0, 6.0));
        assert_eq!(perimeter_point(&fp, 29.0), Point::new(0.0, 3.0));
        // Wraps around.
        assert_eq!(perimeter_point(&fp, 37.0), Point::new(5.0, 0.0));
    }

    #[test]
    fn manhattan_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 0.0);
        assert_eq!(a.manhattan(&b), 5.0);
        assert_eq!(b.manhattan(&a), 5.0);
    }

    #[test]
    fn push_location_extends_for_eco_cells() {
        let n = maeri16();
        let mut p = place(&n, &PlaceConfig::default()).unwrap();
        let before = p.locations().len();
        let idx = p.push_location(Point::new(1.0, 1.0));
        assert_eq!(idx, before);
        assert_eq!(p.locations().len(), before + 1);
    }
}

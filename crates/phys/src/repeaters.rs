//! Post-placement repeater insertion.
//!
//! Physical synthesis breaks long wires with buffers (repeaters) so that
//! RC delay grows linearly rather than quadratically with distance; no
//! commercial flow tapes out multi-hundred-µm unbuffered nets. This pass
//! reproduces that: any net whose sinks sit farther than `max_seg_um`
//! (manhattan) from the driver gets those sinks regrouped by quadrant
//! behind a `BUFX4` placed at the group's centroid, recursively, so long
//! connections become chains/trees of ≤ `max_seg_um` hops.

use gnnmls_netlist::tech::TechConfig;
use gnnmls_netlist::{CellLibrary, NetId, Netlist, NetlistError, PinId, Tier};

use crate::place::{Placement, Point};

/// Repeater insertion parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeaterConfig {
    /// Maximum unbuffered driver→sink manhattan distance, µm.
    pub max_seg_um: f64,
    /// Safety bound on recursive splits per original net.
    pub max_depth: usize,
}

impl Default for RepeaterConfig {
    fn default() -> Self {
        Self {
            max_seg_um: 80.0,
            max_depth: 24,
        }
    }
}

/// Inserts repeaters on all over-long nets; returns the buffer count.
///
/// # Errors
///
/// Propagates [`NetlistError`] (name collisions indicate a repeated run).
pub fn insert_repeaters(
    netlist: &mut Netlist,
    placement: &mut Placement,
    tech: &TechConfig,
    cfg: &RepeaterConfig,
) -> Result<usize, NetlistError> {
    let logic_lib = CellLibrary::for_node(&tech.logic_node);
    let memory_lib = CellLibrary::for_node(&tech.memory_node);
    let mut serial = 0usize;
    let mut added = 0usize;

    let mut work: Vec<(NetId, usize)> = netlist.net_ids().map(|n| (n, 0)).collect();
    while let Some((net, depth)) = work.pop() {
        if depth >= cfg.max_depth {
            continue;
        }
        let driver = netlist.driver_cell(net);
        let dloc = placement.loc(driver);
        // Group far sinks by quadrant around the driver.
        let mut groups: [Vec<PinId>; 4] = Default::default();
        for &p in netlist.sinks(net) {
            let sloc = placement.loc(netlist.pin(p).cell);
            if dloc.manhattan(&sloc) <= cfg.max_seg_um {
                continue;
            }
            let q = match (sloc.x >= dloc.x, sloc.y >= dloc.y) {
                (true, true) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (false, false) => 3,
            };
            groups[q].push(p);
        }
        let tier = netlist.cell(driver).tier;
        let lib = match tier {
            Tier::Logic => &logic_lib,
            Tier::Memory => &memory_lib,
        };
        for group in groups.iter().filter(|g| !g.is_empty()) {
            // Repeater at one hop toward the group centroid.
            let (mut cx, mut cy) = (0.0, 0.0);
            for &p in group {
                let l = placement.loc(netlist.pin(p).cell);
                cx += l.x;
                cy += l.y;
            }
            cx /= group.len() as f64;
            cy /= group.len() as f64;
            let dist = dloc.manhattan(&Point::new(cx, cy)).max(1e-9);
            let t = (cfg.max_seg_um / dist).min(1.0);
            let loc = Point::new(dloc.x + (cx - dloc.x) * t, dloc.y + (cy - dloc.y) * t);
            let buf = netlist.add_cell(format!("repbuf_{serial}"), lib.expect("BUFX4"), tier)?;
            let idx = placement.push_location(loc);
            debug_assert_eq!(idx, buf.index());
            let child = netlist.split_net(net, group, buf, format!("repnet_{serial}"))?;
            serial += 1;
            added += 1;
            work.push((child, depth + 1));
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use gnnmls_netlist::tech::TechNode;
    use gnnmls_netlist::NetlistBuilder;

    /// A driver at the origin with sinks scattered at known distances.
    fn long_net(sink_locs: &[(f64, f64)]) -> (Netlist, Placement) {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("long");
        let pi = b.add_cell("pi", lib.expect("PI"), Tier::Logic).unwrap();
        let n = b.add_net("n").unwrap();
        b.connect_output(n, pi, 0).unwrap();
        let mut locs = vec![Point::new(0.0, 0.0)];
        for (i, &(x, y)) in sink_locs.iter().enumerate() {
            let po = b
                .add_cell(format!("po{i}"), lib.expect("PO"), Tier::Logic)
                .unwrap();
            b.connect_input(n, po, 0).unwrap();
            locs.push(Point::new(x, y));
        }
        let netlist = b.finish().unwrap();
        let fp = Floorplan {
            width_um: 1000.0,
            height_um: 1000.0,
        };
        (netlist, Placement::from_locations(locs, fp))
    }

    /// Checks every driver→sink hop after insertion.
    fn max_hop(netlist: &Netlist, placement: &Placement) -> f64 {
        let mut worst = 0.0f64;
        for net in netlist.net_ids() {
            let d = placement.loc(netlist.driver_cell(net));
            for &p in netlist.sinks(net) {
                worst = worst.max(d.manhattan(&placement.loc(netlist.pin(p).cell)));
            }
        }
        worst
    }

    #[test]
    fn long_straight_net_becomes_a_repeater_chain() {
        let (mut n, mut p) = long_net(&[(400.0, 0.0)]);
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let added = insert_repeaters(&mut n, &mut p, &tech, &RepeaterConfig::default()).unwrap();
        assert!(added >= 4, "400um / 80um needs ~5 hops, added {added}");
        assert!(max_hop(&n, &p) <= 80.0 + 1e-6);
    }

    #[test]
    fn spread_sinks_get_a_tree() {
        let (mut n, mut p) =
            long_net(&[(300.0, 300.0), (320.0, 280.0), (-300.0, 250.0), (10.0, 5.0)]);
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let added = insert_repeaters(&mut n, &mut p, &tech, &RepeaterConfig::default()).unwrap();
        assert!(added >= 2, "two far quadrants need separate chains");
        assert!(max_hop(&n, &p) <= 80.0 + 1e-6);
        // Near sink stays directly connected to the driver.
        let first = n.net_by_name("n").unwrap();
        let near = n.cell_by_name("po3").unwrap();
        assert!(n.sinks(first).iter().any(|&pin| n.pin(pin).cell == near));
    }

    #[test]
    fn short_nets_are_untouched() {
        let (mut n, mut p) = long_net(&[(30.0, 20.0), (10.0, 40.0)]);
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let cells = n.cell_count();
        let added = insert_repeaters(&mut n, &mut p, &tech, &RepeaterConfig::default()).unwrap();
        assert_eq!(added, 0);
        assert_eq!(n.cell_count(), cells);
    }

    #[test]
    fn depth_bound_prevents_runaway() {
        let (mut n, mut p) = long_net(&[(900.0, 900.0)]);
        let tech = TechConfig::homogeneous_28_28(6, 6);
        let cfg = RepeaterConfig {
            max_seg_um: 5.0,
            max_depth: 3,
        };
        let added = insert_repeaters(&mut n, &mut p, &tech, &cfg).unwrap();
        assert!(added <= 3, "bounded by max_depth, got {added}");
    }
}

//! Half-perimeter wirelength (HPWL) estimation.
//!
//! HPWL is the standard pre-route wirelength proxy: the half-perimeter of
//! the bounding box of a net's pins. It drives the router's net ordering
//! and is the GNN's early-global-routing `wirelength` feature (Table II).

use gnnmls_netlist::{NetId, Netlist};

use crate::place::Placement;

/// HPWL of a single net in µm.
///
/// Tiers share the xy plane, so a 3D net's bounding box ignores z; the
/// F2F hop is accounted for separately by the router.
pub fn net_hpwl_um(netlist: &Netlist, placement: &Placement, net: NetId) -> f64 {
    let mut it = netlist.net(net).pins.iter();
    let first = match it.next() {
        Some(&p) => placement.loc(netlist.pin(p).cell),
        None => return 0.0,
    };
    let (mut x0, mut x1, mut y0, mut y1) = (first.x, first.x, first.y, first.y);
    for &p in it {
        let l = placement.loc(netlist.pin(p).cell);
        x0 = x0.min(l.x);
        x1 = x1.max(l.x);
        y0 = y0.min(l.y);
        y1 = y1.max(l.y);
    }
    (x1 - x0) + (y1 - y0)
}

/// Total HPWL of the design in µm.
pub fn total_hpwl_um(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist
        .net_ids()
        .map(|n| net_hpwl_um(netlist, placement, n))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::place::Point;
    use gnnmls_netlist::tech::TechNode;
    use gnnmls_netlist::{CellLibrary, NetlistBuilder, Tier};

    #[test]
    fn hpwl_is_bounding_box_half_perimeter() {
        let lib = CellLibrary::for_node(&TechNode::n28());
        let mut b = NetlistBuilder::new("w");
        let a = b.add_cell("a", lib.expect("PI"), Tier::Logic).unwrap();
        let g = b.add_cell("g", lib.expect("NAND2"), Tier::Logic).unwrap();
        let h = b.add_cell("h", lib.expect("PO"), Tier::Memory).unwrap();
        let n0 = b.add_net("n0").unwrap();
        b.connect_output(n0, a, 0).unwrap();
        b.connect_input(n0, g, 0).unwrap();
        b.connect_input(n0, g, 1).unwrap();
        let n1 = b.add_net("n1").unwrap();
        b.connect_output(n1, g, 0).unwrap();
        b.connect_input(n1, h, 0).unwrap();
        let n = b.finish().unwrap();

        let fp = Floorplan {
            width_um: 100.0,
            height_um: 100.0,
        };
        let p = Placement::from_locations(
            vec![
                Point::new(0.0, 0.0),   // a
                Point::new(30.0, 40.0), // g
                Point::new(10.0, 90.0), // h (other tier: z ignored)
            ],
            fp,
        );
        let n0 = n.net_by_name("n0").unwrap();
        let n1 = n.net_by_name("n1").unwrap();
        assert_eq!(net_hpwl_um(&n, &p, n0), 70.0);
        assert_eq!(net_hpwl_um(&n, &p, n1), 70.0);
        assert_eq!(total_hpwl_um(&n, &p), 140.0);
    }
}

//! Incremental frame assembly and writeback for the serve wire format.
//!
//! A frame is `[version: u8][len: u32 big-endian][payload: len bytes]`.
//! The blocking protocol code in `gnnmls-serve` reads a whole frame per
//! call; a reactor cannot — bytes arrive whenever the socket feels like
//! it, and a response may only partially fit the send buffer. These two
//! state machines carry a connection across any split:
//!
//! - [`FrameDecoder`] accumulates bytes and yields complete payloads.
//!   It validates eagerly: a foreign version byte is refused as soon as
//!   byte 0 arrives (before the length is even known), and a length
//!   above the configured cap is refused as soon as the 5-byte header
//!   completes — the decoder never allocates for a frame it will
//!   reject.
//! - [`WriteQueue`] holds encoded frames and tracks a byte offset into
//!   the frame currently being written, so a short write (or
//!   `WouldBlock`) resumes exactly where it stopped.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};

/// Bytes in a frame header: 1 version byte + 4 length bytes.
pub const FRAME_HEADER_LEN: usize = 5;

/// Why the decoder refused the stream. Both cases poison the
/// connection: the byte stream can no longer be trusted to be
/// frame-aligned, so the owner should notify and close.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Byte 0 of a frame was not the expected protocol version.
    Version {
        /// The version byte the peer sent.
        got: u8,
        /// The version this decoder speaks.
        want: u8,
    },
    /// The header announced a payload larger than the cap.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Version { got, want } => {
                write!(f, "peer speaks protocol version {got}, want {want}")
            }
            DecodeError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes one frame: version byte, big-endian length, payload.
///
/// Purely mechanical — length caps and serialization live with the
/// caller, which validates *before* encoding so nothing is ever
/// half-written.
pub fn encode_frame(version: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.push(version);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembly. Feed it bytes as they arrive; take
/// complete payloads out.
pub struct FrameDecoder {
    version: u8,
    max_frame: usize,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when the buffer empties so a
    /// long-lived chatty connection cannot grow it without bound.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder for the given protocol version and payload cap.
    pub fn new(version: u8, max_frame: usize) -> Self {
        Self {
            version,
            max_frame,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Appends raw bytes from the socket.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads from `r` until it would block, hits EOF, errors, or
    /// `budget` bytes have been consumed (fairness cap per readiness
    /// event; level-triggered polling re-reports leftovers). Returns
    /// `(bytes_read, saw_eof)`; `WouldBlock` is not an error.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, budget: usize) -> io::Result<(usize, bool)> {
        self.compact();
        let mut total = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        while total < budget {
            let want = chunk.len().min(budget - total);
            match r.read(&mut chunk[..want]) {
                Ok(0) => return Ok((total, true)),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok((total, false))
    }

    /// Takes the next complete payload, if one is buffered.
    ///
    /// Validation is eager: the version byte is checked the moment it
    /// is present and the announced length the moment the header
    /// completes, so garbage is refused before any payload is buffered
    /// for it. After an `Err` the decoder is poisoned — the stream is
    /// no longer frame-aligned and must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        let avail = self.buf.len() - self.pos;
        if avail == 0 {
            return Ok(None);
        }
        let got = self.buf[self.pos];
        if got != self.version {
            return Err(DecodeError::Version {
                got,
                want: self.version,
            });
        }
        if avail < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_be_bytes([
            self.buf[self.pos + 1],
            self.buf[self.pos + 2],
            self.buf[self.pos + 3],
            self.buf[self.pos + 4],
        ]) as usize;
        if len > self.max_frame {
            return Err(DecodeError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        if avail < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let start = self.pos + FRAME_HEADER_LEN;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Whether a partial frame is buffered (the peer started one and
    /// has not finished it). This is what arms a stall deadline.
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.pos
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 64 * 1024 {
            // A pathological interleaving could otherwise pin the
            // consumed prefix forever.
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Outgoing frames with partial-write tracking.
pub struct WriteQueue {
    frames: VecDeque<Vec<u8>>,
    /// Offset already written into `frames[0]`.
    offset: usize,
    buffered: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            frames: VecDeque::new(),
            offset: 0,
            buffered: 0,
        }
    }

    /// Queues one fully encoded frame.
    pub fn push(&mut self, frame: Vec<u8>) {
        self.buffered += frame.len();
        self.frames.push_back(frame);
    }

    /// Nothing left to write.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Bytes still queued (the backpressure signal: a loop pauses
    /// reading from a connection whose peer is not draining this).
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Writes as much as the socket accepts. Returns `Ok(true)` when
    /// the queue drained, `Ok(false)` when the socket would block with
    /// bytes still queued. A short write advances the offset so the
    /// next call resumes mid-frame.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while let Some(front) = self.frames.front() {
            match w.write(&front[self.offset..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.offset += n;
                    self.buffered -= n;
                    if self.offset == front.len() {
                        self.frames.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

impl Default for WriteQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: u8 = 2;
    const MAX: usize = 1024;

    #[test]
    fn one_byte_at_a_time_reassembles() {
        let payload = b"{\"id\":42}";
        let frame = encode_frame(V, payload);
        let mut dec = FrameDecoder::new(V, MAX);
        for (i, b) in frame.iter().enumerate() {
            dec.extend_from_slice(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame complete too early at byte {i}");
                assert!(dec.mid_frame());
            } else {
                assert_eq!(got.as_deref(), Some(&payload[..]));
            }
        }
        assert!(!dec.mid_frame(), "buffer empty after the frame");
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn pipelined_frames_come_out_in_order() {
        let mut bytes = Vec::new();
        for i in 0..5u8 {
            bytes.extend_from_slice(&encode_frame(V, &[i; 3]));
        }
        let mut dec = FrameDecoder::new(V, MAX);
        dec.extend_from_slice(&bytes);
        for i in 0..5u8 {
            assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&[i; 3][..]));
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn foreign_version_refused_on_byte_zero() {
        let mut dec = FrameDecoder::new(V, MAX);
        dec.extend_from_slice(&[1]);
        // One byte is enough: no length, no payload needed.
        assert_eq!(
            dec.next_frame().unwrap_err(),
            DecodeError::Version { got: 1, want: V }
        );
    }

    #[test]
    fn oversized_length_refused_at_header_without_buffering() {
        let mut dec = FrameDecoder::new(V, MAX);
        let mut hdr = vec![V];
        hdr.extend_from_slice(&((MAX + 1) as u32).to_be_bytes());
        dec.extend_from_slice(&hdr);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            DecodeError::TooLarge {
                len: MAX + 1,
                max: MAX
            }
        );
    }

    #[test]
    fn empty_payload_frame_is_legal() {
        let mut dec = FrameDecoder::new(V, MAX);
        dec.extend_from_slice(&encode_frame(V, b""));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn fill_from_respects_budget_and_reports_eof() {
        let frame = encode_frame(V, &[7u8; 100]);
        let mut dec = FrameDecoder::new(V, MAX);
        let mut src = io::Cursor::new(frame.clone());
        let (n, eof) = dec.fill_from(&mut src, 10).unwrap();
        assert_eq!(n, 10);
        assert!(!eof, "budget stop is not EOF");
        assert!(dec.next_frame().unwrap().is_none());
        let (n, eof) = dec.fill_from(&mut src, usize::MAX).unwrap();
        assert_eq!(n, frame.len() - 10);
        assert!(eof, "cursor drained to EOF");
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&[7u8; 100][..]));
    }

    /// A writer that accepts at most `cap` bytes per call and then
    /// pretends the socket buffer filled up.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        calls_until_block: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_until_block == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_until_block -= 1;
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_short_writes_and_backpressure() {
        let f1 = encode_frame(V, &[1u8; 50]);
        let f2 = encode_frame(V, &[2u8; 30]);
        let mut q = WriteQueue::new();
        q.push(f1.clone());
        q.push(f2.clone());
        assert_eq!(q.buffered(), f1.len() + f2.len());

        let mut w = Throttled {
            out: Vec::new(),
            cap: 7,
            calls_until_block: 3,
        };
        // Three short writes of 7 bytes, then WouldBlock.
        assert!(!q.flush_to(&mut w).unwrap());
        assert_eq!(w.out.len(), 21);
        assert_eq!(q.buffered(), f1.len() + f2.len() - 21);

        // The peer drains; writing resumes exactly where it stopped.
        w.calls_until_block = usize::MAX;
        assert!(q.flush_to(&mut w).unwrap());
        assert!(q.is_empty());
        assert_eq!(q.buffered(), 0);
        let mut expect = f1;
        expect.extend_from_slice(&f2);
        assert_eq!(w.out, expect, "byte stream identical despite splits");
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let mut dec = FrameDecoder::new(V, 512 * 1024);
        // Push enough consumed frames to trip compaction.
        for _ in 0..3 {
            dec.extend_from_slice(&encode_frame(V, &[9u8; 40 * 1024]));
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert_eq!(dec.buffered(), 0);
        assert!(!dec.mid_frame());
    }
}

//! **gnnmls-reactor** — a zero-dependency readiness-driven event loop
//! core for the GNN-MLS serve tier.
//!
//! The serve daemon and the cluster front used to run one OS thread per
//! connection with blocking reads: slow clients pinned threads and the
//! stall-timeout machinery existed only to paper over that. This crate
//! provides the primitives a single-threaded reactor needs so the I/O
//! plane scales to tens of thousands of connections while the worker
//! pool stays unchanged behind the job queue:
//!
//! - [`Poller`] — level-triggered readiness over `epoll` on Linux with
//!   a portable `poll(2)` fallback on other Unixes. Both backends are
//!   raw `extern "C"` declarations against the libc that `std` already
//!   links, keeping the workspace's zero-dependency stance.
//! - [`FrameDecoder`] / [`WriteQueue`] — incremental, partial-read /
//!   partial-write safe state machines for the serve wire format
//!   (1 version byte + 4-byte big-endian length + payload). The
//!   decoder refuses a foreign version the moment byte 0 lands and an
//!   oversized frame the moment the header completes — it never
//!   buffers an attacker-controlled length.
//! - [`TimerWheel`] — a hashed timer wheel with slot-granularity
//!   coalescing. Stall deadlines, retry backoffs, and micro-batching
//!   windows all live here instead of in per-connection threads.
//! - [`Waker`] — a self-pipe (socketpair) waker so worker threads can
//!   hand completed responses back to the loop.
//! - [`net`] — nonblocking `connect` (for backend forwards multiplexed
//!   on the same loop) and an `RLIMIT_NOFILE` raiser for high-
//!   concurrency soaks.
//!
//! Everything here is transport-layer only: the crate moves bytes and
//! deadlines, it never parses JSON or knows what a request is. The
//! serve crate layers protocol semantics (typed errors, admission,
//! batching policy) on top.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stdout,
        clippy::print_stderr
    )
)]

#[cfg(not(unix))]
compile_error!("gnnmls-reactor supports Unix targets only (epoll on Linux, poll elsewhere)");

mod frame;
pub mod net;
mod poller;
mod timer;
mod waker;

pub use frame::{encode_frame, DecodeError, FrameDecoder, WriteQueue, FRAME_HEADER_LEN};
pub use poller::{Event, Interest, Poller};
pub use timer::TimerWheel;
pub use waker::{wake_pair, WakeReceiver, Waker};

//! Nonblocking connection establishment and fd-limit plumbing.
//!
//! The cluster front multiplexes backend forwards on the same loop as
//! client connections, so it must never block in `connect(2)`. On
//! Linux this module opens the socket raw (`SOCK_NONBLOCK`), issues the
//! connect, and hands back a `std::net::TcpStream` mid-handshake —
//! `EINPROGRESS` is success here; the loop learns the outcome from the
//! first writability event via [`connect_outcome`]. Other Unixes fall
//! back to a brief blocking connect (loopback resolves immediately),
//! keeping the crate portable without a full sockaddr layer per OS.

use std::io;
use std::net::{SocketAddr, TcpStream};

/// Starts a TCP connect without blocking. The returned stream is
/// nonblocking and may still be mid-handshake: register it for
/// *writable* interest and call [`connect_outcome`] on the first
/// writability (or hangup) event.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    imp::connect_nonblocking(addr)
}

/// Resolves the outcome of a nonblocking connect once the socket
/// reported writable: `Ok(())` means connected, `Err` carries the
/// typed OS error (e.g. `ConnectionRefused`).
pub fn connect_outcome(stream: &TcpStream) -> io::Result<()> {
    // SO_ERROR is surfaced by std as take_error(); a clean handshake
    // leaves it empty.
    match stream.take_error()? {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Raises the process soft `RLIMIT_NOFILE` toward `want` (capped at
/// the hard limit). Returns the resulting soft limit. The 10k+
/// concurrent-connection soak needs this; normal serving does not.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    imp::raise_nofile_limit(want)
}

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::{FromRawFd, RawFd};

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000; // O_NONBLOCK
    const SOCK_CLOEXEC: i32 = 0o2000000; // O_CLOEXEC
    const EINPROGRESS: i32 = 115;
    const RLIMIT_NOFILE: i32 = 7;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        sin6_family: u16,
        sin6_port: u16, // network byte order
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
        fn close(fd: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    pub(super) fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: plain syscall.
        let fd: RawFd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockAddrIn {
                    sin_family: AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                    sin_zero: [0; 8],
                };
                // SAFETY: `sa` is a valid sockaddr_in for the call's
                // duration and the length matches.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockAddrIn).cast(),
                        std::mem::size_of::<SockAddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(v6) => {
                let sa = SockAddrIn6 {
                    sin6_family: AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: v6.flowinfo(),
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                // SAFETY: as above, for sockaddr_in6.
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockAddrIn6).cast(),
                        std::mem::size_of::<SockAddrIn6>() as u32,
                    )
                }
            }
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINPROGRESS) {
                // SAFETY: fd came from socket() above and escapes nowhere.
                unsafe { close(fd) };
                return Err(err);
            }
        }
        // SAFETY: we own this freshly created fd.
        Ok(unsafe { TcpStream::from_raw_fd(fd) })
    }

    pub(super) fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: lim is a valid out-pointer.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.rlim_cur >= want {
            return Ok(lim.rlim_cur);
        }
        let target = want.min(lim.rlim_max);
        let new = RLimit {
            rlim_cur: target,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: new is a valid in-pointer.
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(target)
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    pub(super) fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
        // Portable fallback: a brief blocking connect, then nonblocking
        // mode. Loopback (the only deployment this fallback serves)
        // resolves the handshake immediately.
        let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(250))?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    pub(super) fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "RLIMIT_NOFILE raising is implemented on Linux only",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Interest, Poller};
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn nonblocking_connect_completes_against_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(addr).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(stream.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        connect_outcome(&stream).expect("handshake succeeded");
        // The accept side sees it too.
        listener.accept().expect("accepted");
    }

    #[test]
    fn refused_connect_surfaces_a_typed_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(addr) {
            // Immediate refusal at connect() time is legal...
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused),
            Ok(stream) => {
                // ...but loopback usually reports it on writability.
                let mut poller = Poller::new().unwrap();
                poller
                    .register(stream.as_raw_fd(), 1, Interest::WRITABLE)
                    .unwrap();
                let mut events = Vec::new();
                poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .unwrap();
                let err = connect_outcome(&stream).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
            }
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let got = raise_nofile_limit(1024).unwrap();
        assert!(got >= 1024 || got > 0);
        // Idempotent: asking again never lowers it.
        let again = raise_nofile_limit(1024).unwrap();
        assert!(again >= got.min(1024));
    }
}

//! Level-triggered readiness polling: `epoll` on Linux, `poll(2)` on
//! other Unixes.
//!
//! Both backends speak through raw `extern "C"` declarations against
//! the libc `std` already links — no external crate. Level-triggered
//! semantics were chosen deliberately: a connection whose buffered data
//! was not fully drained (read budgets cap per-wakeup work for
//! fairness) is simply reported readable again on the next wait, so
//! the loop never needs edge-triggered re-arm bookkeeping.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event, translated out of the OS representation.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data (or a hangup) can be read without blocking.
    pub readable: bool,
    /// The socket can accept more bytes without blocking.
    pub writable: bool,
    /// Error or hangup condition; the owner should tear down.
    pub hangup: bool,
}

/// Caps one `wait` batch; level-triggered readiness re-reports anything
/// that did not fit.
const MAX_EVENTS: usize = 1024;

/// Rounds a timeout up to whole milliseconds for the C APIs, clamping
/// into the `i32` range (`None` blocks forever).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if d > Duration::from_millis(ms as u64) {
                // Round a sub-millisecond remainder up so timers never
                // fire early.
                (ms as i64).saturating_add(1).min(i32::MAX as i64) as i32
            } else {
                (ms as i64).min(i32::MAX as i64) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll bindings (Linux).

    use super::{timeout_ms, Event, Interest, MAX_EVENTS};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The kernel ABI packs `epoll_event` on x86-64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000; // O_CLOEXEC
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub(super) struct Backend {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; DEL ignores the pointer.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub(super) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(super) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let n = loop {
                // SAFETY: the buffer holds MAX_EVENTS initialized slots.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry with the same timeout; the loop's timer
                // wheel re-derives deadlines each iteration anyway.
            };
            for raw in &self.buf[..n] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: closing the fd we created.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable `poll(2)` fallback for non-Linux Unixes.

    use super::{timeout_ms, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    pub(super) struct Backend {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
        index: HashMap<RawFd, usize>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Self> {
            Ok(Self {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: HashMap::new(),
            })
        }

        pub(super) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub(super) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let Some(&i) = self.index.get(&fd) else {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            };
            self.fds[i].events = mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let Some(i) = self.index.remove(&fd) else {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            };
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            if i < self.fds.len() {
                self.index.insert(self.fds[i].fd, i);
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            for f in &mut self.fds {
                f.revents = 0;
            }
            let n = loop {
                // SAFETY: the fds buffer is valid for the call.
                let rc = unsafe {
                    poll(
                        self.fds.as_mut_ptr(),
                        self.fds.len() as u64,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n > 0 {
                for (f, &token) in self.fds.iter().zip(&self.tokens) {
                    if f.revents == 0 {
                        continue;
                    }
                    events.push(Event {
                        token,
                        readable: f.revents & (POLLIN | POLLHUP) != 0,
                        writable: f.revents & POLLOUT != 0,
                        hangup: f.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(n)
        }
    }
}

/// Readiness poller: register fds with a `u64` token, wait for events.
///
/// One instance belongs to exactly one loop thread; it is not `Sync`
/// and never needs to be — cross-thread wakeups go through [`crate::Waker`].
pub struct Poller {
    backend: sys::Backend,
    registered: HashMap<RawFd, u64>,
}

impl Poller {
    /// Creates a poller (an epoll instance on Linux).
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            backend: sys::Backend::new()?,
            registered: HashMap::new(),
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)?;
        self.registered.insert(fd, token);
        Ok(())
    }

    /// Changes the interest (and/or token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)?;
        self.registered.insert(fd, token);
        Ok(())
    }

    /// Removes `fd` from the poller. Call *before* closing the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.registered.remove(&fd);
        self.backend.deregister(fd)
    }

    /// Number of currently registered fds.
    pub fn registered(&self) -> usize {
        self.registered.len()
    }

    /// Waits up to `timeout` (forever when `None`) and appends ready
    /// events to `events` (which is **not** cleared here). Returns the
    /// number of fds that reported readiness; `0` means the timeout
    /// elapsed.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        self.backend.wait(events, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_and_clears() {
        let (mut a, mut b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "nothing readable yet");

        b.write_all(b"x").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: still readable until drained.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let _ = a.read(&mut buf).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained fd no longer readable");
    }

    #[test]
    fn writable_interest_and_modify() {
        let (a, _b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 3, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Drop write interest: an idle socket reports nothing.
        poller.modify(a.as_raw_fd(), 3, Interest::READABLE).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn hangup_reports_readable_for_eof_drain() {
        let (a, b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 9).unwrap();
        assert!(ev.readable, "hangup must be observable as readable EOF");
    }

    #[test]
    fn deregister_silences_the_fd() {
        let (a, mut b) = pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        poller.deregister(a.as_raw_fd()).unwrap();
        b.write_all(b"y").unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd must not report");
        assert_eq!(poller.registered(), 0);
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(200))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(5))), 5);
        let mut poller = Poller::new().unwrap();
        let t0 = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(15)))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(14));
    }
}

//! A hashed timer wheel with slot-granularity coalescing.
//!
//! The serve loop needs thousands of cheap, coarse timers: per-
//! connection stall deadlines, retry backoffs, micro-batching windows.
//! A wheel quantizes every deadline up to its slot granularity, so
//! timers landing in the same slot fire together on one wakeup —
//! exactly the coalescing behavior a batching window wants, and never
//! *early* (a deadline is always rounded up).
//!
//! Keys are caller-chosen `u64`s (the serve loop tags them with a
//! purpose in the high byte). Re-scheduling a key moves it; cancelling
//! is O(1) lazy removal (the slot entry is skipped at fire time).

use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Entry {
    key: u64,
    tick: u64,
}

/// The wheel. Single-threaded, owned by the loop.
pub struct TimerWheel {
    start: Instant,
    granularity: Duration,
    slots: Vec<Vec<Entry>>,
    /// key → the tick it is armed for. The single source of truth;
    /// slot entries whose tick disagrees are stale and skipped.
    armed: HashMap<u64, u64>,
    /// Next tick to sweep.
    cursor: u64,
}

impl TimerWheel {
    /// A wheel with the given slot granularity and slot count. The
    /// granularity is the coalescing quantum — 1ms is a good default
    /// for connection stalls; a micro-batching loop may want finer.
    pub fn new(granularity: Duration, slots: usize) -> Self {
        let slots = slots.max(1);
        Self {
            start: Instant::now(),
            granularity: granularity.max(Duration::from_micros(1)),
            slots: (0..slots).map(|_| Vec::new()).collect(),
            armed: HashMap::new(),
            cursor: 0,
        }
    }

    /// Ticks since `start`, rounding *up* (deadlines never fire early).
    fn tick_for(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.start);
        let g = self.granularity.as_nanos().max(1);
        since.as_nanos().div_ceil(g) as u64
    }

    /// Ticks fully elapsed at `now`, rounding down.
    fn tick_elapsed(&self, now: Instant) -> u64 {
        let since = now.saturating_duration_since(self.start);
        let g = self.granularity.as_nanos().max(1);
        (since.as_nanos() / g) as u64
    }

    /// Arms (or re-arms) `key` to fire no earlier than `at`.
    pub fn schedule(&mut self, key: u64, at: Instant) {
        let tick = self.tick_for(at).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.armed.insert(key, tick);
        self.slots[slot].push(Entry { key, tick });
    }

    /// Convenience: arms `key` to fire `after` from now.
    pub fn schedule_after(&mut self, key: u64, after: Duration) {
        self.schedule(key, Instant::now() + after);
    }

    /// Disarms `key` (no-op when not armed).
    pub fn cancel(&mut self, key: u64) {
        self.armed.remove(&key);
    }

    /// Whether `key` is currently armed.
    pub fn is_armed(&self, key: u64) -> bool {
        self.armed.contains_key(&key)
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// No timers armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// When the next armed timer is due, for deriving the poll timeout.
    /// `None` when nothing is armed.
    pub fn next_deadline(&self) -> Option<Instant> {
        let tick = *self.armed.values().min()?;
        Some(self.start + mul_duration(self.granularity, tick))
    }

    /// Pops every timer due at `now` into `out` (appended, not
    /// cleared), disarming them. Timers in the same slot fire together
    /// regardless of their sub-granularity spacing.
    pub fn pop_expired(&mut self, now: Instant, out: &mut Vec<u64>) {
        let now_tick = self.tick_elapsed(now);
        if self.armed.is_empty() {
            // Nothing armed: fast-forward so a long idle period costs
            // nothing to sweep later.
            self.cursor = self.cursor.max(now_tick.saturating_add(1));
            return;
        }
        while self.cursor <= now_tick {
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            let due = self.cursor;
            self.slots[slot].retain(|e| {
                if e.tick != due {
                    // A future lap of the wheel, or a stale entry for a
                    // re-scheduled key: keep only if still meaningful.
                    return self.armed.get(&e.key).is_some_and(|&t| t == e.tick);
                }
                if self.armed.get(&e.key) == Some(&due) {
                    self.armed.remove(&e.key);
                    out.push(e.key);
                }
                false
            });
            self.cursor += 1;
            if self.armed.is_empty() {
                self.cursor = self.cursor.max(now_tick.saturating_add(1));
                break;
            }
        }
    }
}

/// `Duration * u64` without the panicking `u32` cap of `Duration::mul`.
fn mul_duration(d: Duration, n: u64) -> Duration {
    Duration::from_nanos((d.as_nanos() as u64).saturating_mul(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel_ms(slots: usize) -> TimerWheel {
        TimerWheel::new(Duration::from_millis(1), slots)
    }

    #[test]
    fn fires_in_order_and_never_early() {
        let mut w = wheel_ms(64);
        let t0 = Instant::now();
        w.schedule(1, t0 + Duration::from_millis(5));
        w.schedule(2, t0 + Duration::from_millis(2));
        assert_eq!(w.len(), 2);

        let mut out = Vec::new();
        w.pop_expired(t0 + Duration::from_millis(1), &mut out);
        assert!(out.is_empty(), "nothing due yet");

        w.pop_expired(t0 + Duration::from_millis(3), &mut out);
        assert_eq!(out, vec![2]);

        out.clear();
        w.pop_expired(t0 + Duration::from_millis(10), &mut out);
        assert_eq!(out, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_slot_timers_coalesce_into_one_wakeup() {
        // 1ms granularity: deadlines 100µs apart land in the same slot
        // and fire together — the micro-batching window contract.
        let mut w = wheel_ms(64);
        let t0 = Instant::now();
        for k in 0..8u64 {
            w.schedule(k, t0 + Duration::from_micros(2_000 + 100 * k));
        }
        // All quantize up to the 3ms tick.
        let dl = w.next_deadline().unwrap();
        let mut out = Vec::new();
        w.pop_expired(dl, &mut out);
        out.sort_unstable();
        assert_eq!(out, (0..8).collect::<Vec<_>>(), "one slot, one wakeup");
    }

    #[test]
    fn cancel_prevents_fire_and_reschedule_moves() {
        let mut w = wheel_ms(16);
        let t0 = Instant::now();
        w.schedule(7, t0 + Duration::from_millis(2));
        w.cancel(7);
        assert!(!w.is_armed(7));
        let mut out = Vec::new();
        w.pop_expired(t0 + Duration::from_millis(5), &mut out);
        assert!(out.is_empty());

        // Re-schedule pushes the deadline out; only the new one fires.
        w.schedule(8, t0 + Duration::from_millis(6));
        w.schedule(8, t0 + Duration::from_millis(20));
        w.pop_expired(t0 + Duration::from_millis(10), &mut out);
        assert!(out.is_empty(), "old deadline must not fire");
        w.pop_expired(t0 + Duration::from_millis(25), &mut out);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn wheel_wraparound_does_not_fire_future_laps() {
        // 4 slots of 1ms: a 2ms and a 6ms timer share slot index 2.
        let mut w = wheel_ms(4);
        let t0 = Instant::now();
        w.schedule(1, t0 + Duration::from_millis(2));
        w.schedule(2, t0 + Duration::from_millis(6));
        let mut out = Vec::new();
        w.pop_expired(t0 + Duration::from_millis(3), &mut out);
        assert_eq!(out, vec![1], "the next-lap timer stays armed");
        assert!(w.is_armed(2));
        out.clear();
        w.pop_expired(t0 + Duration::from_millis(7), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut w = wheel_ms(32);
        assert!(w.next_deadline().is_none());
        let t0 = Instant::now();
        w.schedule(1, t0 + Duration::from_millis(9));
        w.schedule(2, t0 + Duration::from_millis(4));
        let dl = w.next_deadline().unwrap();
        assert!(dl <= t0 + Duration::from_millis(6), "min deadline wins");
        w.cancel(2);
        let dl = w.next_deadline().unwrap();
        assert!(dl >= t0 + Duration::from_millis(8));
    }

    #[test]
    fn long_idle_gap_is_cheap_and_correct() {
        let mut w = wheel_ms(8);
        let t0 = Instant::now();
        let mut out = Vec::new();
        // Idle sweep far into the future with nothing armed.
        w.pop_expired(t0 + Duration::from_secs(5), &mut out);
        assert!(out.is_empty());
        // A timer armed after the gap still fires (cursor must not
        // have run past schedulable ticks).
        w.schedule(3, t0 + Duration::from_secs(5) + Duration::from_millis(2));
        w.pop_expired(
            t0 + Duration::from_secs(5) + Duration::from_millis(4),
            &mut out,
        );
        assert_eq!(out, vec![3]);
    }
}

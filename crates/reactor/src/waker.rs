//! Cross-thread wakeups via a self-pipe (a nonblocking socketpair).
//!
//! Worker threads finish jobs behind the bounded queue; the loop owns
//! every socket. The handoff is a shared completion queue plus this
//! waker: the worker pushes its response and writes one byte into the
//! pipe, the loop's poller reports the read end readable, drains it,
//! and flushes the completions. A full pipe is fine — `WouldBlock`
//! means a wakeup is already pending, which is all a wakeup means.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// The sending half. Clone it (cheaply, via [`Waker::try_clone`]) or
/// share one behind an `Arc`; `wake` takes `&self`.
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Signals the loop. Never blocks; an already-pending wakeup is
    /// collapsed into one.
    pub fn wake(&self) {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {} // already pending
            Err(_) => {}                                          // loop is gone; nothing to wake
        }
    }

    /// An independent handle to the same pipe.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }
}

/// The receiving half, registered with the loop's poller.
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// The fd to register for readable interest.
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Drains all pending wakeup bytes (coalescing any number of
    /// `wake` calls into this one readiness event).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => break, // every sender hung up
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }
}

/// Creates a connected, nonblocking waker pair.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Interest, Poller};
    use std::time::Duration;

    #[test]
    fn wake_is_visible_to_the_poller_and_drains() {
        let (waker, mut rx) = wake_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.raw_fd(), 1, Interest::READABLE).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "no wakeup pending");

        // Many wakes from another thread coalesce into one readiness.
        let w2 = waker.try_clone().unwrap();
        std::thread::spawn(move || {
            for _ in 0..1000 {
                w2.wake();
            }
        })
        .join()
        .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        rx.drain();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained pipe is quiet");

        // A wake after the drain is seen again.
        waker.wake();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
    }

    #[test]
    fn wake_never_blocks_even_when_pipe_is_full() {
        let (waker, _rx) = wake_pair().unwrap();
        // Way beyond any socket buffer: must return promptly every time.
        for _ in 0..200_000 {
            waker.wake();
        }
    }
}

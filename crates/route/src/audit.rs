//! Route-DB invariant auditor.
//!
//! The router's output is consumed by STA, DFT, PDN, the oracle, and
//! the serve daemon — none of which re-derive it. A corrupted or
//! inconsistent [`RouteDb`] (bad checkpoint, bit-rot, a routing bug)
//! would silently poison every downstream number. This module proves
//! the DB against the invariants the router guarantees:
//!
//! - **Structure**: one entry per net in [`gnnmls_netlist::NetId`]
//!   order; every tree is a well-formed arborescence (`parent[0] == 0`,
//!   `parent[i] < i`), node ids fit the grid, consecutive parent/child
//!   nodes are grid neighbors (a Manhattan step in-layer or a z±1 via),
//!   sink records match the netlist's sink count.
//! - **Edge bookkeeping**: per-net `f2f_crossings` and `wirelength_um`
//!   equal a recount from the tree; `edge_f2f` flags mark exactly the
//!   bond-crossing vias.
//! - **MLS legality**: `is_mls` is exactly "single-die net occupying
//!   the other die", and only where the [`MlsPolicy`] permits it
//!   (never under `Disabled`, only flagged nets under `PerNet`).
//! - **Capacity** ([`AuditMode::Full`] only): edge usage recomputed
//!   from all trees never exceeds layer/F2F capacity except on nets
//!   the router itself flagged `overflowed`; the summary's aggregates
//!   (`f2f_pads`, counts, total wirelength) match the recount.
//!
//! [`AuditMode::Cheap`] skips the O(edges) usage recount and is meant
//! to run on every serve warm cache hit; `Full` runs post-stage in the
//! flow and after a session build.

use std::fmt;

use gnnmls_netlist::Netlist;

use crate::db::RouteDb;
use crate::grid::RoutingGrid;
use crate::policy::MlsPolicy;
use crate::tree::RouteTree;

/// How much work the auditor does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditMode {
    /// Per-net structure + summary consistency, O(nets + tree nodes).
    /// No global usage recount — safe to run on every warm cache hit.
    Cheap,
    /// Everything, including the O(edges) usage/capacity recount.
    Full,
}

/// One violated invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditViolation {
    /// Which invariant failed (stable, kebab-case).
    pub check: &'static str,
    /// The offending net's index, when the violation is per-net.
    pub net: Option<u32>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.net {
            Some(n) => write!(f, "{} (net {}): {}", self.check, n, self.detail),
            None => write!(f, "{}: {}", self.check, self.detail),
        }
    }
}

/// Stop collecting after this many violations: a corrupt DB fails every
/// net the same way, and one screenful is enough to diagnose it.
const MAX_VIOLATIONS: usize = 64;

struct Report {
    violations: Vec<AuditViolation>,
}

impl Report {
    fn push(&mut self, check: &'static str, net: Option<u32>, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(AuditViolation { check, net, detail });
        }
    }

    fn full(&self) -> bool {
        self.violations.len() >= MAX_VIOLATIONS
    }
}

/// Audits `db` against `netlist`, `grid`, and the `policy` it was
/// routed under. Returns every violated invariant (empty = clean),
/// capped at a screenful.
pub fn audit_route_db(
    netlist: &Netlist,
    grid: &RoutingGrid,
    policy: &MlsPolicy,
    db: &RouteDb,
    mode: AuditMode,
) -> Vec<AuditViolation> {
    let mut rep = Report {
        violations: Vec::new(),
    };

    if db.nets.len() != netlist.net_count() {
        rep.push(
            "net-count",
            None,
            format!(
                "route DB has {} nets, netlist has {}",
                db.nets.len(),
                netlist.net_count()
            ),
        );
        // Per-net checks index the netlist by position; bail here.
        return rep.violations;
    }

    for (i, r) in db.nets.iter().enumerate() {
        if rep.full() {
            break;
        }
        let ni = i as u32;
        if r.net.index() != i {
            rep.push(
                "net-order",
                Some(ni),
                format!("entry {} records net {}", i, r.net.index()),
            );
            continue;
        }
        if !tree_well_formed(&mut rep, ni, &r.tree, grid) {
            continue;
        }

        let sinks = netlist.sinks(r.net).len();
        if r.tree.sink_node.len() != sinks {
            rep.push(
                "sink-count",
                Some(ni),
                format!(
                    "{} sink records for {} netlist sinks",
                    r.tree.sink_node.len(),
                    sinks
                ),
            );
        }

        let f2f = r.tree.f2f_crossings();
        if r.f2f_crossings != f2f {
            rep.push(
                "f2f-recount",
                Some(ni),
                format!(
                    "recorded {} F2F crossings, tree has {}",
                    r.f2f_crossings, f2f
                ),
            );
        }
        let wl = r.tree.wirelength_um(grid);
        if !close(r.wirelength_um, wl) {
            rep.push(
                "wirelength-recount",
                Some(ni),
                format!("recorded {} µm, tree measures {} µm", r.wirelength_um, wl),
            );
        }

        // MLS legality: is_mls is exactly "2D net off its home die",
        // and the policy must permit that net to leave home.
        let home = netlist.net_tier(r.net);
        let borrows = home.is_some_and(|h| r.tree.uses_other_tier(grid, h));
        if r.is_mls != borrows {
            rep.push(
                "mls-flag",
                Some(ni),
                format!(
                    "is_mls={} but tree borrows other die: {}",
                    r.is_mls, borrows
                ),
            );
        }
        if borrows {
            let permitted = match policy {
                MlsPolicy::Disabled => false,
                MlsPolicy::PerNet(flags) => flags.get(i).copied().unwrap_or(false),
                // Region sharing is a per-g-cell grant; permission needs
                // the share map, which the DB does not carry.
                MlsPolicy::SotaRegionSharing { .. } => true,
            };
            if !permitted {
                rep.push(
                    "mls-policy",
                    Some(ni),
                    format!("net left its home die under {policy:?}"),
                );
            }
        }
    }

    audit_summary(&mut rep, db);
    if mode == AuditMode::Full {
        audit_capacity(&mut rep, grid, db);
    }
    rep.violations
}

/// Tree structure: arborescence order, grid-neighbor edges, honest
/// `edge_f2f` flags, in-range sink records. Returns false when the
/// tree is too broken for the per-net recounts to be meaningful.
fn tree_well_formed(rep: &mut Report, ni: u32, tree: &RouteTree, grid: &RoutingGrid) -> bool {
    let n = tree.nodes.len();
    if n == 0 {
        rep.push("tree-empty", Some(ni), "no nodes".into());
        return false;
    }
    if tree.parent.len() != n || tree.edge_f2f.len() != n {
        rep.push(
            "tree-shape",
            Some(ni),
            format!(
                "{} nodes, {} parents, {} edge flags",
                n,
                tree.parent.len(),
                tree.edge_f2f.len()
            ),
        );
        return false;
    }
    if tree.parent[0] != 0 {
        rep.push(
            "tree-root",
            Some(ni),
            format!("root parent is {}", tree.parent[0]),
        );
        return false;
    }
    let node_count = grid.node_count() as u32;
    for (i, &node) in tree.nodes.iter().enumerate() {
        if node >= node_count {
            rep.push(
                "node-range",
                Some(ni),
                format!("node {node} outside grid of {node_count}"),
            );
            return false;
        }
        if i == 0 {
            continue;
        }
        let p = tree.parent[i];
        if p as usize >= i {
            rep.push(
                "tree-order",
                Some(ni),
                format!("node {i} has parent {p} (children must follow parents)"),
            );
            return false;
        }
        let (xa, ya, za) = grid.coords(tree.nodes[p as usize]);
        let (xb, yb, zb) = grid.coords(node);
        let in_layer = za == zb && xa.abs_diff(xb) + ya.abs_diff(yb) == 1;
        let via = xa == xb && ya == yb && za.abs_diff(zb) == 1;
        if !in_layer && !via {
            rep.push(
                "edge-neighbors",
                Some(ni),
                format!("({xa},{ya},{za}) -> ({xb},{yb},{zb}) is not a grid step"),
            );
            return false;
        }
        let crosses_bond = via && grid.is_f2f_via(za.min(zb));
        if tree.edge_f2f[i] != crosses_bond {
            rep.push(
                "edge-f2f-flag",
                Some(ni),
                format!(
                    "edge {i} flagged {}, crosses bond: {crosses_bond}",
                    tree.edge_f2f[i]
                ),
            );
            return false;
        }
    }
    for &s in &tree.sink_node {
        if s as usize >= n {
            rep.push(
                "sink-range",
                Some(ni),
                format!("sink record {s} outside tree of {n} nodes"),
            );
            return false;
        }
    }
    true
}

/// Summary aggregates must equal a recount over the per-net records.
fn audit_summary(rep: &mut Report, db: &RouteDb) {
    let s = &db.summary;
    let mls = db.nets.iter().filter(|r| r.is_mls).count();
    if s.mls_net_count != mls {
        rep.push(
            "summary-mls",
            None,
            format!("summary says {} MLS nets, recount {}", s.mls_net_count, mls),
        );
    }
    let over = db.nets.iter().filter(|r| r.overflowed).count();
    if s.overflowed_nets != over {
        rep.push(
            "summary-overflow",
            None,
            format!(
                "summary says {} overflowed, recount {}",
                s.overflowed_nets, over
            ),
        );
    }
    let pat_nets = db.nets.iter().filter(|r| r.pattern_sinks > 0).count();
    let pat_sinks: usize = db.nets.iter().map(|r| r.pattern_sinks as usize).sum();
    if s.pattern_fallback_nets != pat_nets || s.pattern_fallback_sinks != pat_sinks {
        rep.push(
            "summary-pattern",
            None,
            format!(
                "summary says {}/{} pattern nets/sinks, recount {}/{}",
                s.pattern_fallback_nets, s.pattern_fallback_sinks, pat_nets, pat_sinks
            ),
        );
    }
    let wl_m: f64 = db.nets.iter().map(|r| r.wirelength_um).sum::<f64>() / 1.0e6;
    if !close(s.total_wirelength_m, wl_m) {
        rep.push(
            "summary-wirelength",
            None,
            format!(
                "summary says {} m, recount {} m",
                s.total_wirelength_m, wl_m
            ),
        );
    }
}

/// Recomputes edge usage from every tree (mirroring the router's
/// `apply_usage` indexing) and checks capacity plus the summary's
/// F2F pad count. Over-capacity edges are legal only on nets the
/// router itself gave up on (`overflowed`).
fn audit_capacity(rep: &mut Report, grid: &RoutingGrid, db: &RouteDb) {
    let (nx, ny) = (grid.nx, grid.ny);
    let per_layer = nx * ny;
    let mut usage_h = vec![0u32; per_layer * grid.nz()];
    let mut usage_v = vec![0u32; per_layer * grid.nz()];
    let mut usage_f2f = vec![0u32; per_layer];
    let edge_idx = |z: usize, x: usize, y: usize| (z * ny + y) * nx + x;

    for r in &db.nets {
        let tree = &r.tree;
        for i in 1..tree.nodes.len() {
            let (xa, ya, za) = grid.coords(tree.nodes[tree.parent[i] as usize]);
            let (xb, yb, zb) = grid.coords(tree.nodes[i]);
            if za == zb {
                if ya == yb {
                    usage_h[edge_idx(za, xa.min(xb), ya)] += 1;
                } else {
                    usage_v[edge_idx(za, xa, ya.min(yb))] += 1;
                }
            } else if grid.is_f2f_via(za.min(zb)) {
                usage_f2f[ya * nx + xa] += 1;
            }
        }
    }

    let pads: u64 = usage_f2f.iter().map(|&u| u64::from(u)).sum();
    if db.summary.f2f_pads as u64 != pads {
        rep.push(
            "summary-f2f-pads",
            None,
            format!(
                "summary says {} F2F pads, recount {}",
                db.summary.f2f_pads, pads
            ),
        );
    }

    // Every tree crossing an over-capacity edge must carry the router's
    // own `overflowed` flag — an unflagged overflow means the usage the
    // router accounted and the trees it stored have diverged.
    for r in &db.nets {
        if rep.full() {
            return;
        }
        let tree = &r.tree;
        let mut overflows = false;
        for i in 1..tree.nodes.len() {
            let (xa, ya, za) = grid.coords(tree.nodes[tree.parent[i] as usize]);
            let (xb, yb, zb) = grid.coords(tree.nodes[i]);
            if za == zb {
                let cap = u32::from(grid.layers[za].capacity);
                let u = if ya == yb {
                    usage_h[edge_idx(za, xa.min(xb), ya)]
                } else {
                    usage_v[edge_idx(za, xa, ya.min(yb))]
                };
                if u > cap {
                    overflows = true;
                    break;
                }
            } else if grid.is_f2f_via(za.min(zb))
                && usage_f2f[ya * nx + xa] > u32::from(grid.f2f_capacity)
            {
                overflows = true;
                break;
            }
        }
        if overflows && !r.overflowed {
            rep.push(
                "capacity",
                Some(r.net.index() as u32),
                "route crosses an over-capacity edge but is not flagged overflowed".into(),
            );
        }
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route_design, RouteConfig};
    use gnnmls_netlist::generators::{generate_maeri, MaeriConfig};
    use gnnmls_netlist::tech::TechConfig;
    use gnnmls_phys::{place, PlaceConfig};

    fn routed() -> (gnnmls_netlist::Netlist, RoutingGrid, RouteDb) {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let design = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let placement = place(&design.netlist, &PlaceConfig::default()).unwrap();
        let (db, grid) = route_design(
            &design.netlist,
            &placement,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                target_gcells: 24,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        (design.netlist, grid, db)
    }

    #[test]
    fn clean_route_db_audits_clean() {
        let (netlist, grid, db) = routed();
        for mode in [AuditMode::Cheap, AuditMode::Full] {
            let v = audit_route_db(&netlist, &grid, &MlsPolicy::Disabled, &db, mode);
            assert!(v.is_empty(), "{mode:?} audit found: {v:?}");
        }
    }

    #[test]
    fn corrupted_edge_count_is_caught() {
        let (netlist, grid, mut db) = routed();
        let idx = db.nets.iter().position(|r| r.tree.nodes.len() > 1).unwrap();
        db.nets[idx].f2f_crossings += 1;
        let v = audit_route_db(&netlist, &grid, &MlsPolicy::Disabled, &db, AuditMode::Cheap);
        assert!(
            v.iter().any(|v| v.check == "f2f-recount"),
            "corruption not caught: {v:?}"
        );
    }

    #[test]
    fn mls_under_disabled_policy_is_a_violation() {
        let (netlist, grid, mut db) = routed();
        // Forge an MLS flag on a net that never left home: the flag
        // recount catches it even without touching the tree.
        let idx = db.nets.iter().position(|r| !r.is_mls).unwrap();
        db.nets[idx].is_mls = true;
        let v = audit_route_db(&netlist, &grid, &MlsPolicy::Disabled, &db, AuditMode::Cheap);
        assert!(v.iter().any(|v| v.check == "mls-flag"), "{v:?}");
        assert!(v.iter().any(|v| v.check == "summary-mls"), "{v:?}");
    }

    #[test]
    fn truncated_db_is_caught() {
        let (netlist, grid, mut db) = routed();
        db.nets.pop();
        let v = audit_route_db(&netlist, &grid, &MlsPolicy::Disabled, &db, AuditMode::Cheap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "net-count");
    }

    #[test]
    fn mangled_tree_structure_is_caught() {
        let (netlist, grid, mut db) = routed();
        let idx = db.nets.iter().position(|r| r.tree.nodes.len() > 2).unwrap();
        // Teleport a node: the parent/child pair stops being neighbors.
        let far = grid.node(grid.nx - 1, grid.ny - 1, 0);
        let last = db.nets[idx].tree.nodes.len() - 1;
        db.nets[idx].tree.nodes[last] = far;
        let v = audit_route_db(&netlist, &grid, &MlsPolicy::Disabled, &db, AuditMode::Cheap);
        assert!(
            v.iter()
                .any(|v| v.check == "edge-neighbors" || v.check == "edge-f2f-flag"),
            "{v:?}"
        );
    }

    #[test]
    fn injected_audit_violation_fault_corrupts_the_db() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let design = generate_maeri(&MaeriConfig::pe16_bw4(), &tech).unwrap();
        let placement = place(&design.netlist, &PlaceConfig::default()).unwrap();
        let guard = gnnmls_faults::install(&gnnmls_faults::FaultPlan::single(
            gnnmls_faults::FaultSite::RouteAuditCorrupt,
            1,
        ));
        let (db, grid) = route_design(
            &design.netlist,
            &placement,
            &tech,
            MlsPolicy::Disabled,
            RouteConfig {
                target_gcells: 24,
                ..RouteConfig::default()
            },
        )
        .unwrap();
        drop(guard);
        let v = audit_route_db(
            &design.netlist,
            &grid,
            &MlsPolicy::Disabled,
            &db,
            AuditMode::Cheap,
        );
        assert!(
            v.iter().any(|v| v.check == "f2f-recount"),
            "injected corruption must be caught: {v:?}"
        );
    }
}

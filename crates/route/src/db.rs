//! Route database: per-net results plus design-level summaries.

use serde::{Deserialize, Serialize};

use gnnmls_netlist::{NetId, Tier};

use crate::grid::RoutingGrid;
use crate::tree::RouteTree;

/// The routed result for one net.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetRoute {
    /// The net.
    pub net: NetId,
    /// The route tree over grid nodes.
    pub tree: RouteTree,
    /// Routed wirelength, µm.
    pub wirelength_um: f64,
    /// F2F bond crossings consumed.
    pub f2f_crossings: u32,
    /// Whether this is an *MLS net*: a single-die net that borrowed the
    /// other die's metals (the paper's `#MLS Nets` metric counts these).
    pub is_mls: bool,
    /// Total load the driver sees: wire + via + pad + sink pin caps, fF.
    pub total_cap_ff: f64,
    /// Wire Elmore delay to each sink (aligned with `netlist.sinks`), ps,
    /// excluding the driver's drive resistance.
    pub sink_elmore_ps: Vec<f64>,
    /// Whether the final route still traverses an over-capacity edge.
    pub overflowed: bool,
    /// Sinks connected by the L-shaped pattern fallback because the A*
    /// search exhausted its expansion budget (graceful degradation; `0`
    /// for a fully maze-routed net).
    pub pattern_sinks: u32,
}

/// Aggregate routing metrics (rows of Tables IV–VI).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteSummary {
    /// Total wirelength in meters (the paper's `WL (m)`).
    pub total_wirelength_m: f64,
    /// Count of MLS nets.
    pub mls_net_count: usize,
    /// Total F2F signal pads consumed (3D nets + MLS crossings).
    pub f2f_pads: usize,
    /// Nets left routed through over-capacity edges.
    pub overflowed_nets: usize,
    /// Per-z-slice track utilization (used / capacity), 0..=1+.
    pub layer_utilization: Vec<f64>,
    /// F2F pad site utilization.
    pub f2f_utilization: f64,
    /// Nets with at least one sink on the pattern-route fallback.
    pub pattern_fallback_nets: usize,
    /// Total sinks that fell back maze → pattern.
    pub pattern_fallback_sinks: usize,
    /// Rip-up/reroute victims whose reroute failed and whose previous
    /// route was restored instead (per-net failure isolation).
    pub isolated_failures: usize,
}

/// All routed nets of a design.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteDb {
    /// One entry per net, indexed by [`NetId`].
    pub nets: Vec<NetRoute>,
    /// Aggregate metrics captured at the end of routing.
    pub summary: RouteSummary,
}

impl RouteDb {
    /// The route of a net.
    #[inline]
    pub fn route(&self, net: NetId) -> &NetRoute {
        &self.nets[net.index()]
    }

    /// Iterates over all MLS nets.
    pub fn mls_nets(&self) -> impl Iterator<Item = &NetRoute> {
        self.nets.iter().filter(|r| r.is_mls)
    }

    /// Nets whose route crosses the F2F bond at least once (3D nets plus
    /// MLS nets) — these are the opens the DFT strategies must cover.
    pub fn bond_crossing_nets(&self) -> impl Iterator<Item = &NetRoute> {
        self.nets.iter().filter(|r| r.f2f_crossings > 0)
    }

    /// Wirelength on a specific tier, µm (for per-die congestion reports).
    pub fn tier_wirelength_um(&self, grid: &RoutingGrid, tier: Tier) -> f64 {
        let mut wl = 0.0;
        for r in &self.nets {
            for i in 1..r.tree.nodes.len() {
                let (_, _, za) = grid.coords(r.tree.nodes[i]);
                let (_, _, zb) = grid.coords(r.tree.nodes[r.tree.parent[i] as usize]);
                if za == zb && grid.tier_of_z(za) == tier {
                    wl += grid.gcell_um;
                }
            }
        }
        wl
    }
}

//! The 3D routing grid: g-cells × a z-stack spanning both dies.
//!
//! z-order (bottom-up): logic M1 … logic M(top), **F2F bond interface**,
//! memory M(top) … memory M1. Logic cells pin at z = 0; memory cells pin
//! at the top-most z (their die's M1, since the memory die is flipped).

use serde::{Deserialize, Serialize};

use gnnmls_netlist::tech::{RouteDir, TechConfig};
use gnnmls_netlist::Tier;
use gnnmls_phys::Floorplan;

/// One z-slice of the grid: a metal layer of one die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridLayer {
    /// Which die the layer belongs to.
    pub tier: Tier,
    /// The die-local metal index (M1 = 1).
    pub metal: u8,
    /// Preferred routing direction; in-layer edges only run this way.
    pub dir: RouteDir,
    /// Wire resistance, kΩ per µm.
    pub r_kohm_per_um: f64,
    /// Wire capacitance, fF per µm.
    pub c_ff_per_um: f64,
    /// Routing tracks available per g-cell edge.
    pub capacity: u16,
}

/// The routing grid geometry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingGrid {
    /// G-cells in x.
    pub nx: usize,
    /// G-cells in y.
    pub ny: usize,
    /// G-cell edge length in µm.
    pub gcell_um: f64,
    /// All layers, bottom-up in z.
    pub layers: Vec<GridLayer>,
    /// Number of logic-die layers (the F2F bond sits between z =
    /// `logic_layers - 1` and z = `logic_layers`).
    pub logic_layers: usize,
    /// F2F bond pads available per g-cell.
    pub f2f_capacity: u16,
}

/// Fraction of tracks available for signal routing (the rest is pins,
/// power rails, and blockages).
const SIGNAL_TRACK_FRAC: f64 = 0.32;
/// Fraction of F2F pad sites available for signals.
const F2F_SITE_FRAC: f64 = 0.5;

impl RoutingGrid {
    /// Builds the grid for a floorplan and technology.
    ///
    /// `target_gcells` is the desired g-cell count along the die's width
    /// (clamped to 8..=192). `pdn_top_util_logic` / `pdn_top_util_memory`
    /// are the fractions of each die's *top-layer* tracks consumed by the
    /// power grid (Table IV's `U` column); those tracks are subtracted
    /// from signal capacity. In a Memory-on-Logic stack the logic die's
    /// PDN is much denser than the memory die's, which is what leaves the
    /// memory BEOL idle and makes MLS attractive.
    ///
    /// # Panics
    ///
    /// Panics if either utilization is outside `[0, 1]`.
    pub fn build(
        fp: &Floorplan,
        tech: &TechConfig,
        target_gcells: usize,
        pdn_top_util_logic: f64,
        pdn_top_util_memory: f64,
    ) -> Self {
        for u in [pdn_top_util_logic, pdn_top_util_memory] {
            assert!(
                (0.0..=1.0).contains(&u),
                "pdn_top_util must be within [0, 1]"
            );
        }
        let target = target_gcells.clamp(8, 192);
        let gcell_um = (fp.width_um / target as f64).max(0.5);
        let nx = (fp.width_um / gcell_um).ceil() as usize;
        let ny = (fp.height_um / gcell_um).ceil() as usize;

        let mut layers = Vec::new();
        let push_stack = |tier: Tier, flipped: bool, layers: &mut Vec<GridLayer>| {
            let stack = tech.stack(tier);
            let idxs: Vec<u8> = if flipped {
                (1..=stack.len() as u8).rev().collect()
            } else {
                (1..=stack.len() as u8).collect()
            };
            for i in idxs {
                let l = stack.layer(i);
                let mut cap = ((gcell_um / l.pitch_um) * SIGNAL_TRACK_FRAC)
                    .floor()
                    .max(1.0) as u16;
                if i as usize == stack.len() {
                    // The die's top metal shares tracks with the PDN.
                    let util = match tier {
                        Tier::Logic => pdn_top_util_logic,
                        Tier::Memory => pdn_top_util_memory,
                    };
                    cap = ((f64::from(cap)) * (1.0 - util)).floor().max(1.0) as u16;
                }
                layers.push(GridLayer {
                    tier,
                    metal: i,
                    dir: l.dir,
                    r_kohm_per_um: l.r_kohm_per_um,
                    c_ff_per_um: l.c_ff_per_um,
                    capacity: cap,
                });
            }
        };
        push_stack(Tier::Logic, false, &mut layers);
        let logic_layers = layers.len();
        push_stack(Tier::Memory, true, &mut layers);

        let f2f_capacity = ((gcell_um * gcell_um) / (tech.f2f.pitch_um * tech.f2f.pitch_um)
            * F2F_SITE_FRAC)
            .floor()
            .max(1.0) as u16;

        Self {
            nx,
            ny,
            gcell_um,
            layers,
            logic_layers,
            f2f_capacity,
        }
    }

    /// Total number of z-slices.
    #[inline]
    pub fn nz(&self) -> usize {
        self.layers.len()
    }

    /// Total grid nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.nz()
    }

    /// Packs (x, y, z) into a node id.
    #[inline]
    pub fn node(&self, x: usize, y: usize, z: usize) -> u32 {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz());
        ((z * self.ny + y) * self.nx + x) as u32
    }

    /// Unpacks a node id into (x, y, z).
    #[inline]
    pub fn coords(&self, node: u32) -> (usize, usize, usize) {
        let n = node as usize;
        let x = n % self.nx;
        let y = (n / self.nx) % self.ny;
        let z = n / (self.nx * self.ny);
        (x, y, z)
    }

    /// The z-slice where cells of a tier connect (their die's M1).
    #[inline]
    pub fn pin_z(&self, tier: Tier) -> usize {
        match tier {
            Tier::Logic => 0,
            Tier::Memory => self.nz() - 1,
        }
    }

    /// The tier owning a z-slice.
    #[inline]
    pub fn tier_of_z(&self, z: usize) -> Tier {
        if z < self.logic_layers {
            Tier::Logic
        } else {
            Tier::Memory
        }
    }

    /// Whether the via between z and z+1 crosses the F2F bond.
    #[inline]
    pub fn is_f2f_via(&self, z_low: usize) -> bool {
        z_low + 1 == self.logic_layers
    }

    /// Maps a µm location to a g-cell coordinate.
    #[inline]
    pub fn gcell_of(&self, x_um: f64, y_um: f64) -> (usize, usize) {
        let gx = ((x_um / self.gcell_um) as usize).min(self.nx - 1);
        let gy = ((y_um / self.gcell_um) as usize).min(self.ny - 1);
        (gx, gy)
    }

    /// z-range (inclusive) of a tier's layers.
    pub fn tier_z_range(&self, tier: Tier) -> (usize, usize) {
        match tier {
            Tier::Logic => (0, self.logic_layers - 1),
            Tier::Memory => (self.logic_layers, self.nz() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmls_netlist::tech::TechConfig;

    fn grid() -> RoutingGrid {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 200.0,
            height_um: 200.0,
        };
        RoutingGrid::build(&fp, &tech, 32, 0.14, 0.14)
    }

    #[test]
    fn z_stack_mirrors_at_the_bond() {
        let g = grid();
        assert_eq!(g.nz(), 12);
        assert_eq!(g.logic_layers, 6);
        // Logic die bottom-up: M1..M6.
        assert_eq!(g.layers[0].metal, 1);
        assert_eq!(g.layers[5].metal, 6);
        assert_eq!(g.layers[0].tier, Tier::Logic);
        // Memory die flipped: M6 first (adjacent to the bond), M1 last.
        assert_eq!(g.layers[6].metal, 6);
        assert_eq!(g.layers[11].metal, 1);
        assert_eq!(g.layers[6].tier, Tier::Memory);
        assert!(g.is_f2f_via(5));
        assert!(!g.is_f2f_via(4));
        assert!(!g.is_f2f_via(6));
    }

    #[test]
    fn pin_layers_are_the_outer_m1s() {
        let g = grid();
        assert_eq!(g.pin_z(Tier::Logic), 0);
        assert_eq!(g.pin_z(Tier::Memory), 11);
        assert_eq!(g.tier_of_z(0), Tier::Logic);
        assert_eq!(g.tier_of_z(5), Tier::Logic);
        assert_eq!(g.tier_of_z(6), Tier::Memory);
        assert_eq!(g.tier_z_range(Tier::Logic), (0, 5));
        assert_eq!(g.tier_z_range(Tier::Memory), (6, 11));
    }

    #[test]
    fn node_roundtrip() {
        let g = grid();
        for &(x, y, z) in &[(0, 0, 0), (3, 7, 2), (g.nx - 1, g.ny - 1, g.nz() - 1)] {
            assert_eq!(g.coords(g.node(x, y, z)), (x, y, z));
        }
        assert_eq!(g.node_count(), g.nx * g.ny * g.nz());
    }

    #[test]
    fn pdn_utilization_cuts_top_layer_capacity() {
        let tech = TechConfig::heterogeneous_16_28(6, 6);
        let fp = Floorplan {
            width_um: 200.0,
            height_um: 200.0,
        };
        let free = RoutingGrid::build(&fp, &tech, 32, 0.0, 0.0);
        let loaded = RoutingGrid::build(&fp, &tech, 32, 0.5, 0.5);
        // Top of logic die = z 5; top of memory die = z 6 (flipped).
        assert!(loaded.layers[5].capacity < free.layers[5].capacity);
        assert!(loaded.layers[6].capacity < free.layers[6].capacity);
        // Lower metals unaffected.
        assert_eq!(loaded.layers[0].capacity, free.layers[0].capacity);
    }

    #[test]
    fn lower_metals_have_more_tracks() {
        let g = grid();
        assert!(g.layers[0].capacity > g.layers[5].capacity);
        assert!(g.f2f_capacity >= 1);
    }

    #[test]
    fn gcell_of_clamps_to_grid() {
        let g = grid();
        assert_eq!(g.gcell_of(0.0, 0.0), (0, 0));
        let (gx, gy) = g.gcell_of(1e9, 1e9);
        assert_eq!((gx, gy), (g.nx - 1, g.ny - 1));
    }
}

//! 3D global routing with Metal Layer Sharing (MLS).
//!
//! This crate routes a placed two-tier design over a g-cell grid whose
//! z-stack spans *both* dies: the logic die's metals bottom-up, then the
//! face-to-face bond interface, then the memory die's metals top-down
//! (the dies are bonded face to face, so the two top metals are adjacent).
//!
//! The point of the crate is the thing the paper optimizes: **which layers
//! a net may use**.
//!
//! - Under [`MlsPolicy::Disabled`] (sequential-2D baseline), a net whose
//!   pins are all on one die is confined to that die's metals; only true
//!   3D nets cross the bond.
//! - Under [`MlsPolicy::SotaRegionSharing`] (the SOTA of ref. \[9\]),
//!   congestion-driven *region-level* sharing confiscates the less-loaded
//!   die's top metals per g-cell and hands them to the other die's nets —
//!   indiscriminately, which is exactly why it helps some nets and hurts
//!   others (Table I).
//! - Under [`MlsPolicy::PerNet`] (GNN-MLS), individually selected nets may
//!   cross the bond and borrow the other die's metals anywhere; nothing is
//!   confiscated from anyone else.
//!
//! Modules:
//!
//! - [`grid`] — the g-cell/layer grid, capacities, node indexing.
//! - [`policy`] — MLS policies and the per-(net, g-cell, layer) access rule.
//! - [`router`] — multi-source A* maze routing with congestion costs and
//!   rip-up-and-reroute, plus detached what-if routing for the label
//!   oracle.
//! - [`tree`] — route trees and Elmore-ready RC extraction.
//! - [`db`] — the route database and summary metrics (wirelength, MLS net
//!   count, layer utilization, overflow).
//! - [`render`] — SVG heat maps of per-die routing usage and MLS pad
//!   sites (Figure 9(b–c)-style views).

// Library code must surface typed errors, not panic, on the flow's hot
// path; tests may still unwrap freely. Diagnostics flow through
// gnnmls-obs, never straight to the process streams.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stdout,
        clippy::print_stderr
    )
)]

pub mod audit;
pub mod db;
pub mod grid;
pub mod policy;
pub mod render;
pub mod router;
pub mod tree;

pub use audit::{audit_route_db, AuditMode, AuditViolation};
pub use db::{NetRoute, RouteDb, RouteSummary};
pub use grid::{GridLayer, RoutingGrid};
pub use policy::{MlsPolicy, SotaShareMap};
pub use render::{congestion_svg, mls_pad_map, usage_map};
pub use router::{
    route_design, MlsOverride, RouteConfig, RouteConfigBuilder, RouteConfigError, RouteError,
    RouteScratch, Router,
};
pub use tree::RouteTree;
